"""FIG8 — regenerate Figure 8: upload + web-service generation.

The headline shape: a tall network-input peak (fast LAN), high CPU while
receiving/storing/building, and the file written to disk **twice** (temp
location, then database).  The ablation row shows the "may be improved"
single-write variant.
"""

from repro.scenarios import run_fig8


def test_fig8_upload_and_generate(benchmark, save_report, save_series):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_report("fig8", result.render())
    save_series("fig8", result.series)
    benchmark.extra_info["disk_write_bursts"] = len(result.disk_write_bursts)
    benchmark.extra_info["write_amplification"] = round(
        result.bytes_written / result.file_bytes, 2)
    assert len(result.disk_write_bursts) == 2


def test_fig8_ablation_single_write(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_fig8(double_write=False), rounds=1, iterations=1)
    save_report("fig8_ablation_single_write", result.render())
    assert len(result.disk_write_bursts) == 1
