"""SCAL — §VIII.D scalability sweeps.

Two sweeps bound the design space the paper discusses:

* fast network + concurrent uploads  → **disk** saturates (double write),
* slow network + concurrent invokes  → **network** saturates.

CPU never wins — "The solution doesn't need a lot of CPU time nor a lot
of memory".  A third sweep runs the improved single-write portal to
quantify how much the §VIII.D.3 flaw costs.
"""

from repro.core.onserve import OnServeConfig
from repro.scenarios import run_scalability
from repro.scenarios.scalability import NETWORKS, _one_level
from repro.units import MB


def test_scalability_uploads_fast_network(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_scalability(workload="upload", network="fast",
                                levels=(1, 2, 4, 8),
                                file_bytes=int(5 * MB(1))),
        rounds=1, iterations=1)
    save_report("scalability_upload_fast", result.render())
    loaded = result.rows[-1]
    benchmark.extra_info["bottleneck"] = result.bottleneck(loaded)
    assert result.bottleneck(loaded) == "disk"
    assert all(row["cpu_load"] < 0.85 for row in result.rows)


def test_scalability_invocations_slow_network(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_scalability(workload="invoke", network="slow",
                                levels=(1, 2, 4)),
        rounds=1, iterations=1)
    save_report("scalability_invoke_slow", result.render())
    loaded = result.rows[-1]
    benchmark.extra_info["bottleneck"] = result.bottleneck(loaded)
    assert result.bottleneck(loaded) == "network"
