"""MICRO — wall-clock microbenchmarks of the real code paths.

These are engineering benchmarks (no paper counterpart): they time the
actual Python implementations — the event kernel, SOAP marshalling,
WSDL round-trips, the SQL engine, WAL recovery, RSL, and the batch
scheduler — so performance regressions in the substrate are visible.
"""

import random

from repro.db import Database, execute_sql
from repro.db.table import Column
from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.grid.rsl import generate_rsl, parse_rsl
from repro.simkernel import Simulator
from repro.ws import (
    OperationSpec, ParameterSpec, ServiceDescription, generate_wsdl,
    parse_wsdl,
)
from repro.ws.soap import SoapEnvelope


def test_micro_event_kernel_throughput(benchmark):
    """Schedule+process 10k timeout events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(i * 0.001)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000


def test_micro_process_switching(benchmark):
    """1000 processes ping-ponging through 10 yields each."""

    def run():
        sim = Simulator()

        def worker():
            for _ in range(10):
                yield sim.timeout(1.0)

        for _ in range(1000):
            sim.process(worker())
        sim.run()
        return sim.events_processed

    benchmark(run)


def test_micro_soap_roundtrip(benchmark):
    env = SoapEnvelope.request("execute", {
        "name": "alice", "count": 7, "rate": 2.5, "blob": b"x" * 4096})

    def run():
        return SoapEnvelope.decode(env.encode())

    decoded = benchmark(run)
    assert decoded.params["count"] == 7


def test_micro_wsdl_roundtrip(benchmark):
    service = ServiceDescription("Bench", [
        OperationSpec(f"op{i}", [ParameterSpec(f"p{j}") for j in range(4)])
        for i in range(8)
    ])

    def run():
        return parse_wsdl(generate_wsdl(service, "soap://h/Bench"))

    parsed, _ = benchmark(run)
    assert parsed == service


def test_micro_sql_insert_select(benchmark):
    def run():
        db = Database()
        execute_sql(db, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        execute_sql(db, "CREATE INDEX ON t (v)")
        db.begin()
        for i in range(500):
            db.insert("t", [i, f"value-{i % 50}"])
        db.commit()
        return execute_sql(db, "SELECT id FROM t WHERE v = 'value-7' "
                               "ORDER BY id LIMIT 5")

    rows = benchmark(run)
    assert len(rows) == 5


def test_micro_wal_recovery(benchmark):
    db = Database()
    db.create_table("t", [Column("k", "INT", primary_key=True),
                          Column("v", "BLOB")])
    payload = bytes(range(256)) * 8
    for i in range(300):
        db.insert("t", [i, payload])
    image = db.wal.snapshot()

    def run():
        return Database.recover(image).count("t")

    assert benchmark(run) == 300


def test_micro_rsl_roundtrip(benchmark):
    desc = JobDescription(executable="/scratch/app", count=16,
                          arguments=[f"arg{i}" for i in range(8)],
                          max_wall_time=7200, environment=["A=1", "B=2"])

    def run():
        return parse_rsl(generate_rsl(desc))

    assert benchmark(run) == desc


def test_micro_scheduler_throughput(benchmark):
    """Push 500 jobs through FIFO+backfill on a 64-core pool."""

    def run():
        sim = Simulator()
        pool = NodePool([ComputeNode(f"n{i}", 8) for i in range(8)])
        scheduler = BatchScheduler(sim, pool)
        rng = random.Random(0)
        for i in range(500):
            desc = JobDescription(executable="/x",
                                  count=rng.randint(1, 16),
                                  max_wall_time=100)
            job = GridJob(f"j{i}", desc, "/CN=bench", 0.0)
            job.transition(JobState.STAGE_IN, 0.0)
            job.transition(JobState.PENDING, 0.0)
            scheduler.submit(job, runtime=rng.uniform(1, 90))
        sim.run()
        return scheduler.jobs_completed

    assert benchmark(run) == 500


def test_micro_uddi_publish_find(benchmark):
    """Publish 300 services, then pattern-search the registry."""
    from repro.ws import UddiRegistry

    def run():
        reg = UddiRegistry()
        biz = reg.save_business("Bench")
        for i in range(300):
            svc = reg.save_service(biz.key, f"Service{i:03d}")
            reg.save_binding(svc.key, f"soap://h/Service{i:03d}")
        return len(reg.find_service("service1%"))

    assert benchmark(run) == 100  # Service100..Service199


def test_micro_payload_roundtrip_1mb(benchmark):
    from repro.workloads import make_payload, parse_payload

    def run():
        payload = make_payload("fixed", size=1 << 20, runtime="5")
        return parse_payload(payload)

    profile, options = benchmark(run)
    assert profile == "fixed"


def test_micro_proxy_chain_validation(benchmark):
    import random

    from repro.security import CertificateAuthority, delegate_proxy, validate_chain

    ca = CertificateAuthority("BenchCA", random.Random(0))
    key, cert = ca.issue_identity("/CN=bench", 0.0, 10000.0,
                                  random.Random(1))
    k1, p1 = delegate_proxy(cert, key, 0.0, 5000.0, serial=1)
    k2, p2 = delegate_proxy(p1, k1, 0.0, 4000.0, serial=2)
    chain = [p2, p1, cert]
    trusted = {ca.name: ca.public_key}

    def run():
        return validate_chain(chain, trusted, now=100.0)

    assert benchmark(run) == "/CN=bench"


def test_micro_fairshare_contention(benchmark):
    """100 overlapping flows on one shared link."""
    from repro.hardware.fairshare import FairShareServer

    def run():
        sim = Simulator()
        srv = FairShareServer(sim, capacity=1000.0)

        def feed(i):
            yield sim.timeout(i * 0.1)
            yield srv.submit(500.0)

        for i in range(100):
            sim.process(feed(i))
        sim.run()
        return srv.work_integral()

    assert abs(benchmark(run) - 100 * 500.0) < 1e-6


def test_micro_pipeline_overhead():
    """Pipeline + event-bus emission must cost < 5% over direct dispatch.

    Two stable measurements instead of one noisy difference: (a) the
    pipeline's framing cost — which, since the metrics interceptor now
    emits a ``ws.request`` telemetry event per crossing, includes the
    observability plane's per-request bus cost — measured against a
    trivial terminal where the chain is the dominant signal, and (b)
    one realistic request cycle (envelope build + encode + decode on
    both legs).  The overhead budget is (a) as a fraction of (b) —
    comparing two nearly equal ~100 us loops directly would bury the
    ~2 us signal in scheduler noise.
    """
    import time

    from repro.ws.pipeline import (
        AdmissionControlInterceptor, DeadlineInterceptor,
        FaultTranslationInterceptor, Invocation, MetricsInterceptor,
        Pipeline, TracingInterceptor,
    )

    sim = Simulator()
    pipeline = Pipeline([
        FaultTranslationInterceptor(),
        MetricsInterceptor(sim),
        AdmissionControlInterceptor(sim),
        TracingInterceptor(),
        DeadlineInterceptor(sim),
    ])
    params = {"name": "alice", "count": 7, "blob": b"x" * 2048}
    inv = Invocation(None, "BenchService", "execute", params, side="server")

    def request_cycle(inv):
        # one realistic request: marshal, unmarshal, answer
        request = SoapEnvelope.request(inv.operation, inv.params)
        decoded = SoapEnvelope.decode(request.encode())
        body = f"{decoded.params['name']}:{decoded.params['count']}"
        response = SoapEnvelope.response(inv.operation, body)
        return SoapEnvelope.decode(response.encode()).result()
        yield  # pragma: no cover - generator shape, never reached

    def trivial(inv):
        return "ok"
        yield  # pragma: no cover

    def drive(gen):
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value

    # the chain is transparent: same result with and without it
    assert drive(request_cycle(inv)) == drive(
        pipeline.run(inv, request_cycle))

    def measure(fn, n=5000, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(n):
                fn()
            best = min(best, time.perf_counter() - t0)
        return best / n

    for _ in range(500):  # warm every path
        drive(trivial(inv))
        drive(pipeline.run(inv, trivial))
        drive(request_cycle(inv))

    bare = measure(lambda: drive(trivial(inv)))
    framed = measure(lambda: drive(pipeline.run(inv, trivial)))
    cycle = measure(lambda: drive(request_cycle(inv)), n=2000)

    chain_cost = framed - bare
    overhead = chain_cost / cycle
    print(f"\npipeline framing {chain_cost * 1e6:.2f} us over a "
          f"{cycle * 1e6:.2f} us request cycle: {overhead:.2%}")
    assert overhead < 0.05, (
        f"pipeline adds {overhead:.1%} per request (budget: 5%)")
