"""Grid data-path batching: per-operation vs session/batched mode.

Runs the :mod:`repro.scenarios.datapath` per-site concurrency sweep and
saves the paper-shaped report — the measured numbers behind the
EXPERIMENTS.md DATAPATH entry.  The headline claims are asserted here
too: at 16 concurrent jobs on one site, batched mode cuts control-channel
bytes and modelled gatekeeper head-node CPU by at least 40% each, and
lowers the mean completion-detection lag.
"""

from repro.scenarios.datapath import run_datapath


def test_datapath_ablation(benchmark, save_report):
    def run():
        return run_datapath(levels=(1, 4, 16, 32))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("datapath", result.render())
    for n in (16, 32):
        assert result.control_reduction_at(n) >= 0.40
        assert result.cpu_reduction_at(n) >= 0.40
        assert result.lag_improved_at(n)
