"""FIG7 — regenerate Figure 7: WS execution, ~5 MB file.

The headline shape: a ~60-second upload plateau at 80-90 KB/s on the
appliance's WAN uplink, an early temp-file disk-write peak, and the
periodic output-poll writes — network-bound, not disk-bound.
"""

from repro.scenarios import run_fig7


def test_fig7_ws_execution_large_file(benchmark, save_report, save_series):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_report("fig7", result.render())
    save_series("fig7", result.series)
    benchmark.extra_info["upload_seconds"] = round(result.upload_seconds, 1)
    benchmark.extra_info["plateau_rate_kbps"] = round(
        result.plateau_rate_kbps, 1)
    assert 50.0 <= result.upload_seconds <= 75.0
    assert 80.0 <= result.plateau_rate_kbps <= 90.0
