"""DEPLOY — the on-demand deployment story (§V step 1).

"Users dynamically start Cyberaide virtual appliance" — this bench
measures the simulated time from deployment request to a ready stack
(image write + package boot sequence + component wiring), locally and
when the image is first downloaded from a repository host.
"""

from repro.appliance import ImageBuilder, deploy_image
from repro.appliance.image import ONSERVE_PACKAGES
from repro.core import deploy_onserve
from repro.grid import build_testbed
from repro.units import MB, Mbps


def test_deploy_onserve_stack(benchmark, save_report):
    def run():
        tb = build_testbed(n_sites=4, nodes_per_site=2, cores_per_node=4)
        stack = tb.sim.run(until=deploy_onserve(tb))
        return stack

    stack = benchmark.pedantic(run, rounds=1, iterations=1)
    startup = stack.appliance.startup_seconds
    image = stack.appliance.image
    report = "\n".join([
        "On-demand appliance deployment (§V)",
        "=" * 36,
        f"image            : {image.image_id} "
        f"({image.size_bytes / MB(1):.0f} MB, "
        f"{len(image.packages)} packages)",
        f"boot sequence    : " + " -> ".join(
            name for name, _ in stack.appliance.boot_log),
        f"request -> ready : {startup:.1f} s (simulated)",
    ])
    save_report("deploy", report)
    benchmark.extra_info["startup_seconds"] = round(startup, 1)
    assert 10.0 < startup < 120.0


def test_deploy_image_download_from_repository(benchmark):
    """Image fetched over a 100 Mbit/s link before booting."""

    def run():
        tb = build_testbed(n_sites=1, nodes_per_site=1, cores_per_node=2,
                           appliance_uplink=Mbps(100))
        builder = ImageBuilder()
        for p in ONSERVE_PACKAGES():
            builder.provide(p)
        image = builder.build("onserve", ["cyberaide-onserve"])
        repo = tb.sites[0].head  # any well-connected host works as repo
        appliance = tb.sim.run(until=deploy_image(
            image, tb.appliance_host, repository=repo))
        return appliance.startup_seconds

    startup = benchmark.pedantic(run, rounds=1, iterations=1)
    # The ~300 MB download at 100 Mbit/s adds ~25 s over a local deploy.
    assert startup > 25.0
