"""BACKFILL — substrate ablation: what EASY backfilling buys.

The testbed's local resource managers run FIFO + EASY backfill.  This
bench replays the same randomized job mix through a pure-FIFO scheduler
and through the backfilling one, comparing makespan and mean queue wait —
the classic result that wide blocked jobs leave holes only backfill can
fill.
"""

import random

from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.simkernel import Simulator


def _job_mix(seed: int, n: int = 120):
    rng = random.Random(seed)
    jobs = []
    for i in range(n):
        if rng.random() < 0.15:
            cores = rng.randint(24, 32)      # wide blockers
        else:
            cores = rng.randint(1, 8)        # the small-job population
        runtime = rng.uniform(10, 300)
        walltime = int(runtime * rng.uniform(1.1, 2.5)) + 1
        jobs.append((i, rng.uniform(0, 600), cores, runtime, walltime))
    return jobs


def _run(jobs, backfill: bool):
    sim = Simulator()
    pool = NodePool([ComputeNode(f"n{i}", 8) for i in range(4)])  # 32 cores
    sched = BatchScheduler(sim, pool, backfill=backfill)
    waits = []

    def submit(i, arrival, cores, runtime, walltime):
        yield sim.timeout(arrival)
        job = GridJob(f"j{i}", JobDescription(executable="/x", count=cores,
                                              max_wall_time=walltime),
                      "/CN=bench", sim.now)
        job.transition(JobState.STAGE_IN, sim.now)
        job.transition(JobState.PENDING, sim.now)
        finished = yield sched.submit(job, runtime)
        if finished.queue_wait() is not None:
            waits.append(finished.queue_wait())

    for spec in jobs:
        sim.process(submit(*spec))
    sim.run()
    return {
        "makespan": sim.now,
        "mean_wait": sum(waits) / len(waits),
        "backfilled": sched.jobs_backfilled,
        "completed": sched.jobs_completed,
    }


def test_backfill_vs_fifo(benchmark, save_report):
    jobs = _job_mix(seed=11)

    def run():
        return _run(jobs, backfill=False), _run(jobs, backfill=True)

    fifo, easy = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n".join([
        "Scheduler ablation — pure FIFO vs EASY backfill (same job mix)",
        "=" * 62,
        f"{'':14} {'makespan':>10} {'mean wait':>10} {'backfilled':>11}",
        f"{'FIFO':14} {fifo['makespan']:>9.0f}s {fifo['mean_wait']:>9.1f}s "
        f"{fifo['backfilled']:>11d}",
        f"{'EASY backfill':14} {easy['makespan']:>9.0f}s "
        f"{easy['mean_wait']:>9.1f}s {easy['backfilled']:>11d}",
        f"wait reduced {fifo['mean_wait'] / easy['mean_wait']:.2f}x; "
        f"makespan reduced {fifo['makespan'] / easy['makespan']:.2f}x",
    ])
    save_report("backfill", report)
    assert fifo["completed"] == easy["completed"] == 120
    assert easy["backfilled"] > 0
    assert easy["mean_wait"] < fifo["mean_wait"]
    assert easy["makespan"] <= fifo["makespan"] * 1.001