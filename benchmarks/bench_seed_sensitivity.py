"""SEEDS — robustness of the headline claims across random seeds.

Two checks:

* Figure 7's measurement has *no* stochastic inputs, so different seeds
  must reproduce it bit-identically (a determinism regression check).
* The many-small-files workload draws sizes and runtimes from the seed;
  its per-job amortization claim must hold across seeds with modest
  spread — the conclusion is a property of the system, not of one lucky
  draw.
"""

from repro.scenarios import run_fig7, run_smallfiles


def test_fig7_deterministic_across_seeds(benchmark):
    def run():
        return [run_fig7(seed=seed).upload_seconds for seed in (0, 1)]

    uploads = benchmark.pedantic(run, rounds=1, iterations=1)
    assert uploads[0] == uploads[1]  # nothing stochastic feeds Figure 7


def test_smallfiles_claim_holds_across_seeds(benchmark, save_report):
    seeds = (0, 1, 2)

    def run():
        return {seed: run_smallfiles(levels=(4, 8), seed=seed)
                for seed in seeds}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Many-small-files per-job cost across seeds",
             "=" * 43,
             f"{'seed':>5} {'s/job @4':>9} {'s/job @8':>9} {'flat?':>6}"]
    per_job_values = []
    for seed, res in sorted(results.items()):
        p4, p8 = (row["per_job"] for row in res.rows)
        per_job_values += [p4, p8]
        flat = "yes" if p8 <= p4 * 1.15 else "NO"
        lines.append(f"{seed:>5d} {p4:>9.2f} {p8:>9.2f} {flat:>6}")
    spread = max(per_job_values) - min(per_job_values)
    lines.append(f"per-job spread over all seeds/levels: {spread:.2f} s")
    save_report("seed_sensitivity", "\n".join(lines))
    # The §VIII.B claim holds for every seed.
    for res in results.values():
        p4, p8 = (row["per_job"] for row in res.rows)
        assert p8 <= p4 * 1.15
