"""Replica fabric scale-out: sharded appliances behind the router.

Runs the :mod:`repro.scenarios.scaleout` replica sweep and saves the
paper-shaped report — the measured numbers behind the EXPERIMENTS.md
SCALEOUT entry.  The headline claims are asserted here too: throughput
scales near-linearly from 1 to 8 replicas (>= 6x), keeps growing at 16,
and the router indirection costs less than 5% end-to-end when fronting
a single replica.
"""

from repro.scenarios.scaleout import run_scaleout


def test_scaleout_sweep(benchmark, save_report):
    def run():
        return run_scaleout(replica_levels=(1, 2, 4, 8, 16))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("scaleout", result.render())
    assert result.speedup_at(2) >= 1.7
    assert result.speedup_at(4) >= 3.2
    assert result.speedup_at(8) >= 6.0
    assert result.speedup_at(16) > result.speedup_at(8)
    assert result.router_overhead() < 0.05
