"""Ablations of the design flaws DESIGN.md calls out.

Three faithful-vs-fixed comparisons, each quantifying one workaround or
flaw the paper documents:

* the tentative-output-polling workaround vs real status polling
  (§VIII.B: "the local client has to request the output tentatively"),
* re-uploading the executable on every invocation vs a staged-file
  cache (§VIII.B: "will even be reloaded when executed a 2nd time"),
* the portal's double disk write vs direct-to-database (§VIII.D.3).
"""

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.scenarios.common import standard_env
from repro.units import KB, KBps, MB
from repro.workloads.executables import make_payload


def _invoke_twice(config, file_bytes=int(KB(512)), runtime=45.0):
    env = standard_env(appliance_uplink=KBps(300), config=config)
    tb, stack, sim = env.testbed, env.stack, env.sim
    payload = make_payload("fixed", size=file_bytes, runtime=f"{runtime}",
                           output_bytes=str(int(KB(4))))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "abl.bin", payload))
    t0 = sim.now
    for _ in range(2):
        sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                          "Abl%"))
    return sim.now - t0, env


def test_ablation_status_polling_vs_tentative_output(benchmark, save_report):
    def run():
        faithful_time, faithful_env = _invoke_twice(
            OnServeConfig(poll_interval=9.0, status_supported=False))
        clean_time, clean_env = _invoke_twice(
            OnServeConfig(poll_interval=9.0, status_supported=True))
        return (faithful_time, faithful_env.stack.agent.output_polls,
                clean_time, clean_env.stack.agent.output_polls)

    f_time, f_polls, c_time, c_polls = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = "\n".join([
        "Ablation — tentative output polling vs real job status",
        "=" * 54,
        f"faithful (workaround): {f_time:7.1f} s, {f_polls} output fetches",
        f"clean status polling : {c_time:7.1f} s, {c_polls} output fetches",
        f"wasted output fetches: {f_polls - c_polls}",
    ])
    save_report("ablation_status", report)
    # The workaround transfers output many times; clean polling twice.
    assert f_polls > c_polls


def test_ablation_upload_cache(benchmark, save_report):
    def run():
        faithful_time, faithful_env = _invoke_twice(
            OnServeConfig(upload_cache=False), file_bytes=int(2 * MB(1)))
        cached_time, cached_env = _invoke_twice(
            OnServeConfig(upload_cache=True), file_bytes=int(2 * MB(1)))
        return (faithful_time, faithful_env.stack.agent.uploads,
                cached_time, cached_env.stack.agent.uploads)

    f_time, f_up, c_time, c_up = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    report = "\n".join([
        "Ablation — per-invocation re-upload vs staged-file cache",
        "=" * 56,
        f"faithful re-upload : {f_time:7.1f} s for 2 invocations "
        f"({f_up} grid uploads)",
        f"with upload cache  : {c_time:7.1f} s for 2 invocations "
        f"({c_up} grid uploads)",
        f"time saved         : {f_time - c_time:7.1f} s",
    ])
    save_report("ablation_upload_cache", report)
    assert f_up == 2 and c_up == 1
    assert c_time < f_time


def test_ablation_double_write(benchmark, save_report):
    def run():
        rows = []
        for double in (True, False):
            env = standard_env(config=OnServeConfig(double_write=double))
            tb, stack, sim = env.testbed, env.stack, env.sim
            payload = make_payload("fixed", size=int(5 * MB(1)),
                                   runtime="30")
            before = tb.appliance_host.disk.bytes_written()
            t0 = sim.now
            sim.run(until=stack.portal.upload_and_generate(
                tb.user_hosts[0], "dw.bin", payload))
            rows.append((double, sim.now - t0,
                         tb.appliance_host.disk.bytes_written() - before))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — portal double write vs direct-to-database",
             "=" * 52]
    for double, secs, written in rows:
        mode = "temp+DB (faithful)" if double else "DB only (improved)"
        lines.append(f"{mode:20s}: {secs:6.2f} s, "
                     f"{written / MB(1):5.1f} MB written")
    save_report("ablation_double_write", "\n".join(lines))
    (d_mode, d_secs, d_written), (s_mode, s_secs, s_written) = rows
    assert d_written > 1.6 * s_written
