"""FIG6 — regenerate Figure 6: WS execution, small file.

Prints/saves the 3-second CPU / network / disk series of the appliance
host during one small-executable invocation, plus the headline facts the
paper reports (security-dominated traffic, low disk utilization,
periodic output-poll writes).
"""

from repro.scenarios import run_fig6


def test_fig6_ws_execution_small_file(benchmark, save_report, save_series):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    save_report("fig6", result.render())
    save_series("fig6", result.series)
    benchmark.extra_info["security_fraction"] = round(
        result.security_fraction, 3)
    benchmark.extra_info["polls"] = result.polls
    benchmark.extra_info["invocation_wall_s"] = round(
        result.invocation_total, 1)
    assert result.security_fraction > 0.25
    assert result.polls >= 5
