"""STREAMS — GridFTP parallel streams under contention.

Not in the paper's evaluation, but the standard grid-era answer to its
network bottleneck (§VIII.D.2): multiple data connections grab multiple
fair shares of a congested link.  The bench times the same 300 KB
staging transfer with 1 vs 4 streams while a long background transfer
hogs the uplink.
"""

from repro.grid import build_testbed
from repro.units import KB, KBps, Mbps
from repro.workloads import make_payload


def _contended_put(streams: int) -> float:
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=KBps(100))
    tb.new_grid_identity("ada", "pw")
    client = tb.appliance_host

    def logon():
        _k, proxy, ee = yield tb.myproxy.logon(client, "ada", "pw", 3600.0)
        return [proxy, ee]

    chain = tb.sim.run(until=tb.sim.process(logon()))
    payload = make_payload("echo", size=int(KB(300)))
    result = {}

    def background():
        yield tb.ftp("sdsc").put(client, chain, "/bg",
                                 make_payload("echo", size=int(KB(3000))))

    def measured():
        yield tb.sim.timeout(1.0)
        t0 = tb.sim.now
        yield tb.ftp("ncsa").put(client, chain, "/f", payload,
                                 streams=streams)
        result["t"] = tb.sim.now - t0

    tb.sim.process(background())
    tb.sim.process(measured())
    tb.sim.run()
    return result["t"]


def test_parallel_streams_under_contention(benchmark, save_report):
    def run():
        return {s: _contended_put(s) for s in (1, 2, 4)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["GridFTP parallel streams on a contended 100 KB/s uplink",
             "=" * 54,
             f"{'streams':>8} {'300 KB put':>11} {'speedup':>8}"]
    base = times[1]
    for s, t in sorted(times.items()):
        lines.append(f"{s:>8d} {t:>9.1f} s {base / t:>7.2f}x")
    save_report("streams", "\n".join(lines))
    assert times[4] < times[2] < times[1]
