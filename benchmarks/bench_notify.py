"""Event-driven job lifecycle: push detection vs the poll floor.

Runs the :mod:`repro.scenarios.notify` mixed-capability testbed and
saves the paper-shaped report — the measured numbers behind the
EXPERIMENTS.md NOTIFY entry.  The headline claims are asserted here
too: on the notify-capable site, mean detection lag is one event-
propagation delay (no poll-floor term at all) and the multiplexer runs
zero batch rounds; the poll-only site on the same run pays measurably
more lag for its exchanges; and the durable queue drains completely.
"""

from repro.scenarios.notify import run_notify


def test_notify_push_path(benchmark, save_report):
    def run():
        return run_notify(n=12)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("notify", result.render())
    assert result.n_ok == result.n
    # Push detection: exactly one propagation delay, nothing more.
    assert result.notify_lag_mean <= result.propagation + 0.1
    # The push path runs zero tentative poll rounds on its site.
    assert result.notify_poller_batches == 0
    # The poll site pays >= the poll floor; push beats it clearly.
    assert result.poll_lag_mean > 2.0 * result.notify_lag_mean
    # The durable queue drained and only the capable site wrote rows.
    assert result.depth == 0 and result.delivered == result.published
    assert result.ok
