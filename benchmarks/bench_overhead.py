"""OVHD — §VIII.B overhead study: onServe vs the direct JSE path.

"The additional overhead added by Cyberaide onServe should be quite
small compared to the runtime of a typical executable" — relative
overhead must fall monotonically with job runtime.
"""

from repro.scenarios import run_overhead


def test_overhead_vs_direct_jse(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_overhead(runtimes=(10.0, 60.0, 300.0, 1800.0)),
        rounds=1, iterations=1)
    save_report("overhead", result.render())
    rels = [row["relative"] for row in result.rows]
    benchmark.extra_info["relative_overheads"] = [round(r, 3) for r in rels]
    assert rels == sorted(rels, reverse=True)
    assert rels[-1] < 0.02  # well under 2% for a 30-minute job
