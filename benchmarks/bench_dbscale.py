"""DB tier scale-out: upload storm vs invocation p95.

Runs the :mod:`repro.scenarios.dbscale` three-arm ablation at the full
100 MB BLOB size and saves the paper-shaped report — the measured
numbers behind the EXPERIMENTS.md DBSCALE entry.  The headline claims
are gated here too: with the optimizations off, a storm of concurrent
re-uploads measurably spikes invocation p95 (readers queue on the
single connection behind multi-second stores, each fetch parking the
whole BLOB in RAM); with MVCC snapshot reads + WAL-shipping read
replicas + chunked BLOB streaming, the same storm leaves p95 within
10% of the no-storm baseline, per-fetch resident payload bounded by
two chunk sizes, and every replica read inside the staleness bound.
"""

from repro.scenarios.dbscale import run_dbscale


def test_dbscale_upload_storm(benchmark, save_report):
    def run():
        return run_dbscale(n=8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("dbscale", result.render())
    # Every invocation succeeds in every arm.
    for arm in (result.baseline, result.locked, result.scaled):
        assert arm.n_ok == arm.n
    # The problem is real: the storm spikes p95 when the tier is off,
    # and the spike is lock queueing, not ambient contention.
    assert result.spike_factor > 1.10
    assert result.locked.lock_wait_total > 0
    # The headline gate: MVCC + replicas + chunking hold p95 within
    # 10% of the no-storm baseline under the same storm.
    assert result.scaled_factor <= 1.10
    # Chunked streaming bounds per-fetch residency by two chunk sizes;
    # whole-BLOB fetches demonstrably park the entire payload.
    assert result.scaled.peak_resident <= 2 * result.chunk_bytes
    assert result.locked.peak_resident >= result.blob_bytes
    # Replicas serve reads and the router's staleness guard holds.
    assert result.scaled.replica_reads > 0
    assert result.scaled.behind_ok
    assert result.ok
