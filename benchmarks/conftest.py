"""Shared benchmark plumbing.

Every figure/study benchmark renders its paper-shaped report and saves
it under ``benchmarks/reports/`` (pytest captures stdout, so files are
the reliable artefact).  EXPERIMENTS.md points at these reports.
"""

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def reports_dir() -> pathlib.Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def save_report(reports_dir):
    """Write a rendered experiment report to reports/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (reports_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture
def save_series(reports_dir):
    """Write figure series to reports/<name>.csv (for external plotting)."""

    def _save(name: str, series_list) -> None:
        from repro.telemetry import to_csv

        (reports_dir / f"{name}.csv").write_text(to_csv(series_list) + "\n")

    return _save
