"""SMALL — §VIII.B many-small-files claim.

"the provided solution is quite good in a scenario using a lot of
relatively small files" — per-job time stays flat as the count grows,
and is far below the large-file per-job time.
"""

from repro.scenarios import run_smallfiles


def test_many_small_files(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_smallfiles(levels=(4, 8, 16)), rounds=1, iterations=1)
    save_report("small_files", result.render())
    per_job = [row["per_job"] for row in result.rows]
    benchmark.extra_info["per_job_seconds"] = [round(x, 2) for x in per_job]
    assert per_job[-1] <= per_job[0] * 1.15
    assert result.large_file_row["makespan"] > 3 * per_job[-1]
