"""Sim-kernel throughput gate: events/sec + profiler tax (ROADMAP 4b).

Drives a fixed 4-replica fabric workload through the kernel twice —
bare, then with the :class:`~repro.telemetry.profiler.KernelProfiler`
attached — and gates the two numbers million-invocation runs depend
on:

* the kernel sustains a floor of dispatched events per wall-clock
  second (measured with the profiler attached, i.e. the pessimistic
  number), and
* attaching the profiler costs < 10% wall time over the bare run, so
  leaving it on for every scale study is free-ish.

The profiled run's report (throughput, simulation-vs-telemetry split,
hottest handlers) is saved to ``benchmarks/reports/kernel.txt`` — the
number EXPERIMENTS.md quotes for the observability tax.
"""

import time

from repro.core.fabric import deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.grid.testbed import build_testbed
from repro.simkernel.kernel import Simulator
from repro.telemetry.profiler import KernelProfiler
from repro.units import KB
from repro.workloads.executables import make_payload

REPLICAS = 4
WORKERS = 6
ROUNDS = 30          # invocations per worker
#: Conservative floor — local runs sustain ~35-45k events/sec; CI boxes
#: get an order of magnitude of headroom.
EVENTS_PER_SECOND_FLOOR = 4_000
PROFILER_OVERHEAD_CEILING = 0.10


def _drive(profiled: bool):
    """One deterministic fabric run; returns (wall_seconds, profiler)."""
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_sites=2, nodes_per_site=4,
                            cores_per_node=8, n_users=WORKERS)
    config = OnServeConfig(poll_interval=2.0)
    stack = sim.run(until=deploy_fabric(testbed, config, replicas=REPLICAS,
                                        router=True))
    stack.enable_client_caches()
    payload = make_payload("fixed", size=int(KB(64)), runtime="2",
                           output_bytes=str(int(KB(4))))
    for j in range(REPLICAS):
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[0], f"kern{j:02d}.bin", payload))

    def worker(i):
        client = stack.user_clients[i]
        pattern = f"Kern{i % REPLICAS:02d}%"
        for _ in range(ROUNDS):
            yield discover_and_invoke(stack, client, pattern)

    procs = [sim.process(worker(i), name=f"tenant:{i}")
             for i in range(WORKERS)]
    prof = KernelProfiler(sim).attach() if profiled else None
    t0 = time.perf_counter()
    sim.run(until=sim.all_of(procs))
    wall = time.perf_counter() - t0
    if prof is not None:
        prof.detach()
    return wall, prof


def _best_of(n: int, profiled: bool):
    """Min wall time over *n* runs (noise floor), last profiler kept."""
    best, keep = float("inf"), None
    for _ in range(n):
        wall, prof = _drive(profiled)
        if wall < best:
            best, keep = wall, prof
    return best, keep


def test_kernel_events_per_second_floor(save_report):
    wall, prof = _best_of(2, profiled=True)
    header = (f"kernel throughput — {REPLICAS}-replica fabric, "
              f"{WORKERS} tenants x {ROUNDS} invocations\n")
    save_report("kernel", header + prof.report())
    assert prof.events_dispatched > 10_000  # the workload is non-trivial
    assert prof.events_per_second() >= EVENTS_PER_SECOND_FLOOR
    # The split is measured, not residual noise: both halves are real.
    assert prof.telemetry_seconds > 0
    assert prof.simulation_seconds() > prof.telemetry_seconds


def test_profiler_overhead_under_ceiling():
    bare, _ = _best_of(3, profiled=False)
    profiled, prof = _best_of(3, profiled=True)
    overhead = profiled / bare - 1.0
    print(f"\nprofiler overhead: bare={bare:.3f}s profiled={profiled:.3f}s "
          f"(+{overhead:.1%}, ceiling {PROFILER_OVERHEAD_CEILING:.0%})")
    # Identical deterministic timeline either way — only wall time moves.
    assert prof.events_dispatched > 10_000
    assert overhead < PROFILER_OVERHEAD_CEILING
