"""Invocation hot-path throughput: caches + coalescing off vs on.

Runs the :mod:`repro.scenarios.throughput` concurrency sweep and saves
the paper-shaped report — the measured numbers behind the EXPERIMENTS.md
THROUGHPUT entry.  The headline claim is asserted here too: at 8
concurrent clients, cached mode cuts the mean per-invocation simulated
latency by at least 20%.
"""

from repro.scenarios.throughput import run_throughput


def test_throughput_ablation(benchmark, save_report):
    def run():
        return run_throughput(levels=(1, 2, 4, 8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("throughput", result.render())
    assert result.reduction_at(8) >= 0.20
    # Coalescing collapses staging to one GridFTP transfer per level.
    for row in result.rows:
        assert row["cached_transfers"] == 1.0
