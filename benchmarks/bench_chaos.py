"""Chaos drill: kill-and-heal on the self-healing replica fabric.

Runs the :mod:`repro.scenarios.chaos` drill — kill 2 of 8 replicas at
peak load, restart 1 — and saves the gate table behind the
EXPERIMENTS.md CHAOS entry.  The robustness claims are asserted here
too: no request is lost, nothing executes twice, every crash is
declared within the lease-path worst case, the restarted replica
rejoins, and the availability SLO holds through the blast.
"""

from repro.scenarios.chaos import run_chaos


def test_chaos_drill(benchmark, save_report):
    def run():
        return run_chaos()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("chaos", result.render())
    assert result.ok, result.render()
    assert result.lost == 0
    assert result.dedup_duplicates == 0
    assert result.max_detection_lag <= result.detection_bound
    assert result.rejoined
    assert not result.slo_violated
    # The drill was not vacuous: crashes interrupted live work and the
    # router actually failed over.
    assert len(result.crashed) == 2
    assert result.failovers >= 1
    assert result.availability >= 0.90
