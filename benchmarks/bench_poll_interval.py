"""POLL — ablation: the tentative-poll interval trade-off.

The paper's workaround polls output on "a relative constant interval".
The interval choice trades completion latency (a finished job waits up
to one interval before anyone notices) against wasted transfers ("the
output more often than necessary... may reduce the network performance
even more").  This sweep quantifies both sides.
"""

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def _one(interval: float, runtime: float = 60.0):
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(8))
    stack = tb.sim.run(until=deploy_onserve(
        tb, OnServeConfig(poll_interval=interval)))
    payload = make_payload("fixed", size=int(KB(8)), runtime=f"{runtime}",
                           output_bytes=str(int(KB(16))))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "p.bin", payload))
    net_before = tb.appliance_host.net_bytes_in()
    t0 = tb.sim.now
    tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0], "P%"))
    elapsed = tb.sim.now - t0
    report = stack.onserve.runtimes["PService"].reports[0]
    wasted = tb.appliance_host.net_bytes_in() - net_before
    return {"interval": interval, "elapsed": elapsed,
            "latency_overhead": elapsed - runtime,
            "polls": report.polls, "bytes_in": wasted}


def test_poll_interval_tradeoff(benchmark, save_report):
    intervals = (3.0, 9.0, 27.0)
    rows = benchmark.pedantic(lambda: [_one(i) for i in intervals],
                              rounds=1, iterations=1)
    lines = ["Ablation — tentative-poll interval trade-off (60 s job)",
             "=" * 55,
             f"{'interval':>8} {'polls':>6} {'latency overhead':>17} "
             f"{'bytes pulled':>13}"]
    for row in rows:
        lines.append(f"{row['interval']:>7.0f}s {row['polls']:>6d} "
                     f"{row['latency_overhead']:>15.1f} s "
                     f"{row['bytes_in']:>12.0f}")
    save_report("ablation_poll_interval", "\n".join(lines))
    # Tighter polling: more polls, more traffic, less latency overhead.
    assert rows[0]["polls"] > rows[-1]["polls"]
    assert rows[0]["bytes_in"] > rows[-1]["bytes_in"]
    assert rows[0]["latency_overhead"] < rows[-1]["latency_overhead"]
