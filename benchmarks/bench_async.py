"""ASYNC — extension study: synchronous vs ticket-based invocation.

The paper's generated services are synchronous: ``execute`` holds the
SOAP exchange open for the whole grid job.  The async extension
(``submit``/``poll``/``result``) frees the client immediately.  This
bench measures the client-side blocking time of each mode for the same
job and reports the difference.
"""

from repro.core import OnServeConfig, deploy_onserve
from repro.core.invocation import discover_service
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws.client import generate_stub


def _setup(runtime="90"):
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(
        tb, OnServeConfig(poll_interval=9.0)))
    payload = make_payload("fixed", size=int(KB(8)), runtime=runtime,
                           output_bytes="1024")
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "job.bin", payload))
    client = stack.user_clients[0]

    def flow():
        _n, endpoint, _w = yield discover_service(stack, client, "Job%")
        document = yield client.fetch_wsdl(endpoint)
        return generate_stub(document)(client)

    stub = tb.sim.run(until=tb.sim.process(flow()))
    return tb, stub


def test_sync_vs_async_client_blocking(benchmark, save_report):
    def run():
        # Synchronous: execute() blocks for the whole job.
        tb, stub = _setup()
        t0 = tb.sim.now
        tb.sim.run(until=stub.execute())
        sync_blocked = tb.sim.now - t0

        # Asynchronous: submit() returns a ticket at once; the client is
        # only "busy" during the submit call itself.
        tb, stub = _setup()
        t0 = tb.sim.now
        ticket = tb.sim.run(until=stub.submit())
        submit_blocked = tb.sim.now - t0

        def collect():
            while not (yield stub.poll(ticket=ticket)):
                yield tb.sim.timeout(20.0)
            return (yield stub.result(ticket=ticket))

        t1 = tb.sim.now
        tb.sim.run(until=tb.sim.process(collect()))
        completion = tb.sim.now - t0
        return sync_blocked, submit_blocked, completion

    sync_blocked, submit_blocked, completion = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = "\n".join([
        "Extension — synchronous execute vs async submit/poll/result",
        "=" * 59,
        f"sync execute(): client blocked {sync_blocked:7.1f} s",
        f"async submit(): client blocked {submit_blocked:7.1f} s "
        f"(job finished after {completion:.1f} s)",
        f"blocking reduced by a factor of "
        f"{sync_blocked / max(submit_blocked, 1e-9):,.0f}x",
    ])
    save_report("extension_async", report)
    assert submit_blocked < 5.0
    assert sync_blocked > 60.0
