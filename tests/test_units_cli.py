"""Tests for unit helpers and the scenario CLI."""

import pytest

from repro.units import (
    GB, Gbps, KB, KBps, MB, MBps, Mbps, fmt_bytes, fmt_duration, fmt_rate,
    hours, kbps, minutes, seconds,
)


def test_byte_units():
    assert KB(1) == 1024
    assert MB(1) == 1024 ** 2
    assert GB(2) == 2 * 1024 ** 3


def test_bandwidth_units_telecom_convention():
    assert kbps(8) == 1000.0           # 8 kbit/s = 1000 B/s
    assert Mbps(8) == 1_000_000.0
    assert Gbps(1) == 125_000_000.0
    assert KBps(1) == 1024.0
    assert MBps(1) == 1024 ** 2


def test_time_units():
    assert seconds(5) == 5.0
    assert minutes(2) == 120.0
    assert hours(1.5) == 5400.0


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(KB(2)) == "2.00 KB"
    assert fmt_bytes(5 * MB(1)) == "5.00 MB"
    assert fmt_bytes(GB(3)) == "3.00 GB"


def test_fmt_rate_and_duration():
    assert fmt_rate(KB(85)) == "85.00 KB/s"
    assert fmt_duration(0.0123) == "12.30 ms"
    assert fmt_duration(42.0) == "42.00 s"
    assert fmt_duration(90.0) == "1.50 min"
    assert fmt_duration(7200.0) == "2.00 h"


# ---------------------------------------------------------------- CLI

def test_cli_runs_fig6(capsys):
    from repro.scenarios.__main__ import main

    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "security-traffic share" in out


def test_cli_rejects_unknown_experiment():
    from repro.scenarios.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig9"])
