"""Unit tests for the MyProxy server and GSI acceptor."""

import random

import pytest

from repro.errors import AuthenticationFailed, CredentialExpired
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.security import CertificateAuthority, MyProxyServer, validate_chain
from repro.security.gsi import GsiAcceptor
from repro.simkernel import Simulator
from repro.units import Mbps


def env():
    sim = Simulator(seed=3)
    net = Network(sim)
    server_host = Host(sim, "mp", net, HostSpec())
    client_host = Host(sim, "client", net, HostSpec())
    net.connect("mp", "client", bandwidth=Mbps(100), latency=0.01)
    ca = CertificateAuthority("GridCA", random.Random(1))
    key, cert = ca.issue_identity("/O=Grid/CN=ada", 0.0, 10000.0,
                                  random.Random(2))
    server = MyProxyServer(server_host)
    server.store("ada", "s3cret", key, cert)
    return sim, server, client_host, ca, cert


def test_logon_returns_valid_proxy():
    sim, server, client, ca, cert = env()

    def flow():
        result = yield server.logon(client, "ada", "s3cret", lifetime=3600.0)
        return result

    proxy_key, proxy, ee = sim.run(until=sim.process(flow()))
    assert proxy.is_proxy
    subject = validate_chain([proxy, ee], {ca.name: ca.public_key},
                             now=sim.now)
    assert subject == "/O=Grid/CN=ada"
    assert server.logons_served == 1
    assert sim.now > 0  # the exchange took simulated time


def test_logon_generates_network_traffic():
    sim, server, client, ca, cert = env()

    def flow():
        yield server.logon(client, "ada", "s3cret", lifetime=3600.0)

    sim.run(until=sim.process(flow()))
    # Request out, certificate-bearing answer in.
    assert client.net_bytes_out() > 1000
    assert client.net_bytes_in() > 2000


def test_logon_bad_passphrase():
    sim, server, client, ca, cert = env()

    def flow():
        yield server.logon(client, "ada", "wrong", lifetime=3600.0)

    with pytest.raises(AuthenticationFailed):
        sim.run(until=sim.process(flow()))
    assert server.logons_rejected == 1


def test_logon_unknown_user():
    sim, server, client, ca, cert = env()

    def flow():
        yield server.logon(client, "bob", "x", lifetime=3600.0)

    with pytest.raises(AuthenticationFailed):
        sim.run(until=sim.process(flow()))


def test_logon_expired_credential():
    sim, server, client, ca, cert = env()

    def flow():
        yield sim.timeout(20000.0)  # past the credential's 10000 s lifetime
        yield server.logon(client, "ada", "s3cret", lifetime=3600.0)

    with pytest.raises(CredentialExpired):
        sim.run(until=sim.process(flow()))


def test_lifetime_capped_by_policy():
    sim, server, client, ca, cert = env()
    server._store["ada"].max_delegation_lifetime = 100.0

    def flow():
        _, proxy, _ = yield server.logon(client, "ada", "s3cret",
                                         lifetime=9999.0)
        return proxy

    proxy = sim.run(until=sim.process(flow()))
    assert proxy.not_after - proxy.not_before <= 100.0 + 1e-9


def test_credential_management():
    sim, server, client, ca, cert = env()
    assert server.has_credential("ada")
    assert server.remove("ada")
    assert not server.remove("ada")
    assert not server.has_credential("ada")


# ---------------------------------------------------------------- GSI

def test_gsi_accept_and_gridmap():
    sim, server, client, ca, cert = env()

    def flow():
        result = yield server.logon(client, "ada", "s3cret", lifetime=3600.0)
        return result

    proxy_key, proxy, ee = sim.run(until=sim.process(flow()))
    acceptor = GsiAcceptor("gatekeeper", trusted_cas=[ca])
    ctx = acceptor.accept([proxy, ee], now=sim.now)
    assert ctx.subject == "/O=Grid/CN=ada"
    assert acceptor.handshakes_ok == 1

    strict = GsiAcceptor("strict", trusted_cas=[ca], gridmap=set())
    with pytest.raises(AuthenticationFailed, match="gridmap"):
        strict.accept([proxy, ee], now=sim.now)
    strict.authorize("/O=Grid/CN=ada")
    assert strict.accept([proxy, ee], now=sim.now).subject == "/O=Grid/CN=ada"


def test_gsi_untrusted_ca_counted():
    sim, server, client, ca, cert = env()

    def flow():
        return (yield server.logon(client, "ada", "s3cret", lifetime=100.0))

    proxy_key, proxy, ee = sim.run(until=sim.process(flow()))
    acceptor = GsiAcceptor("gk", trusted_cas=[])
    with pytest.raises(Exception):
        acceptor.accept([proxy, ee], now=sim.now)
    assert acceptor.handshakes_failed == 1


def test_handshake_bytes_scale_with_chain():
    sim, server, client, ca, cert = env()

    def flow():
        return (yield server.logon(client, "ada", "s3cret", lifetime=100.0))

    proxy_key, proxy, ee = sim.run(until=sim.process(flow()))
    one = GsiAcceptor.handshake_bytes([ee])
    two = GsiAcceptor.handshake_bytes([proxy, ee])
    assert two > one > 1024
