"""Unit tests for keys, certificates and proxy chains."""

import random

import pytest

from repro.errors import CertificateInvalid, CredentialExpired
from repro.security import (
    CertificateAuthority, KeyPair, delegate_proxy, validate_chain,
)
from repro.security.proxy import MAX_PROXY_DEPTH, chain_wire_size


def identity(ca=None, subject="/O=Grid/CN=ada", t0=0.0, life=1000.0):
    ca = ca or CertificateAuthority("TestCA", random.Random(1))
    key, cert = ca.issue_identity(subject, t0, life, random.Random(2))
    return ca, key, cert


# ---------------------------------------------------------------- keys

def test_sign_verify_roundtrip():
    kp = KeyPair.generate(random.Random(0))
    sig = kp.sign(b"message")
    assert kp.public.verify(b"message", sig)
    assert not kp.public.verify(b"other", sig)
    other = KeyPair.generate(random.Random(1))
    assert not other.public.verify(b"message", sig)


def test_keypair_deterministic_from_rng():
    a = KeyPair.generate(random.Random(7))
    b = KeyPair.generate(random.Random(7))
    assert a.public == b.public


def test_bad_secret_length():
    with pytest.raises(ValueError):
        KeyPair(b"short")


# ---------------------------------------------------------------- certificates

def test_ca_issue_and_verify():
    ca, key, cert = identity()
    cert.verify_signature(ca.public_key)
    cert.check_validity(500.0)
    assert cert.subject == "/O=Grid/CN=ada"
    assert not cert.is_proxy


def test_tampered_cert_fails_verification():
    ca, key, cert = identity()
    cert.subject = "/O=Grid/CN=mallory"
    with pytest.raises(CertificateInvalid):
        cert.verify_signature(ca.public_key)


def test_validity_window():
    ca, key, cert = identity(t0=100.0, life=50.0)
    with pytest.raises(CredentialExpired, match="not yet valid"):
        cert.check_validity(99.0)
    cert.check_validity(125.0)
    with pytest.raises(CredentialExpired, match="expired"):
        cert.check_validity(151.0)
    assert cert.remaining_lifetime(140.0) == pytest.approx(10.0)
    assert cert.remaining_lifetime(200.0) == 0.0


def test_empty_validity_rejected():
    ca = CertificateAuthority("CA")
    kp = KeyPair.generate(random.Random(0))
    with pytest.raises(CertificateInvalid):
        ca.issue("/CN=x", kp.public, 10.0, 0.0)


# ---------------------------------------------------------------- proxies

def test_delegate_and_validate_chain():
    ca, key, cert = identity()
    proxy_key, proxy = delegate_proxy(cert, key, not_before=10.0,
                                      lifetime=100.0, serial=1)
    assert proxy.is_proxy
    assert proxy.subject == cert.subject + "/CN=proxy"
    subject = validate_chain([proxy, cert], {ca.name: ca.public_key}, now=50.0)
    assert subject == cert.subject


def test_proxy_clipped_to_parent_lifetime():
    ca, key, cert = identity(life=100.0)
    _, proxy = delegate_proxy(cert, key, not_before=50.0, lifetime=1000.0)
    assert proxy.not_after == cert.not_after


def test_delegation_requires_matching_key():
    ca, key, cert = identity()
    wrong = KeyPair.generate(random.Random(9))
    with pytest.raises(CertificateInvalid, match="does not match"):
        delegate_proxy(cert, wrong, 0.0, 10.0)


def test_delegation_from_expired_parent():
    ca, key, cert = identity(life=100.0)
    with pytest.raises(CredentialExpired):
        delegate_proxy(cert, key, not_before=200.0, lifetime=10.0)


def test_multi_level_delegation():
    ca, key, cert = identity()
    k1, p1 = delegate_proxy(cert, key, 0.0, 500.0, serial=1)
    k2, p2 = delegate_proxy(p1, k1, 0.0, 400.0, serial=2)
    subject = validate_chain([p2, p1, cert], {ca.name: ca.public_key}, now=10.0)
    assert subject == cert.subject


def test_chain_rejects_untrusted_ca():
    ca, key, cert = identity()
    _, proxy = delegate_proxy(cert, key, 0.0, 100.0)
    with pytest.raises(CertificateInvalid, match="untrusted CA"):
        validate_chain([proxy, cert], {"OtherCA": ca.public_key}, now=10.0)


def test_chain_rejects_expired_proxy():
    ca, key, cert = identity(life=1000.0)
    _, proxy = delegate_proxy(cert, key, 0.0, 10.0)
    with pytest.raises(CredentialExpired):
        validate_chain([proxy, cert], {ca.name: ca.public_key}, now=50.0)


def test_chain_rejects_wrong_order():
    ca, key, cert = identity()
    _, proxy = delegate_proxy(cert, key, 0.0, 100.0)
    with pytest.raises(CertificateInvalid):
        validate_chain([cert, proxy], {ca.name: ca.public_key}, now=10.0)


def test_chain_rejects_forged_proxy():
    ca, key, cert = identity()
    mallory = KeyPair.generate(random.Random(66))
    # Forge a proxy signed by the wrong key.
    from repro.security.proxy import ProxyCertificate
    forged = ProxyCertificate(
        subject=cert.subject + "/CN=proxy", issuer=cert.subject,
        public_key=mallory.public, not_before=0.0, not_after=100.0,
        serial=1, is_proxy=True)
    forged.signature = mallory.sign(forged.tbs_bytes())
    with pytest.raises(CertificateInvalid, match="bad signature"):
        validate_chain([forged, cert], {ca.name: ca.public_key}, now=10.0)


def test_chain_depth_limit():
    ca, key, cert = identity(life=10000.0)
    chain = [cert]
    cur_key, cur_cert = key, cert
    for i in range(MAX_PROXY_DEPTH + 1):
        cur_key, cur_cert = delegate_proxy(cur_cert, cur_key, 0.0, 9000.0,
                                           serial=i)
        chain.insert(0, cur_cert)
    with pytest.raises(CertificateInvalid, match="depth"):
        validate_chain(chain, {ca.name: ca.public_key}, now=1.0)


def test_empty_chain_rejected():
    with pytest.raises(CertificateInvalid, match="empty"):
        validate_chain([], {}, now=0.0)


def test_chain_wire_size_positive():
    ca, key, cert = identity()
    _, proxy = delegate_proxy(cert, key, 0.0, 100.0)
    assert chain_wire_size([proxy, cert]) > 2000
