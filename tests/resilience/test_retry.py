"""RetryPolicy + retry_call: backoff math, classification, determinism."""

import pytest

from repro.core.context import RequestContext
from repro.errors import InvocationError, TransferError
from repro.resilience import RetryPolicy, retry_call
from repro.simkernel import Simulator
from repro.telemetry.events import bus


# ---------------------------------------------------------------- policy

@pytest.mark.parametrize("bad", [
    dict(max_attempts=0),
    dict(base_delay=-1.0),
    dict(multiplier=0.5),
    dict(jitter=-0.1),
    dict(jitter=1.0),
    dict(budget=-1.0),
])
def test_policy_validation(bad):
    with pytest.raises(ValueError):
        RetryPolicy(**bad)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=2.0, multiplier=3.0, max_delay=10.0)
    assert policy.backoff(1) == 2.0
    assert policy.backoff(2) == 6.0
    assert policy.backoff(3) == 10.0   # 18 capped
    assert policy.backoff(9) == 10.0


def test_backoff_jitter_bounds_and_determinism():
    policy = RetryPolicy(base_delay=4.0, jitter=0.5)

    def delays(seed):
        rng = Simulator(seed=seed).rng.stream("retry:test")
        return [policy.backoff(1, rng) for _ in range(16)]

    first = delays(0)
    assert delays(0) == first                      # same seed, same jitter
    assert all(2.0 <= d <= 6.0 for d in first)     # 4 * (1 +/- 0.5)
    assert len(set(first)) > 1                     # actually jittered


# ---------------------------------------------------------------- retry_call

def drive(sim, gen):
    return sim.run(until=sim.process(gen))


def test_first_attempt_is_free_of_extra_events():
    """Wrapping a healthy call must not perturb the simulation at all."""

    def run(wrapped):
        sim = Simulator()

        def call():
            return (yield sim.timeout(5.0, value=42))

        def op():
            if wrapped:
                return (yield from retry_call(sim, RetryPolicy(), call))
            return (yield from call())

        assert drive(sim, op()) == 42
        return sim.events_processed, sim.now

    assert run(wrapped=False) == run(wrapped=True)


def test_event_factory_is_supported():
    sim = Simulator()
    result = drive(sim, retry_call(sim, RetryPolicy(),
                                   lambda: sim.timeout(1.0, value=7)))
    assert result == 7 and sim.now == 1.0


def test_transient_failure_retried_after_backoff():
    sim = Simulator()
    calls = {"n": 0}

    def call():
        calls["n"] += 1
        if calls["n"] == 1:
            raise TransferError("flaky channel")
        return (yield sim.timeout(1.0, value="ok"))

    policy = RetryPolicy(base_delay=2.0)
    result = drive(sim, retry_call(sim, policy, call, label="xfer"))
    assert result == "ok"
    assert calls["n"] == 2
    assert sim.now == 3.0                      # 2 s backoff + 1 s call
    (event,) = bus(sim).events(kind="retry.attempt")
    assert event.get("label") == "xfer"
    assert event.get("error") == "TransferError"
    assert event.get("delay") == 2.0


def test_permanent_failure_raises_immediately():
    sim = Simulator()
    calls = {"n": 0}

    def call():
        calls["n"] += 1
        raise InvocationError("broken by construction")
        yield  # pragma: no cover - makes this a generator

    with pytest.raises(InvocationError):
        drive(sim, retry_call(sim, RetryPolicy(), call))
    assert calls["n"] == 1
    assert not bus(sim).events(kind="retry.attempt")


def test_attempts_exhaust_and_last_error_propagates():
    sim = Simulator()
    calls = {"n": 0}

    def call():
        calls["n"] += 1
        raise TransferError(f"attempt {calls['n']}")
        yield  # pragma: no cover

    policy = RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0)
    with pytest.raises(TransferError, match="attempt 3"):
        drive(sim, retry_call(sim, policy, call))
    assert calls["n"] == 3
    assert sim.now == 3.0                       # slept 1 + 2
    assert len(bus(sim).events(kind="retry.attempt")) == 2


def test_sleep_budget_stops_retrying():
    sim = Simulator()

    def call():
        raise TransferError("flaky")
        yield  # pragma: no cover

    policy = RetryPolicy(max_attempts=10, base_delay=1.0, budget=0.5)
    with pytest.raises(TransferError):
        drive(sim, retry_call(sim, policy, call))
    assert sim.now == 0.0                       # gave up before sleeping


def test_context_deadline_stops_retrying():
    sim = Simulator()
    ctx = RequestContext.create(sim, deadline=2.5)
    calls = {"n": 0}

    def call():
        calls["n"] += 1
        raise TransferError("flaky")
        yield  # pragma: no cover

    policy = RetryPolicy(max_attempts=10, base_delay=2.0)
    with pytest.raises(TransferError):
        drive(sim, retry_call(sim, policy, call, ctx=ctx))
    # one backoff (2 s) fits before the 2.5 s deadline; the second not
    assert calls["n"] == 2
    assert sim.now == 2.0


def test_on_retry_hook_sees_failure_and_attempt():
    sim = Simulator()
    seen = []
    calls = {"n": 0}

    def call():
        calls["n"] += 1
        if calls["n"] < 3:
            raise TransferError("flaky")
        return (yield sim.timeout(0.5, value="ok"))

    policy = RetryPolicy(max_attempts=5, base_delay=1.0)
    drive(sim, retry_call(sim, policy, call,
                          on_retry=lambda exc, n: seen.append(
                              (type(exc).__name__, n))))
    assert seen == [("TransferError", 1), ("TransferError", 2)]
