"""CircuitBreaker + BreakerBoard: the three-state machine."""

import pytest

from repro.resilience import (
    BreakerBoard, CircuitBreaker, CLOSED, HALF_OPEN, OPEN,
)
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges


def make_breaker(threshold=3, reset=100.0):
    sim = Simulator()
    return sim, CircuitBreaker(sim, "ncsa", failure_threshold=threshold,
                               reset_timeout=reset)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CircuitBreaker(sim, "x", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(sim, "x", reset_timeout=0.0)


def test_opens_after_consecutive_failures():
    sim, brk = make_breaker(threshold=3)
    brk.record_failure()
    brk.record_failure()
    assert brk.state == CLOSED and brk.allow()
    brk.record_failure()
    assert brk.state == OPEN
    assert not brk.allow()


def test_success_resets_the_failure_count():
    sim, brk = make_breaker(threshold=2)
    brk.record_failure()
    brk.record_success()
    brk.record_failure()
    assert brk.state == CLOSED    # never two *consecutive* failures


def test_half_open_probe_after_reset_timeout():
    sim, brk = make_breaker(threshold=1, reset=100.0)
    brk.record_failure()
    assert not brk.allow()
    sim.run(until=99.0)
    assert not brk.allow()                 # still cooling down
    sim.run(until=100.0)
    assert brk.allow()                     # the probe is admitted
    assert brk.state == HALF_OPEN
    brk.record_success()
    assert brk.state == CLOSED


def test_half_open_failure_reopens_for_a_full_timeout():
    sim, brk = make_breaker(threshold=1, reset=50.0)
    brk.record_failure()
    sim.run(until=50.0)
    assert brk.allow() and brk.state == HALF_OPEN
    brk.record_failure()                   # the probe died too
    assert brk.state == OPEN
    assert brk.opened_until == 100.0


def test_transitions_are_recorded_and_emitted():
    sim, brk = make_breaker(threshold=1, reset=10.0)
    brk.record_failure()
    sim.run(until=10.0)
    brk.allow()
    brk.record_success()
    assert [(frm, to) for _, frm, to in brk.transitions] == [
        (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]
    kinds = [(e.get("frm"), e.get("to"))
             for e in bus(sim).events(kind="breaker.transition")]
    assert kinds == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                     (HALF_OPEN, CLOSED)]


def test_gauge_is_created_lazily_on_first_transition():
    sim, brk = make_breaker(threshold=2)
    brk.allow()
    brk.record_failure()
    brk.record_success()
    assert "breaker.ncsa.state" not in gauges(sim).names()
    brk.record_failure()
    brk.record_failure()                   # trips: gauge appears at 2.0
    assert "breaker.ncsa.state" in gauges(sim).names()
    assert gauges(sim).gauge("breaker.ncsa.state").current == 2.0


def test_board_tracks_one_breaker_per_site():
    sim = Simulator()
    board = BreakerBoard(sim, failure_threshold=1, reset_timeout=60.0)
    assert board.allow("ncsa") and board.allow("sdsc")
    board.failure("ncsa")
    assert not board.allow("ncsa")
    assert board.allow("sdsc")             # unrelated site unaffected
    board.success("sdsc")
    assert board.states() == {"ncsa": OPEN, "sdsc": CLOSED}
    assert board.breaker("ncsa") is board.breaker("ncsa")
