"""Tests for the Prometheus and Chrome-trace exporters."""

import json

from repro.core.context import RequestContext
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.export import (
    chrome_trace, parse_prometheus_text, prometheus_text,
)
from repro.telemetry.gauges import gauges
from repro.telemetry.metrics import MetricsRegistry

import pytest


def _populated_registry():
    reg = MetricsRegistry("test")
    reg.record("Svc", "execute", 0.05)
    reg.record("Svc", "execute", 1.5)
    reg.record("Svc", "execute", 0.3, fault="GridError")
    reg.record("Agent", "poll", 0.004)
    return reg


def test_prometheus_text_parses_and_counts_match():
    sim = Simulator(seed=0)
    reg = _populated_registry()
    board = gauges(sim)
    board.gauge("gram.anl.inflight", unit="reqs").set(3)
    b = bus(sim)
    b.emit("ws.request")
    b.emit("ws.request")
    b.emit("sched.start")

    text = prometheus_text(metrics=reg, board=board, bus=b)
    samples = parse_prometheus_text(text)

    labels = 'service="Svc",operation="execute"'
    assert samples[f"repro_request_latency_seconds_count{{{labels}}}"] == 3
    assert samples[f"repro_request_latency_seconds_sum{{{labels}}}"] == \
        pytest.approx(1.85)
    assert samples[f"repro_request_faults_total{{{labels}}}"] == 1
    assert samples["repro_gram_anl_inflight"] == 3
    assert samples['repro_events_total{kind="ws.request"}'] == 2
    assert samples['repro_events_total{kind="sched.start"}'] == 1


def test_prometheus_histogram_buckets_are_cumulative():
    text = prometheus_text(metrics=_populated_registry())
    samples = parse_prometheus_text(text)
    labels = 'service="Svc",operation="execute"'
    bounds = ["0.001", "0.01", "0.1", "1", "10", "60", "600", "+Inf"]
    counts = [samples[f'repro_request_latency_seconds_bucket'
                      f'{{{labels},le="{le}"}}'] for le in bounds]
    assert counts == sorted(counts)  # cumulative => non-decreasing
    assert counts[-1] == 3           # +Inf bucket equals the count


def test_prometheus_empty_inputs_export_nothing():
    assert prometheus_text() == ""
    assert parse_prometheus_text("") == {}


def test_parse_rejects_malformed_lines():
    for bad in ("justaname", "name{unbalanced 1", "name notanumber"):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


def test_label_values_with_special_characters_round_trip():
    reg = MetricsRegistry("test")
    nasty = 'Back\\slash "quoted"\nnewline'
    reg.record(nasty, "exe\\cute", 0.5)
    sim = Simulator(seed=0)
    b = bus(sim)
    b.emit('kind "with" quotes')
    text = prometheus_text(metrics=reg, bus=b)
    # Escaped on render: one sample per line, strictly parseable.
    samples = parse_prometheus_text(text)
    esc = 'Back\\\\slash \\"quoted\\"\\nnewline'
    key = (f'repro_request_latency_seconds_count'
           f'{{service="{esc}",operation="exe\\\\cute"}}')
    assert samples[key] == 1
    assert samples['repro_events_total{kind="kind \\"with\\" quotes"}'] == 1


def test_parse_rejects_unescaped_label_values():
    for bad in (
        'm{k="a"b"} 1',          # unescaped quote inside the value
        'm{k="a\\x"} 1',         # unknown escape
        'm{k="open} 1',          # unterminated value
        'm{k=bare} 1',           # unquoted value
        'm{k="a",} 1',           # trailing comma
        'm{"k"="a"} 1',          # quoted label name
        'm{k="a";j="b"} 1',      # bad separator
    ):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


def test_parse_accepts_escaped_and_multi_label_lines():
    ok = ('m{k="a\\\\b",j="c\\"d",l="e\\nf"} 2\n'
          'm2{le="+Inf"} 4\n')
    samples = parse_prometheus_text(ok)
    assert samples['m2{le="+Inf"}'] == 4


def _traced_context():
    sim = Simulator(seed=0)
    ctx = RequestContext.create(sim, principal="user")

    def op():
        outer = ctx.begin_span("client:Svc.execute")
        yield sim.timeout(1.0)
        inner = ctx.begin_span("gridftp:put", site="anl")
        yield sim.timeout(2.0)
        ctx.end_span(inner)
        yield sim.timeout(0.5)
        ctx.end_span(outer)
        ctx.begin_span("service:polling")  # left open deliberately

    sim.run(until=sim.process(op()))
    return ctx


def test_chrome_trace_loads_and_uses_complete_events():
    ctx = _traced_context()
    doc = json.loads(chrome_trace([ctx]))
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases <= {"X", "M"}  # complete events + thread metadata only
    x_events = [e for e in events if e["ph"] == "X"]
    by_name = {e["name"]: e for e in x_events}
    # Open spans are skipped; closed ones carry microsecond ts/dur.
    assert "service:polling" not in by_name
    put = by_name["gridftp:put"]
    assert put["ts"] == 1.0 * 1e6
    assert put["dur"] == 2.0 * 1e6
    assert put["args"] == {"site": "anl", "principal": "user"}
    assert put["cat"] == "gridftp"
    outer = by_name["client:Svc.execute"]
    assert outer["dur"] == 3.5 * 1e6
    assert outer["tid"] == put["tid"]  # one thread per request


def test_chrome_trace_multiple_requests_get_distinct_threads():
    a, b = _traced_context(), _traced_context()
    doc = json.loads(chrome_trace([a, b]))
    tids = {e["tid"] for e in doc["traceEvents"]}
    assert tids == {1, 2}
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["name"] == "thread_name"]
    assert all("req-" in n for n in names)


def test_labelled_gauge_family_renders_one_header_and_round_trips():
    sim = Simulator(seed=0)
    board = gauges(sim)
    board.gauge("router.inflight", unit="reqs",
                labels={"replica": "appliance02"}).set(3)
    board.gauge("router.inflight", unit="reqs",
                labels={"replica": "appliance"}).set(1)
    board.gauge("plain.depth", unit="reqs").set(7)
    text = prometheus_text(board=board)
    # One TYPE header per family even with several labelled children.
    assert text.count("# TYPE repro_router_inflight gauge") == 1
    samples = parse_prometheus_text(text)
    assert samples['repro_router_inflight{replica="appliance"}'] == 1
    assert samples['repro_router_inflight{replica="appliance02"}'] == 3
    assert samples["repro_plain_depth"] == 7


def test_chrome_trace_inherits_replica_from_router_hop_ancestor():
    sim = Simulator(seed=0)
    ctx = RequestContext.create(sim, principal="tenant")

    def op():
        hop = ctx.begin_span("router:hop", router="router")
        yield sim.timeout(0.5)
        hop.meta["replica"] = "appliance03"
        inner = ctx.begin_span("invoke:Svc.execute")
        yield sim.timeout(1.0)
        leaf = ctx.begin_span("gram-submit", site="anl")
        yield sim.timeout(0.25)
        ctx.end_span(leaf)
        ctx.end_span(inner)
        ctx.end_span(hop)
        # A sibling *outside* the hop must not inherit its replica.
        after = ctx.begin_span("client:cleanup")
        ctx.end_span(after)

    sim.run(until=sim.process(op()))
    doc = json.loads(chrome_trace([ctx]))
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    assert by_name["router:hop"]["args"]["replica"] == "appliance03"
    # Descendants inherit without carrying their own replica meta.
    assert by_name["invoke:Svc.execute"]["args"]["replica"] == "appliance03"
    assert by_name["gram-submit"]["args"]["replica"] == "appliance03"
    assert by_name["gram-submit"]["args"]["site"] == "anl"
    assert "replica" not in by_name["client:cleanup"]["args"]
    # Principal rides on every event.
    assert all(e["args"]["principal"] == "tenant" for e in by_name.values())
