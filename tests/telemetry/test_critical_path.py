"""Tests for the critical-path latency attribution analyzer."""

import pytest

from repro.core.context import RequestContext, TraceSpan
from repro.simkernel.kernel import Simulator
from repro.telemetry.critical_path import analyze_request
from repro.telemetry.events import bus


def _span(ctx, parent, name, start, end, **meta):
    node = TraceSpan(name, start, parent=parent)
    node.end = end
    node.meta.update(meta)
    return node


def _synthetic_request(sim):
    """A hand-built trace shaped like a real execute() request.

    request [0, 10]
      client:Svc.execute [0, 10]
        server:Svc.execute [1, 9]
          service:polling [2, 9] (job=j1)
            client:CyberaideAgent.fetchOutput [3, 4]
            client:CyberaideAgent.fetchOutput [6, 7]
    """
    ctx = RequestContext(sim, "req-synth")
    ctx.root.end = 10.0
    client = _span(ctx, ctx.root, "client:Svc.execute", 0.0, 10.0)
    server = _span(ctx, client, "server:Svc.execute", 1.0, 9.0)
    polling = _span(ctx, server, "service:polling", 2.0, 9.0, job="j1")
    _span(ctx, polling, "client:CyberaideAgent.fetchOutput", 3.0, 4.0)
    _span(ctx, polling, "client:CyberaideAgent.fetchOutput", 6.0, 7.0)
    return ctx


def test_self_time_partition_reconciles_exactly():
    sim = Simulator(seed=0)
    ctx = _synthetic_request(sim)
    att = analyze_request(ctx)
    assert att.total == 10.0
    # Without scheduler events, all polling idle time is core/queueing.
    assert att.buckets["core/queueing"] == pytest.approx(5.0)
    assert att.buckets["ws/transfer"] == pytest.approx(4.0)  # client spans
    assert att.buckets["ws/compute"] == pytest.approx(1.0)   # server span
    assert att.attributed == pytest.approx(att.total)
    assert att.reconciles(tol=0.01)


def test_polling_idle_splits_on_scheduler_events():
    sim = Simulator(seed=0)
    ctx = _synthetic_request(sim)
    b = bus(sim)
    # Forge the job lifecycle: queued 2.5 -> 5.0, ran 5.0 -> 6.5.
    for kind, ts in (("sched.submit", 2.5), ("sched.start", 5.0),
                     ("sched.finish", 6.5)):
        b.emit(kind, layer="grid", job_id="j1").ts = ts

    att = analyze_request(ctx, bus=b)
    # Idle gaps of the polling span: [2,3], [4,6], [7,9].
    # queue [2.5,5]  overlaps 0.5 + 1.0;  run [5,6.5] overlaps 1.0.
    assert att.buckets["grid/queueing"] == pytest.approx(1.5)
    assert att.buckets["grid/compute"] == pytest.approx(1.0)
    assert att.buckets["core/queueing"] == pytest.approx(2.5)
    assert att.attributed == pytest.approx(att.total)
    assert att.reconciles(tol=0.01)


def test_ranked_table_and_repr():
    sim = Simulator(seed=0)
    att = analyze_request(_synthetic_request(sim))
    ranked = att.ranked()
    assert ranked[0][0] == "core/queueing"
    assert [secs for _, secs in ranked] == \
        sorted((s for _, s in ranked), reverse=True)
    table = att.table()
    assert "layer/category" in table
    assert "total" in table
    assert "100.0%" in table
    layers = att.by_layer()
    assert layers["ws"] == pytest.approx(5.0)
    assert layers["core"] == pytest.approx(5.0)


def test_open_spans_fall_back_to_root_end():
    sim = Simulator(seed=0)
    ctx = RequestContext(sim, "req-open")
    client = _span(ctx, ctx.root, "client:Svc.execute", 0.0, 8.0)
    # A span that never closed (e.g. the run ended mid-request).
    TraceSpan("gridftp:put", 2.0, parent=client)
    att = analyze_request(ctx)
    assert att.total == 8.0
    assert att.buckets["grid/transfer"] == pytest.approx(6.0)
    assert att.buckets["ws/transfer"] == pytest.approx(2.0)
    assert att.reconciles()


def test_empty_request_attributes_nothing():
    sim = Simulator(seed=0)
    ctx = RequestContext(sim, "req-empty")
    att = analyze_request(ctx)
    assert att.total == 0.0
    assert att.buckets == {}
    assert att.reconciles()
