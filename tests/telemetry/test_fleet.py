"""Unit tests for fleet rollups and the hot-shard detector."""

from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.fleet import ControlTower, FleetRollup, HotShardDetector
from repro.telemetry.slo import SloSpec
from repro.ws.router import HashRing

import pytest


class _StubRouter:
    """Just enough router surface for the fleet observers."""

    def __init__(self, nodes, inflight=None):
        self.ring = HashRing()
        for node in nodes:
            self.ring.add(node)
        self._inflight = dict(inflight or {})

    def replicas(self):
        return sorted(self._inflight) or sorted(self.ring.ownership())

    def inflight(self, name):
        return self._inflight.get(name, 0)


def _serve(sim, ts, origin, service="Svc", principal="u", latency=1.0,
           fault=None):
    def op():
        if sim.now < ts:
            yield sim.timeout(ts - sim.now)
        fields = {"side": "server", "origin": origin, "service": service,
                  "principal": principal, "latency": latency}
        if fault is not None:
            fields["fault"] = fault
        bus(sim).emit("ws.request", layer="ws", **fields)

    sim.run(until=sim.process(op()))


# -- FleetRollup --------------------------------------------------------------

def test_rollup_aggregates_by_replica_principal_and_site():
    sim = Simulator(seed=0)
    rollup = FleetRollup(sim)
    b = bus(sim)
    for origin, principal, fault in (("a", "u1", None), ("a", "u2", "Boom"),
                                     ("b", "u1", None)):
        b.emit("ws.request", side="server", origin=origin, service="Svc",
               principal=principal, latency=2.0,
               **({"fault": fault} if fault else {}))
    b.emit("ws.request", side="client", origin="a", service="Svc",
           latency=2.0)  # client side: not a serving sample
    b.emit("ws.request", side="server", service="Svc", latency=2.0)  # no origin
    b.emit("gram.submit", layer="grid", site="anl")
    b.emit("gram.submit", layer="grid", site="ornl")
    b.emit("gram.submit", layer="grid", site="anl")

    assert rollup.samples == 3
    assert rollup.replicas["a"].calls == 2
    assert rollup.replicas["a"].faults == 1
    assert rollup.replicas["a"].fault_rate == 0.5
    assert rollup.replicas["b"].calls == 1
    assert rollup.principals["u1"].calls == 2
    assert rollup.sites == {"anl": 2, "ornl": 1}
    assert rollup.load_shares() == {"a": 2 / 3, "b": 1 / 3}
    assert rollup.merged_latency().count == 3
    assert rollup.replicas["a"].top_service() == "Svc"


def test_rollup_table_and_inflight_snapshot():
    sim = Simulator(seed=0)
    router = _StubRouter(["a", "b"], inflight={"a": 3, "b": 0})
    rollup = FleetRollup(sim, router=router)
    bus(sim).emit("ws.request", side="server", origin="a", service="Svc",
                  latency=0.5)
    assert rollup.inflight_snapshot() == {"a": 3, "b": 0}
    table = rollup.table(ownership=router.ring.ownership(),
                         budgets={"a": "42.0%"})
    assert "owned" in table and "slo_budget" in table
    assert "42.0%" in table
    rollup.close()
    bus(sim).emit("ws.request", side="server", origin="a", service="Svc",
                  latency=0.5)
    assert rollup.samples == 1  # closed -> deaf


# -- HotShardDetector ---------------------------------------------------------

def test_detector_flags_skew_against_ownership_and_clears():
    sim = Simulator(seed=0)
    router = _StubRouter(["a", "b", "c"])
    detector = HotShardDetector(sim, router, window=100.0, check_every=10,
                                threshold=2.0, min_samples=10)
    # 90% of load on one of three replicas: score ~= 0.9 / ~0.33 > 2.
    for i in range(20):
        origin = "a" if i % 10 != 9 else "b"
        _serve(sim, float(i), origin, service="HotSvc")
    assert detector.hot == "a"
    assert detector.first_detection() is not None
    _, flagged = detector.first_detection()
    assert flagged == "a"
    (ev,) = bus(sim).events("fleet.imbalance")
    assert ev.get("replica") == "a"
    assert ev.get("service") == "HotSvc"
    assert ev.get("score") >= 2.0
    assert 0.0 < ev.get("owned") < 1.0

    # Balanced traffic after the skewed window expires clears the flag.
    for i in range(30):
        _serve(sim, 150.0 + i, "abc"[i % 3], service="Svc")
    assert detector.hot is None
    (cleared,) = bus(sim).events("fleet.balanced")
    assert cleared.get("replica") == "a"
    kinds = [kind for _, kind, _, _ in detector.transitions]
    assert kinds == ["hot", "clear"]


def test_detector_stays_quiet_below_min_samples_and_threshold():
    sim = Simulator(seed=0)
    router = _StubRouter(["a", "b", "c"])
    detector = HotShardDetector(sim, router, window=100.0, check_every=2,
                                threshold=2.0, min_samples=50)
    for i in range(20):  # plenty of skew, too few samples
        _serve(sim, float(i), "a")
    assert detector.hot is None
    assert not bus(sim).events("fleet.imbalance")
    with pytest.raises(ValueError):
        HotShardDetector(sim, router, threshold=1.0)


def test_detector_scores_normalize_served_share_by_owned_arc():
    sim = Simulator(seed=0)
    router = _StubRouter(["a", "b"])
    detector = HotShardDetector(sim, router, window=1000.0, min_samples=1)
    for i in range(10):
        _serve(sim, float(i), "a")
    scores = detector.scores()
    ownership = router.ring.ownership()
    assert scores["a"] == pytest.approx(1.0 / ownership["a"])
    assert scores["b"] == 0.0


# -- ControlTower -------------------------------------------------------------

def test_control_tower_bundles_and_closes_observers():
    sim = Simulator(seed=0)
    router = _StubRouter(["a", "b"])
    tower = ControlTower(sim, specs=[SloSpec("avail", availability=0.9)],
                         router=router, detector_min_samples=1,
                         detector_check_every=1)
    assert tower.slo is not None and tower.detector is not None
    _serve(sim, 1.0, "a")
    dashboard = tower.dashboard()
    assert "== fleet ==" in dashboard and "== slo ==" in dashboard
    tower.close()
    tower.close()  # idempotent
    _serve(sim, 2.0, "a")
    assert tower.fleet.samples == 1


def test_control_tower_without_router_skips_detector():
    sim = Simulator(seed=0)
    tower = ControlTower(sim)
    assert tower.detector is None and tower.slo is None
    assert "== fleet ==" in tower.dashboard()
    tower.close()
