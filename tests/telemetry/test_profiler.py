"""Unit tests for the sim-kernel wall-clock profiler."""

import itertools

from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.telemetry.profiler import KernelProfiler, _bucket, profile


def _fake_clock():
    """A deterministic wall clock: +1 "second" per reading."""
    counter = itertools.count()
    return lambda: float(next(counter))


def _tick_process(sim, n):
    def op():
        for _ in range(n):
            yield sim.timeout(1.0)
    return op()


def test_bucket_collapses_digit_runs_and_handles_bare_functions():
    class Owner:
        def __init__(self, name):
            self.name = name

        def cb(self, event):
            pass

    assert _bucket(Owner("worker17").cb) == "worker#"
    assert _bucket(Owner("tenant:003:shard9").cb) == "tenant:#:shard#"

    def bare(event):
        pass

    assert "bare" in _bucket(bare)


def test_attach_detach_install_and_remove_all_hooks():
    sim = Simulator(seed=0)
    board = gauges(sim)
    pre_existing = board.gauge("pre.depth")
    prof = KernelProfiler(sim).attach()
    assert sim._profiler is prof
    assert bus(sim).profiler is prof
    assert board.profiler is prof
    assert pre_existing.profiler is prof
    assert board.gauge("post.depth").profiler is prof  # created while on
    prof.detach()
    assert sim._profiler is None
    assert bus(sim).profiler is None
    assert board.profiler is None
    assert pre_existing.profiler is None
    prof.detach()  # idempotent


def test_self_time_attribution_with_fake_clock():
    sim = Simulator(seed=0)
    prof = KernelProfiler(sim, clock=_fake_clock()).attach()
    sim.process(_tick_process(sim, 3), name="worker1")
    sim.process(_tick_process(sim, 2), name="worker2")
    sim.run()
    prof.detach()
    # Both workers collapse into one bucket; each resume costs exactly
    # one fake second (two clock readings around the callback).
    assert prof.calls["worker#"] == 7  # 3+1 and 2+1 resumes (incl. starts)
    assert prof.self_seconds["worker#"] == 7.0
    assert prof.events_dispatched > 0
    assert prof.dispatch_seconds == sum(prof.self_seconds.values())
    top = prof.top(1)
    assert top[0]["bucket"] == "worker#"
    report = prof.report()
    assert "events/second" in report and "worker#" in report
    d = prof.as_dict()
    assert d["events_dispatched"] == prof.events_dispatched
    assert d["telemetry_seconds"] == 0.0


def test_telemetry_split_charges_bus_and_gauges():
    sim = Simulator(seed=0)
    prof = KernelProfiler(sim, clock=_fake_clock()).attach()

    def op():
        yield sim.timeout(1.0)
        bus(sim).emit("x.y", layer="test")
        gauges(sim).gauge("depth").set(4.0)

    sim.run(until=sim.process(op(), name="p"))
    prof.detach()
    # One emit + one gauge set, one fake second each.
    assert prof.telemetry_seconds == 2.0
    assert prof.simulation_seconds() == prof.dispatch_seconds - 2.0
    assert 0.0 < prof.telemetry_fraction() < 1.0


def test_profiler_does_not_perturb_the_timeline():
    def run(profiled):
        sim = Simulator(seed=0)
        prof = KernelProfiler(sim).attach() if profiled else None
        sim.process(_tick_process(sim, 50), name="a")
        sim.process(_tick_process(sim, 30), name="b")
        sim.run()
        if prof is not None:
            prof.detach()
        return sim.now, sim.events_processed

    assert run(False) == run(True)


def test_exceptions_propagate_but_time_is_still_charged():
    sim = Simulator(seed=0)
    clock = _fake_clock()
    prof = KernelProfiler(sim, clock=clock)

    class Owner:
        name = "boom1"

        def cb(self, event):
            raise RuntimeError("handler failed")

    try:
        prof.run_callbacks(None, [Owner().cb])
    except RuntimeError:
        pass
    else:  # pragma: no cover - the raise is the point
        raise AssertionError("exception swallowed")
    assert prof.calls["boom#"] == 1
    assert prof.self_seconds["boom#"] == 1.0


def test_profile_context_manager_and_throughput_meter():
    sim = Simulator(seed=0)
    clock = _fake_clock()
    with profile(sim, clock=clock) as prof:
        sim.process(_tick_process(sim, 5), name="w")
        sim.run()
    assert not prof.attached
    assert prof.wall_seconds > 0
    assert prof.events_per_second() == prof.events_dispatched / prof.wall_seconds
    assert prof.events_covered() == prof.events_dispatched
