"""Unit tests for TimeSeries analysis helpers."""

import pytest

from repro.telemetry import TimeSeries


def make(points):
    s = TimeSeries("s", unit="u")
    for t, v in points:
        s.append(t, v)
    return s


def test_append_and_iterate():
    s = make([(0, 1.0), (3, 2.0), (6, 3.0)])
    assert len(s) == 3
    assert list(s) == [(0.0, 1.0), (3.0, 2.0), (6.0, 3.0)]
    assert s.times == [0.0, 3.0, 6.0]
    assert s.values == [1.0, 2.0, 3.0]


def test_append_rejects_time_regression():
    s = make([(5, 1.0)])
    with pytest.raises(ValueError):
        s.append(4, 2.0)


def test_stats():
    s = make([(0, 2.0), (1, 4.0), (2, 6.0)])
    assert s.max() == 6.0
    assert s.min() == 2.0
    assert s.mean() == 4.0
    assert s.total() == 12.0


def test_empty_series_stats():
    s = TimeSeries("empty")
    assert s.max() == 0.0
    assert s.mean() == 0.0
    assert s.nonzero_fraction() == 0.0


def test_integral_trapezoid():
    s = make([(0, 0.0), (2, 10.0), (4, 0.0)])
    assert s.integral() == pytest.approx(20.0)


def test_value_at():
    s = make([(0, 1.0), (10, 5.0)])
    assert s.value_at(-1) == 0.0
    assert s.value_at(0) == 1.0
    assert s.value_at(9.9) == 1.0
    assert s.value_at(10) == 5.0
    assert s.value_at(100) == 5.0


def test_slice():
    s = make([(0, 1.0), (5, 2.0), (10, 3.0), (15, 4.0)])
    part = s.slice(4, 11)
    assert part.times == [5.0, 10.0]


def test_peaks_detection():
    s = make([(0, 0), (3, 10), (6, 12), (9, 0), (12, 0), (15, 8), (18, 0)])
    assert s.peaks(threshold=5) == [(3.0, 9.0), (15.0, 18.0)]
    assert s.peak_count(threshold=5) == 2


def test_peak_at_end_is_closed():
    s = make([(0, 0), (3, 10)])
    assert s.peaks(threshold=5) == [(3.0, 3.0)]


def test_merged_peaks_respects_min_gap():
    s = make([(0, 10), (3, 0), (6, 10), (9, 0), (30, 10), (33, 0)])
    # Gap between first two peaks is 3 s; between 2nd and 3rd is 21 s.
    assert s.peak_count(threshold=5, min_gap=5) == 2
    assert s.peak_count(threshold=5, min_gap=0) == 3


def test_plateau_detection():
    points = [(t, 85.0) for t in range(0, 60, 3)] + [(60, 0.0)]
    s = make(points)
    plats = s.plateau(80, 90, min_duration=30)
    assert len(plats) == 1
    a, b = plats[0]
    assert a == 0.0 and b >= 57.0


def test_nonzero_fraction():
    s = make([(0, 0.0), (1, 1.0), (2, 0.0), (3, 2.0)])
    assert s.nonzero_fraction() == 0.5


def _naive_value_at(series, t):
    """The pre-bisect linear scan, kept as the reference semantics."""
    best = 0.0
    for st, sv in zip(series.times, series.values):
        if st > t:
            break
        best = sv
    return best


def _naive_slice(series, t0, t1):
    out = TimeSeries(series.name, series.unit)
    for t, v in series:
        if t0 <= t <= t1:
            out.append(t, v)
    return out


def test_value_at_bisect_matches_naive_scan():
    # Includes duplicate timestamps (change-driven gauges can record
    # several levels at one simulated instant).
    s = make([(0, 1.0), (1, 2.0), (1, 3.0), (2.5, 4.0), (7, 5.0)])
    probes = [-1.0, 0.0, 0.5, 1.0, 1.5, 2.5, 3.0, 6.9, 7.0, 100.0]
    for t in probes:
        assert s.value_at(t) == _naive_value_at(s, t), t


def test_slice_bisect_matches_naive_scan():
    s = make([(0, 1.0), (1, 2.0), (1, 3.0), (2.5, 4.0), (7, 5.0)])
    windows = [(-5, -1), (-1, 0), (0, 1), (1, 1), (0.5, 2.5),
               (2.6, 6.9), (0, 100), (8, 9)]
    for t0, t1 in windows:
        got = s.slice(t0, t1)
        want = _naive_slice(s, t0, t1)
        assert list(got) == list(want), (t0, t1)
        assert got.name == want.name and got.unit == want.unit


def test_slice_returns_independent_copy():
    s = make([(0, 1.0), (1, 2.0)])
    sliced = s.slice(0, 1)
    sliced.append(2, 9.0)
    assert len(s) == 2  # the original is untouched
