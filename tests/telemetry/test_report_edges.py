"""Edge-case tests for telemetry report rendering and CSV round-trip."""

from repro.telemetry.report import (
    from_csv, render_figure, series_table, sparkline, to_csv,
)
from repro.telemetry.series import TimeSeries


def make(name, points, unit=""):
    s = TimeSeries(name, unit=unit)
    for t, v in points:
        s.append(t, v)
    return s


# -- sparkline ---------------------------------------------------------------

def test_sparkline_empty_series():
    assert sparkline(TimeSeries("empty")) == "(empty)"


def test_sparkline_constant_zero_series():
    s = make("flat", [(t, 0.0) for t in range(5)])
    line = sparkline(s)
    assert line == " " * 5  # zero range renders the lowest bar


def test_sparkline_constant_nonzero_series():
    s = make("flat", [(t, 7.0) for t in range(5)])
    line = sparkline(s)
    assert len(line) == 5
    assert len(set(line)) == 1  # constant value -> one bar height
    assert line != " " * 5


def test_sparkline_width_one():
    s = make("s", [(0, 1.0), (1, 5.0), (2, 3.0)])
    line = sparkline(s, width=1)
    assert len(line) == 1


def test_sparkline_never_exceeds_width():
    s = make("s", [(t, float(t % 7)) for t in range(500)])
    assert len(sparkline(s, width=72)) == 72


# -- figures and tables ------------------------------------------------------

def test_render_figure_with_empty_series():
    fig = render_figure("title", [TimeSeries("nothing", unit="u")])
    assert "title" in fig
    assert "(empty)" in fig


def test_series_table_empty_inputs():
    assert series_table([]) == "(no series)"
    assert "t(s)" in series_table([TimeSeries("a")])


def test_series_table_truncates_middle():
    s = make("a", [(t, float(t)) for t in range(100)])
    table = series_table([s], max_rows=10)
    assert "..." in table
    assert len(table.splitlines()) == 12  # header + 10 rows + ellipsis


# -- CSV round-trip ----------------------------------------------------------

def test_to_csv_empty():
    assert to_csv([]) == ""
    assert from_csv("") == []


def test_csv_round_trip():
    a = make("net_out", [(0, 1.5), (3, 85.25), (6, 0.0)])
    b = make("disk", [(0, 10.0), (3, 0.5), (6, 2.0)])
    parsed = from_csv(to_csv([a, b]))
    assert [s.name for s in parsed] == ["net_out", "disk"]
    assert list(parsed[0]) == list(a)
    assert list(parsed[1]) == list(b)


def test_csv_round_trip_with_shorter_series():
    a = make("long", [(0, 1.0), (3, 2.0), (6, 3.0)])
    b = make("short", [(0, 9.0)])
    text = to_csv([a, b])
    assert text.splitlines()[2].endswith(",")  # empty cell emitted
    parsed = from_csv(text)
    assert list(parsed[0]) == list(a)
    assert list(parsed[1]) == list(b)  # empty cells skipped on parse


def test_from_csv_rejects_foreign_header():
    try:
        from_csv("a,b\n1,2")
    except ValueError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("expected ValueError for non-series CSV")
