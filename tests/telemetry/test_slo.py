"""Unit tests for SLO specs, burn-rate alerting and hard violations."""

import pytest

from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.telemetry.slo import BurnRule, SloSpec, SloTracker


def _drive(sim, stream):
    """Emit one client-side ws.request per (ts, fields) item, in order."""
    b = bus(sim)

    def op():
        for ts, fields in stream:
            if sim.now < ts:
                yield sim.timeout(ts - sim.now)
            b.emit("ws.request", layer="ws", side="client", **fields)

    sim.run(until=sim.process(op()))


def _good(service="Svc", principal="u", latency=1.0):
    return {"service": service, "principal": principal, "latency": latency}


def _bad(service="Svc", principal="u", latency=1.0):
    return {"service": service, "principal": principal, "latency": latency,
            "fault": "GridError"}


# -- SloSpec ------------------------------------------------------------------

def test_spec_matches_exact_prefix_and_wildcard():
    spec = SloSpec("s", service="Tower%", principal="*", availability=0.9)
    assert spec.matches("Tower00Service", "anyone")
    assert spec.matches("Tower", "anyone")
    assert not spec.matches("Other", "anyone")
    assert not spec.matches(None, "anyone")
    exact = SloSpec("e", service="Svc", principal="alice", availability=0.9)
    assert exact.matches("Svc", "alice")
    assert not exact.matches("Svc2", "alice")
    assert not exact.matches("Svc", "bob")
    anything = SloSpec("a", availability=0.9)
    assert anything.matches(None, None)


def test_spec_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        SloSpec("none")  # no objective at all
    with pytest.raises(ValueError):
        SloSpec("a", availability=1.5)
    with pytest.raises(ValueError):
        SloSpec("l", latency_target=-1.0)
    with pytest.raises(ValueError):
        SloSpec("q", latency_target=1.0, latency_quantile=1.0)
    with pytest.raises(ValueError):
        SloSpec("w", availability=0.9, compliance_window=0.0)
    with pytest.raises(ValueError):
        BurnRule(10.0, 5.0, 2.0)  # long <= short
    with pytest.raises(ValueError):
        BurnRule(10.0, 50.0, 0.0)


# -- burn-rate alerting -------------------------------------------------------

def _tracker(sim, **spec_kwargs):
    spec_kwargs.setdefault("availability", 0.9)
    spec_kwargs.setdefault("compliance_window", 200.0)
    spec = SloSpec("slo", **spec_kwargs)
    rule = BurnRule(10.0, 50.0, 2.0, "page")
    return SloTracker(sim, [spec], rules=(rule,)), spec


def test_burn_alert_fires_on_both_windows_and_clears():
    sim = Simulator(seed=0)
    tracker, _ = _tracker(sim)
    # 100s of good traffic, then solid faults: the 10s window saturates
    # immediately but the alert must wait for the 50s window to cross
    # 2x budget (bad fraction 0.2 => 10 faulted samples).
    stream = [(float(t), _good()) for t in range(100)]
    stream += [(100.0 + t, _bad()) for t in range(15)]
    _drive(sim, stream)
    burn_at = tracker.first_transition("slo.burn")
    assert burn_at is not None
    assert burn_at >= 109.0  # not before the long window agrees
    (ev,) = bus(sim).events("slo.burn")
    assert ev.get("slo") == "slo" and ev.get("severity") == "page"
    assert ev.get("short_burn") >= 2.0 and ev.get("long_burn") >= 2.0

    # Recovery: good traffic drains the short window first -> clear.
    def recover():
        for t in range(30):
            yield sim.timeout(1.0)
            bus(sim).emit("ws.request", layer="ws", side="client", **_good())

    sim.run(until=sim.process(recover()))
    assert tracker.first_transition("slo.burn_clear") is not None
    assert bus(sim).events("slo.burn_clear")


def test_alert_leads_hard_violation_with_warm_history():
    sim = Simulator(seed=0)
    tracker, _ = _tracker(sim)
    # 150s of good history inside the 200s compliance window holds the
    # hard violation off while the burn windows (10s/50s) cross early.
    stream = [(float(t), _good()) for t in range(150)]
    stream += [(150.0 + t, _bad()) for t in range(40)]
    _drive(sim, stream)
    burn_at = tracker.first_transition("slo.burn")
    violation_at = tracker.first_transition("slo.violation")
    assert burn_at is not None and violation_at is not None
    assert burn_at < violation_at
    objective = tracker.objective("slo", "availability")
    assert objective.violated
    assert objective.budget_remaining() < 0.0  # budget overspent
    assert "VIOLATED" in tracker.table()


def test_latency_objective_counts_slow_and_faulted_requests_as_bad():
    sim = Simulator(seed=0)
    spec = SloSpec("lat", latency_target=2.0, latency_quantile=0.5,
                   compliance_window=100.0, min_samples=4)
    tracker = SloTracker(sim, [spec], rules=(BurnRule(5.0, 20.0, 1.5),))
    stream = [(float(t), _good(latency=10.0)) for t in range(4)]  # slow
    stream += [(4.0 + t, _bad(latency=0.1)) for t in range(2)]    # faulted
    stream += [(6.0 + t, _good(latency=0.1)) for t in range(2)]   # fine
    _drive(sim, stream)
    objective = tracker.objective("lat", "latency")
    counter = objective.compliance
    assert counter.total == 8
    assert counter.bad == 6
    assert objective.violated  # good fraction 0.25 < quantile 0.5


def test_side_and_scope_filters_exclude_foreign_traffic():
    sim = Simulator(seed=0)
    spec = SloSpec("scoped", service="Svc", principal="alice",
                   availability=0.9, compliance_window=100.0)
    tracker = SloTracker(sim, [spec], rules=())
    b = bus(sim)
    b.emit("ws.request", side="server", **_good(principal="alice"))  # wrong side
    b.emit("ws.request", side="client", **_good(principal="bob"))    # wrong user
    b.emit("ws.request", side="client", **_good(service="Other",
                                                principal="alice"))
    b.emit("ws.request", side="client", **_good(principal="alice"))
    assert tracker.samples_recorded == 1
    tracker.close()
    b.emit("ws.request", side="client", **_good(principal="alice"))
    assert tracker.samples_recorded == 1  # closed -> deaf


def test_budget_and_burn_gauges_are_labelled_children():
    sim = Simulator(seed=0)
    _tracker(sim)
    _drive(sim, [(0.0, _good()), (1.0, _bad())])
    board = gauges(sim)
    budget = board.get("slo.budget",
                       labels={"slo": "slo", "objective": "availability"})
    assert budget is not None
    assert budget.family == "slo.budget"
    # 1 bad of 2 with budget 0.1 -> remaining 1 - 0.5/0.1 = -4.0.
    assert budget.current == pytest.approx(-4.0)
    burn = board.family("slo.burn_rate")
    assert burn and all(g.labels["slo"] == "slo" for g in burn)


def test_tracker_is_observationally_pure():
    sim = Simulator(seed=0)
    _tracker(sim)
    before = sim.now
    for _ in range(50):
        bus(sim).emit("ws.request", layer="ws", side="client", **_bad())
    assert sim.now == before
    sim.run()  # nothing scheduled by tracking
    assert sim.now == before
