"""Unit tests for the host sampler and report rendering."""

import pytest

from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.telemetry import HostSampler, render_figure, series_table, to_csv
from repro.telemetry.report import sparkline
from repro.units import KB


def _host(cores=1, disk_bw=KB(1000)):
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "h", net, HostSpec(cores=cores, disk_bandwidth=disk_bw,
                                        disk_latency=0.0))
    peer = Host(sim, "peer", net, HostSpec())
    net.connect("h", "peer", bandwidth=KB(100))
    return sim, host, peer


def test_sampler_interval_and_count():
    sim, host, _ = _host()
    sampler = HostSampler(host, interval=3.0)
    sim.run(until=30.0)
    assert len(sampler.cpu) == 10
    assert sampler.cpu.times == [3.0 * i for i in range(1, 11)]


def test_cpu_utilization_sampled():
    sim, host, _ = _host(cores=2)
    sampler = HostSampler(host, interval=3.0)
    host.compute(3.0)  # one core busy for 3 s of a 2-core host
    sim.run(until=6.0)
    # First interval: 3 core-seconds / (2 cores * 3 s) = 50%.
    assert sampler.cpu.values[0] == pytest.approx(50.0)
    assert sampler.cpu.values[1] == pytest.approx(0.0)


def test_disk_rates_sampled():
    sim, host, _ = _host(disk_bw=KB(100))
    sampler = HostSampler(host, interval=3.0)
    host.disk_write(KB(300))  # 3 s at 100 KB/s
    sim.run(until=6.0)
    assert sampler.disk_write.values[0] == pytest.approx(100.0)
    assert sampler.disk_write.values[1] == pytest.approx(0.0)
    assert sampler.disk_read.max() == 0.0


def test_network_rates_sampled():
    sim, host, peer = _host()
    sampler = HostSampler(host, interval=3.0)
    peer.send(host, KB(300))  # 3 s at 100 KB/s link
    sim.run(until=6.0)
    assert sampler.net_in.values[0] == pytest.approx(100.0)
    assert sampler.net_out.max() == 0.0


def test_sampler_stop():
    sim, host, _ = _host()
    sampler = HostSampler(host, interval=3.0)

    def stopper():
        yield sim.timeout(9.0)
        sampler.stop()

    sim.process(stopper())
    sim.run(until=60.0)
    assert len(sampler.cpu) <= 4


def test_invalid_interval():
    _, host, _ = _host()
    with pytest.raises(ValueError):
        HostSampler(host, interval=0)


def test_rates_conserve_totals():
    """Sum(rate * interval) == total bytes moved, regardless of alignment."""
    sim, host, peer = _host()
    HostSampler(host, interval=3.0)
    sampler = HostSampler(host, interval=3.0)
    peer.send(host, KB(250))  # 2.5 s at 100 KB/s: not interval-aligned
    sim.run(until=12.0)
    assert sum(v * 3.0 for v in sampler.net_in.values) == pytest.approx(250.0)


# ---------------------------------------------------------------- report

def _sample_series():
    from repro.telemetry import TimeSeries

    s = TimeSeries("metric", unit="KB/s")
    for i in range(10):
        s.append(i * 3.0, float(i % 4))
    return s


def test_sparkline_width():
    s = _sample_series()
    assert len(sparkline(s, width=100)) == 10  # fewer samples than width
    long = _sample_series()
    for i in range(10, 300):
        long.append(i * 3.0, 1.0)
    assert len(sparkline(long, width=50)) == 50


def test_sparkline_empty_and_flat():
    from repro.telemetry import TimeSeries

    empty = TimeSeries("e")
    assert sparkline(empty) == "(empty)"
    flat = TimeSeries("f")
    flat.append(0, 0.0)
    flat.append(3, 0.0)
    assert set(sparkline(flat)) == {" "}


def test_render_figure_contains_series():
    out = render_figure("Fig X", [_sample_series()])
    assert "Fig X" in out
    assert "metric" in out
    assert "max=" in out


def test_series_table_alignment_and_truncation():
    s = _sample_series()
    table = series_table([s])
    assert "t(s)" in table and "metric" in table
    assert len(table.splitlines()) == 11
    truncated = series_table([s], max_rows=4)
    assert "..." in truncated


def test_to_csv_round_numbers():
    s = _sample_series()
    csv = to_csv([s])
    lines = csv.splitlines()
    assert lines[0] == "time,metric"
    assert len(lines) == 11
    assert lines[1].startswith("0,")
