"""Unit tests for the structured event bus."""

from repro.simkernel.kernel import Simulator
from repro.telemetry.events import EventBus, bus


def test_emit_records_time_kind_and_fields():
    sim = Simulator(seed=0)
    b = bus(sim)

    def proc():
        yield sim.timeout(2.5)
        b.emit("gram.submit", layer="grid", request_id="req-000001",
               site="anl", job_id="j1")

    sim.run(until=sim.process(proc()))
    (ev,) = b.events("gram.submit")
    assert ev.ts == 2.5
    assert ev.layer == "grid"
    assert ev.request_id == "req-000001"
    assert ev.get("site") == "anl"
    assert ev.get("missing", "dflt") == "dflt"
    assert ev.as_dict()["job_id"] == "j1"


def test_bus_is_per_simulator_singleton():
    sim_a, sim_b = Simulator(seed=0), Simulator(seed=0)
    assert bus(sim_a) is bus(sim_a)
    assert bus(sim_a) is not bus(sim_b)
    bus(sim_a).emit("x")
    assert len(bus(sim_b)) == 0


def test_filters_by_kind_layer_and_request_id():
    sim = Simulator(seed=0)
    b = bus(sim)
    b.emit("a.one", layer="ws", request_id="r1")
    b.emit("a.one", layer="ws", request_id="r2")
    b.emit("b.two", layer="grid", request_id="r1")
    assert len(b.events("a.one")) == 2
    assert len(b.events(layer="grid")) == 1
    assert len(b.events(request_id="r1")) == 2
    assert len(b.events("a.one", request_id="r2")) == 1


def test_first_matches_on_fields():
    sim = Simulator(seed=0)
    b = bus(sim)
    b.emit("sched.start", job_id="j1", waited=1.0)
    b.emit("sched.start", job_id="j2", waited=2.0)
    assert b.first("sched.start", job_id="j2").get("waited") == 2.0
    assert b.first("sched.start", job_id="j9") is None
    assert b.first("nope") is None


def test_ring_eviction_keeps_exact_counts():
    sim = Simulator(seed=0)
    b = EventBus(sim, capacity=4)
    for i in range(10):
        b.emit("tick", i=i)
    assert len(b) == 4  # ring holds only the newest
    assert [ev.get("i") for ev in b] == [6, 7, 8, 9]
    assert b.counts() == {"tick": 10}  # counters survive eviction
    assert b.emitted == 10


def test_subscribe_and_unsubscribe():
    sim = Simulator(seed=0)
    b = bus(sim)
    seen = []
    unsub = b.subscribe(lambda ev: seen.append(ev.kind), kinds=["a"])
    b.emit("a")
    b.emit("b")  # filtered out
    assert seen == ["a"]
    unsub()
    b.emit("a")
    assert seen == ["a"]


def test_emission_is_observationally_pure():
    """Emitting must not schedule anything on the simulator."""
    sim = Simulator(seed=0)
    b = bus(sim)
    before = sim.now
    for _ in range(100):
        b.emit("noop", layer="test")
    assert sim.now == before
    # Nothing to run: the queue gained no events from emission.
    sim.run()
    assert sim.now == before


def test_ring_eviction_with_subscriber_attached_mid_run():
    """A late subscriber sees every future event, eviction or not.

    The control tower attaches after warm-up traffic has already
    rolled through (and possibly out of) the ring; subscribers are a
    delivery path, not a ring view, so eviction of history must not
    cost the late-comer a single future event.
    """
    sim = Simulator(seed=0)
    b = EventBus(sim, capacity=4)
    for i in range(6):  # 0,1 already evicted when we subscribe
        b.emit("tick", i=i)
    seen = []
    unsub = b.subscribe(lambda ev: seen.append(ev.get("i")), kinds=["tick"])
    for i in range(6, 16):
        b.emit("tick", i=i)
    # Delivered exactly once each, in order, across 3 ring generations.
    assert seen == list(range(6, 16))
    # The ring itself kept only the newest 4; counters stayed exact.
    assert [ev.get("i") for ev in b] == [12, 13, 14, 15]
    assert b.counts() == {"tick": 16}
    unsub()
    b.emit("tick", i=99)
    assert seen[-1] == 15
