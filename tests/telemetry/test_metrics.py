"""Boundary tests for LatencyHistogram.quantile (q=0 and q=1)."""

import pytest

from repro.telemetry.metrics import LatencyHistogram


def test_quantile_zero_returns_observed_min():
    h = LatencyHistogram()
    for v in (0.004, 0.05, 2.0):
        h.observe(v)
    # Previously this returned bounds[0] (0.001) — a latency nobody
    # ever observed.  q=0 must be the observed minimum.
    assert h.quantile(0.0) == 0.004


def test_quantile_one_returns_observed_max():
    h = LatencyHistogram()
    for v in (0.004, 0.05, 2.0):
        h.observe(v)
    assert h.quantile(1.0) == 2.0


def test_quantile_clamps_bucket_bound_into_observed_range():
    h = LatencyHistogram()
    h.observe(0.5)  # lands in the (0.1, 1.0] bucket
    # The bucket upper bound (1.0) exceeds anything observed; every
    # quantile of a single observation is that observation.
    for q in (0.0, 0.25, 0.5, 1.0):
        assert h.quantile(q) == 0.5


def test_quantile_midpoints_stay_ordered():
    h = LatencyHistogram()
    for v in (0.0005, 0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    qs = [h.quantile(q) for q in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)]
    assert qs == sorted(qs)
    assert qs[0] == h.min
    assert qs[-1] == h.max


def test_quantile_empty_and_out_of_range():
    h = LatencyHistogram()
    assert h.quantile(0.0) == 0.0
    assert h.quantile(1.0) == 0.0
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.1)


# -- merging (fleet rollups fold per-replica histograms) ---------------------

def test_merge_folds_counts_totals_and_extrema():
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (0.004, 0.05):
        a.observe(v)
    for v in (2.0, 30.0):
        b.observe(v)
    out = a.merge(b)
    assert out is a  # in place, chainable
    assert a.count == 4
    assert a.total == pytest.approx(32.054)
    assert a.min == 0.004
    assert a.max == 30.0
    assert a.quantile(1.0) == 30.0
    assert sum(a.counts) == 4


def test_add_builds_a_fresh_histogram_and_iadd_mutates():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.observe(0.5)
    b.observe(5.0)
    c = a + b
    assert c.count == 2 and a.count == 1 and b.count == 1
    assert c.min == 0.5 and c.max == 5.0
    a += b
    assert a.count == 2
    assert a.max == 5.0


def test_merge_empty_histogram_leaves_extrema_untouched():
    a, empty = LatencyHistogram(), LatencyHistogram()
    a.observe(1.0)
    a.merge(empty)
    assert a.count == 1
    assert a.min == 1.0 and a.max == 1.0
    empty2 = LatencyHistogram()
    empty2.merge(a)  # merging *into* an empty one adopts the extrema
    assert empty2.min == 1.0 and empty2.max == 1.0


def test_merge_rejects_mismatched_bucket_bounds():
    a = LatencyHistogram(bounds=(0.1, 1.0))
    b = LatencyHistogram(bounds=(0.5, 5.0))
    with pytest.raises(ValueError):
        a.merge(b)
    with pytest.raises(ValueError):
        a + b
