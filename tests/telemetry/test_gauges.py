"""Unit tests for change-driven gauges and the gauge board."""

from repro.simkernel.kernel import Simulator
from repro.simkernel.resources import Resource
from repro.telemetry.gauges import gauges


def test_gauge_records_only_changes():
    sim = Simulator(seed=0)
    g = gauges(sim).gauge("q", unit="reqs")
    g.set(0.0)  # first sample always recorded
    g.set(0.0)  # no change -> no sample
    g.set(2.0)
    g.set(2.0)
    g.adjust(+1)
    g.adjust(-3)
    assert g.series.values == [0.0, 2.0, 3.0, 0.0]
    assert g.current == 0.0
    assert g.peak() == 3.0


def test_board_is_per_simulator_and_create_on_first_use():
    sim_a, sim_b = Simulator(seed=0), Simulator(seed=0)
    board = gauges(sim_a)
    assert board is gauges(sim_a)
    assert board is not gauges(sim_b)
    g = board.gauge("x.depth", unit="reqs")
    assert board.gauge("x.depth") is g
    assert board.get("x.depth") is g
    assert board.get("missing") is None


def test_board_series_and_peaks_are_name_ordered():
    sim = Simulator(seed=0)
    board = gauges(sim)
    board.gauge("b").set(5.0)
    board.gauge("a").set(1.0)
    assert board.names() == ["a", "b"]
    assert [s.name for s in board.series()] == ["a", "b"]
    assert board.peaks() == {"a": 1.0, "b": 5.0}


def test_attach_resource_tracks_queue_and_utilization():
    sim = Simulator(seed=0)
    res = Resource(sim, capacity=1, name="cpu")
    board = gauges(sim)
    board.attach_resource(res, "head.cpu")

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def waiter():
        yield sim.timeout(1.0)
        req = res.request()
        yield req
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    queue = board.gauge("head.cpu.queue").series
    used = board.gauge("head.cpu.in_use").series
    assert queue.max() == 1.0       # the waiter queued behind the holder
    assert queue.value_at(2.0) == 1.0
    assert queue.values[-1] == 0.0  # drained by the end
    assert used.max() == 1.0
    assert used.values[-1] == 0.0
    # The resource itself knows nothing about telemetry.
    assert not hasattr(res, "_gauge_board")


def test_resource_without_observer_is_unaffected():
    sim = Simulator(seed=0)
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run(until=req)
    res.release(req)
    assert res.observer is None
