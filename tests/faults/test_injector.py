"""FaultInjector: hooks, determinism, and the disabled-plane contract."""

from repro.faults import FaultSpec, fault_plane, get_injector
from repro.grid import build_testbed
from repro.simkernel import Simulator
from repro.telemetry.events import bus


def test_fault_plane_attaches_once():
    sim = Simulator()
    injector = fault_plane(sim)
    assert fault_plane(sim) is injector


def test_get_injector_is_none_until_specs_exist():
    sim = Simulator()
    assert get_injector(sim) is None          # nothing attached
    injector = fault_plane(sim)
    assert get_injector(sim) is None          # attached but no specs
    injector.add(FaultSpec("gram.refuse"))
    assert get_injector(sim) is injector
    injector.clear()
    assert get_injector(sim) is None


def test_fire_triggers_counts_and_emits():
    sim = Simulator()
    injector = fault_plane(sim).add(FaultSpec("gram.refuse", max_fires=2))
    spec = injector.fire("gram.refuse", "ncsa")
    assert spec is not None and spec.fires == 1
    assert injector.injected == 1
    events = bus(sim).events(kind="fault.injected")
    assert len(events) == 1
    assert events[0].get("fault") == "gram.refuse"
    assert events[0].get("target") == "ncsa"


def test_fire_respects_target_cap_and_kind():
    sim = Simulator()
    injector = fault_plane(sim).add(
        FaultSpec("gram.refuse", target="ncsa", max_fires=1))
    assert injector.fire("gridftp.abort", "ncsa") is None   # other kind
    assert injector.fire("gram.refuse", "sdsc") is None     # other site
    assert injector.fire("gram.refuse", "ncsa") is not None
    assert injector.fire("gram.refuse", "ncsa") is None     # exhausted
    assert injector.injected == 1


def test_fire_rate_zero_never_triggers():
    sim = Simulator()
    injector = fault_plane(sim).add(FaultSpec("gram.refuse", rate=0.0))
    assert all(injector.fire("gram.refuse", "ncsa") is None
               for _ in range(50))


def test_fire_rate_draws_are_seed_deterministic():
    def pattern(seed):
        sim = Simulator(seed=seed)
        injector = fault_plane(sim).add(FaultSpec("gram.refuse", rate=0.5))
        return [injector.fire("gram.refuse", "ncsa") is not None
                for _ in range(32)]

    assert pattern(0) == pattern(0)
    assert True in pattern(0) and False in pattern(0)
    assert pattern(0) != pattern(1)  # different seed, different schedule


def test_down_only_inside_window():
    sim = Simulator()
    injector = fault_plane(sim).add(
        FaultSpec("site.outage", target="ncsa", window=(10.0, 20.0)))
    assert injector.down("ncsa") is None          # before the window
    sim.run(until=15.0)
    assert injector.down("sdsc") is None          # other site
    assert injector.down("ncsa") is not None
    sim.run(until=25.0)
    assert injector.down("ncsa") is None          # window passed


def test_install_arms_node_crash_timer():
    tb = build_testbed(n_sites=1, nodes_per_site=2, cores_per_node=2)
    sim = tb.sim
    first_node = tb.sites[0].pool.nodes[0].name
    injector = tb.install_faults([FaultSpec("node.crash", at=10.0)])
    assert injector is fault_plane(sim)
    sim.run(until=20.0)
    events = bus(sim).events(kind="fault.injected")
    assert len(events) == 1
    assert events[0].ts == 10.0
    assert events[0].get("fault") == "node.crash"
    assert events[0].get("node") == first_node
    assert injector.injected == 1


def test_install_is_idempotent_per_spec():
    tb = build_testbed(n_sites=1, nodes_per_site=2, cores_per_node=2)
    injector = tb.install_faults([FaultSpec("node.crash", at=5.0)])
    injector.install(tb)  # re-install must not arm a second timer
    tb.sim.run(until=10.0)
    assert injector.injected == 1


def test_disabled_injector_adds_no_events_to_a_run():
    def run(attach):
        sim = Simulator()
        if attach:
            fault_plane(sim)  # attached, zero specs => disabled

        def op():
            yield sim.timeout(5.0)
            return sim.events_processed

        sim.run(until=sim.process(op()))
        return sim.events_processed

    assert run(attach=False) == run(attach=True)
