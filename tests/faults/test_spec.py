"""FaultSpec: validation and the matching/window/cap predicates."""

import pytest

from repro.faults import FAULT_KINDS, FaultSpec


def test_defaults():
    spec = FaultSpec("gram.refuse")
    assert spec.target == "*"
    assert spec.rate == 1.0
    assert spec.max_fires is None
    assert spec.fires == 0
    assert not spec.exhausted


def test_every_declared_kind_constructs():
    for kind in sorted(FAULT_KINDS):
        kwargs = {}
        if kind in ("site.outage", "replica.crash"):
            kwargs["window"] = (0.0, 10.0)
        if kind == "node.crash":
            kwargs["at"] = 5.0
        assert FaultSpec(kind, **kwargs).kind == kind


@pytest.mark.parametrize("bad", [
    dict(kind="gremlins"),
    dict(kind="gram.refuse", rate=-0.1),
    dict(kind="gram.refuse", rate=1.5),
    dict(kind="gram.refuse", window=(10.0, 10.0)),
    dict(kind="gram.refuse", window=(10.0, 5.0)),
    dict(kind="site.outage"),                      # needs a window
    dict(kind="node.crash"),                       # needs an instant
    dict(kind="replica.crash"),                    # needs a window
    dict(kind="db.stall", duration=-1.0),
    dict(kind="gram.refuse", max_fires=0),
])
def test_validation(bad):
    with pytest.raises(ValueError):
        FaultSpec(**bad)


def test_matching():
    wildcard = FaultSpec("gram.refuse")
    assert wildcard.matches("ncsa") and wildcard.matches("")
    pinned = FaultSpec("gram.refuse", target="ncsa")
    assert pinned.matches("ncsa")
    assert not pinned.matches("sdsc")


def test_window_is_half_open():
    spec = FaultSpec("site.outage", window=(10.0, 20.0))
    assert not spec.active_at(9.999)
    assert spec.active_at(10.0)       # start inclusive
    assert spec.active_at(19.999)
    assert not spec.active_at(20.0)   # end exclusive


def test_windowless_spec_is_always_active():
    assert FaultSpec("gram.refuse").active_at(0.0)
    assert FaultSpec("gram.refuse").active_at(1e12)


def test_max_fires_exhaustion():
    spec = FaultSpec("gram.refuse", max_fires=2)
    assert not spec.exhausted
    spec.fires = 2
    assert spec.exhausted
