"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry

delays = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=50,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    """The clock never goes backwards, whatever the scheduling order."""
    sim = Simulator()
    fired = []
    for d in ds:
        sim.timeout(d).add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
def test_clock_ends_at_max_delay(ds):
    sim = Simulator()
    for d in ds:
        sim.timeout(d)
    sim.run()
    assert sim.now == max(ds)


@given(delays)
def test_same_seed_same_trace(ds):
    """Two simulators fed identical work produce identical event traces."""
    def build():
        sim = Simulator(trace=True)
        for d in ds:
            sim.timeout(d, value=d)
        sim.run()
        return sim.trace()

    assert build() == build()


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    a = RngRegistry(seed).stream(name)
    b = RngRegistry(seed).stream(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(st.integers(min_value=0, max_value=2**31))
def test_rng_streams_independent_of_sibling_consumption(seed):
    """Draws from one stream never perturb another stream's sequence."""
    reg1 = RngRegistry(seed)
    s1 = reg1.stream("target")
    baseline = [s1.random() for _ in range(5)]

    reg2 = RngRegistry(seed)
    other = reg2.stream("other")
    [other.random() for _ in range(100)]  # consume heavily from a sibling
    s2 = reg2.stream("target")
    assert [s2.random() for _ in range(5)] == baseline


@settings(max_examples=25)
@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=100),
                          st.floats(min_value=0.01, max_value=100)),
                min_size=1, max_size=12),
       st.integers(min_value=1, max_value=4))
def test_resource_never_oversubscribed(jobs, capacity):
    """At no instant do more than `capacity` processes hold the resource."""
    from repro.simkernel import Resource

    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = []

    def worker(arrive, hold):
        yield sim.timeout(arrive)
        req = res.request()
        yield req
        max_seen.append(res.count)
        yield sim.timeout(hold)
        res.release(req)

    for arrive, hold in jobs:
        sim.process(worker(arrive, hold))
    sim.run()
    assert len(max_seen) == len(jobs)  # everyone got served
    assert max(max_seen) <= capacity


@settings(max_examples=25)
@given(st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=10))
def test_container_conserves_quantity(amounts):
    """Total put == total got + residual level."""
    from repro.simkernel import Container

    sim = Simulator()
    tank = Container(sim, capacity=sum(amounts) + 1)
    got = []

    def producer():
        for a in amounts:
            yield tank.put(a)
            yield sim.timeout(1)

    def consumer():
        for a in amounts:
            ev = tank.get(a)
            yield ev
            got.append(ev.value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert abs(sum(got) - sum(amounts)) < 1e-9
    assert tank.level == 0
