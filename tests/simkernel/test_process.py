"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Interrupt, Simulator


def test_process_advances_clock():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield sim.timeout(3)
        log.append(sim.now)
        yield sim.timeout(2)
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [0.0, 3.0, 5.0]


def test_process_return_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        return "result"

    proc = sim.process(worker())
    assert sim.run(until=proc) == "result"


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        got = yield sim.timeout(1, value="payload")
        return got

    proc = sim.process(worker())
    assert sim.run(until=proc) == "payload"


def test_process_waits_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(4)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    assert sim.run(until=proc) == 100
    assert sim.now == 4


def test_failed_event_raises_inside_process():
    sim = Simulator()
    trigger = sim.event()

    def worker():
        try:
            yield trigger
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.process(worker())
    trigger.fail(ValueError("bad"))
    assert sim.run(until=proc) == "caught bad"


def test_uncaught_process_exception_propagates_to_waiter():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        raise RuntimeError("worker blew up")

    proc = sim.process(worker())
    with pytest.raises(RuntimeError, match="worker blew up"):
        sim.run(until=proc)


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def worker():
        yield "not an event"

    proc = sim.process(worker())
    with pytest.raises(SimulationError, match="must .*yield Event"):
        sim.run(until=proc)


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            seen.append((sim.now, intr.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert seen == [(5.0, "wake up")]


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(1)
        return sim.now

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5)
        proc.interrupt()

    sim.process(interrupter())
    assert sim.run(until=proc) == 6.0


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_is_alive_lifecycle():
    sim = Simulator()

    def worker():
        yield sim.timeout(2)

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_processes_start_in_creation_order():
    sim = Simulator()
    order = []

    def worker(tag):
        order.append(tag)
        yield sim.timeout(0)

    sim.process(worker("first"))
    sim.process(worker("second"))
    sim.run()
    assert order == ["first", "second"]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def worker():
        while True:
            yield sim.timeout(10)

    sim.process(worker())
    sim.run(until=25)
    assert sim.now == 25
    assert sim.queued_events >= 1
