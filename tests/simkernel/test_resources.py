"""Unit tests for Resource, Container and Store."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Container, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def worker(tag, hold):
        req = res.request()
        yield req
        log.append((tag, "start", sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append((tag, "end", sim.now))

    for i in range(4):
        sim.process(worker(i, hold=10))
    sim.run()
    starts = {tag: t for tag, phase, t in log if phase == "start"}
    assert starts == {0: 0.0, 1: 0.0, 2: 10.0, 3: 10.0}


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5)
        res.release(req)

    def claimant(tag, prio):
        yield sim.timeout(1)  # let the holder grab the slot first
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(claimant("low", prio=5))
    sim.process(claimant("high", prio=0))
    sim.run()
    assert order == ["high", "low"]


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        with res.request() as req:
            yield req
            yield sim.timeout(1)
        return res.count

    proc = sim.process(worker())
    assert sim.run(until=proc) == 0


def test_queued_request_can_be_withdrawn():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    assert held.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # withdraw
    assert queued not in res.queue
    res.release(held)
    assert res.count == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_container_get_blocks_until_available():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    times = []

    def consumer():
        yield tank.get(30)
        times.append(sim.now)

    def producer():
        yield sim.timeout(7)
        yield tank.put(30)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [7.0]
    assert tank.level == 0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=10)
    times = []

    def producer():
        yield tank.put(5)
        times.append(sim.now)

    def consumer():
        yield sim.timeout(3)
        yield tank.get(5)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [3.0]
    assert tank.level == 10


def test_container_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=0)
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=6)
    tank = Container(sim, capacity=5)
    with pytest.raises(SimulationError):
        tank.put(-1)
    with pytest.raises(SimulationError):
        tank.get(-1)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)
            yield sim.timeout(1)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put(1)
        events.append(("put1", sim.now))
        yield store.put(2)
        events.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(5)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert events == [("put1", 0.0), ("put2", 5.0)]
