"""Extra kernel coverage: peek/step/trace, run(until) edge cases."""

import pytest

from repro.errors import CausalityError, SimulationError
from repro.simkernel import Simulator


def test_peek_and_step():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(5.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0
    sim.step()
    assert sim.now == 2.0
    assert sim.queued_events == 1
    sim.step()
    with pytest.raises(SimulationError, match="empty event queue"):
        sim.step()


def test_trace_records_events():
    sim = Simulator(trace=True)
    sim.timeout(1.0, name="first")
    sim.timeout(2.0, name="second")
    sim.run()
    trace = sim.trace()
    assert len(trace) == 2
    assert trace[0][0] == 1.0 and "first" in trace[0][1]
    assert trace[1][0] == 2.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=10.0)
    with pytest.raises(CausalityError):
        sim.run(until=5.0)


def test_run_until_event_queue_exhausted():
    sim = Simulator()
    never = sim.event()  # nothing will ever trigger this
    sim.timeout(1.0)
    with pytest.raises(SimulationError, match="exhausted"):
        sim.run(until=never)


def test_run_until_already_processed_event():
    sim = Simulator()
    ev = sim.timeout(1.0, value="v")
    sim.run()
    # Late waiters on processed events resolve immediately.
    assert sim.run(until=ev) == "v"


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.timeout(1.0)
    sim.run()
    assert sim.events_processed == 7


def test_anyof_ignores_late_failures():
    sim = Simulator()
    fast = sim.timeout(1.0, value="ok")
    slow = sim.event()
    cond = sim.any_of([fast, slow])
    result = sim.run(until=cond)
    assert fast in result
    # A failure after the condition fired must not blow up the run.
    slow.fail(RuntimeError("too late"))
    sim.run()


def test_event_names_in_repr():
    sim = Simulator()
    ev = sim.event(name="my-event")
    assert "my-event" in repr(ev)
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
