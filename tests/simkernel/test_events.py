"""Unit tests for simkernel event primitives."""

import pytest

from repro.errors import CausalityError, SimulationError
from repro.simkernel import Simulator


def test_event_starts_pending():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 42


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callbacks_run_in_registration_order():
    sim = Simulator()
    ev = sim.event()
    order = []
    ev.add_callback(lambda e: order.append("a"))
    ev.add_callback(lambda e: order.append("b"))
    ev.succeed()
    sim.run()
    assert order == ["a", "b"]


def test_late_callback_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_timeout_fires_at_right_time():
    sim = Simulator()
    fired = []
    ev = sim.timeout(2.5, value="done")
    ev.add_callback(lambda e: fired.append((sim.now, e.value)))
    sim.run()
    assert fired == [(2.5, "done")]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(CausalityError):
        sim.timeout(-1)


def test_zero_timeout_allowed():
    sim = Simulator()
    ev = sim.timeout(0)
    sim.run()
    assert ev.processed
    assert sim.now == 0.0


def test_unhandled_failure_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    ev.defused()
    sim.run()  # no raise
    assert not ev.ok


def test_anyof_fires_on_first_child():
    sim = Simulator()
    slow = sim.timeout(10, value="slow")
    fast = sim.timeout(1, value="fast")
    cond = sim.any_of([slow, fast])
    sim.run(until=cond)
    assert sim.now == 1
    assert fast in cond.value
    assert cond.value[fast] == "fast"


def test_allof_waits_for_all_children():
    sim = Simulator()
    a = sim.timeout(1, value="a")
    b = sim.timeout(5, value="b")
    cond = sim.all_of([a, b])
    value = sim.run(until=cond)
    assert sim.now == 5
    assert value == {a: "a", b: "b"}


def test_allof_fails_on_first_child_failure():
    sim = Simulator()
    ok = sim.timeout(10)
    bad = sim.event()
    cond = sim.all_of([ok, bad])
    bad.fail(RuntimeError("child died"))
    with pytest.raises(RuntimeError, match="child died"):
        sim.run(until=cond)


def test_empty_allof_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    assert cond.triggered
    sim.run()
    assert cond.value == {}


def test_condition_rejects_foreign_events():
    sim1 = Simulator()
    sim2 = Simulator()
    with pytest.raises(SimulationError):
        sim1.all_of([sim2.timeout(1)])


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.timeout(1.0, value=i).add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == list(range(10))
