"""Tests for the Cyberaide workflow engine."""

import pytest

from repro.cyberaide import (
    AgentConfig, CyberaideAgent, CyberaideJobSpec, NodeState, Workflow,
    WorkflowNode, WorkflowRunner,
)
from repro.errors import ReproError
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import SoapFabric, SoapServer, WsClient, generate_stub


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=1, nodes_per_site=4, cores_per_node=4,
                       appliance_uplink=Mbps(20))
    tb.new_grid_identity("ada", "pw")
    fabric = SoapFabric()
    server = SoapServer(tb.appliance_host, fabric)
    agent = CyberaideAgent(tb.appliance_host, tb, AgentConfig())
    server.deploy(agent.service_description(), agent.handler)
    stub = generate_stub(server.wsdl(agent.SERVICE_NAME))(
        WsClient(tb.appliance_host, fabric))
    runner = WorkflowRunner(tb.sim, stub, site="ncsa", poll_interval=3.0)
    return tb, runner


def node(name, runtime="5", deps=(), payload=None):
    payload = payload or make_payload("fixed", size=int(KB(1)),
                                      runtime=runtime, output_bytes="256")
    return WorkflowNode(name, CyberaideJobSpec(f"{name}.bin"),
                        payload, depends_on=deps)


def test_linear_chain_runs_in_order(env):
    tb, runner = env
    wf = Workflow("chain")
    wf.add(node("a"))
    wf.add(node("b", deps=("a",)))
    wf.add(node("c", deps=("b",)))
    result = tb.sim.run(until=runner.run(wf, "ada", "pw"))
    assert all(n.state is NodeState.DONE for n in result.nodes.values())
    a, b, c = wf.nodes["a"], wf.nodes["b"], wf.nodes["c"]
    assert a.finished_at <= b.started_at
    assert b.finished_at <= c.started_at
    assert a.output.startswith(b"fixed-profile")


def test_diamond_runs_branches_in_parallel(env):
    tb, runner = env
    wf = Workflow("diamond")
    wf.add(node("src", runtime="5"))
    wf.add(node("left", runtime="30", deps=("src",)))
    wf.add(node("right", runtime="30", deps=("src",)))
    wf.add(node("sink", runtime="5", deps=("left", "right")))
    tb.sim.run(until=runner.run(wf, "ada", "pw"))
    left, right = wf.nodes["left"], wf.nodes["right"]
    # Parallel branches overlap in time.
    assert left.started_at < right.finished_at
    assert right.started_at < left.finished_at
    assert wf.summary() == {"done": 4}


def test_failure_poisons_descendants_only(env):
    tb, runner = env
    wf = Workflow("poison")
    # "bad" exceeds its queue walltime -> killed on the grid.
    bad_spec = CyberaideJobSpec("bad.bin", max_wall_time=30)
    bad_payload = make_payload("fixed", size=int(KB(1)), runtime="300")
    wf.add(WorkflowNode("bad", bad_spec, bad_payload))
    wf.add(node("child", deps=("bad",)))
    wf.add(node("grandchild", deps=("child",)))
    wf.add(node("independent"))
    runner.max_node_seconds = 120.0
    tb.sim.run(until=runner.run(wf, "ada", "pw"))
    assert wf.nodes["bad"].state is NodeState.FAILED
    assert wf.nodes["child"].state is NodeState.POISONED
    assert wf.nodes["grandchild"].state is NodeState.POISONED
    assert wf.nodes["independent"].state is NodeState.DONE
    summary = wf.summary()
    assert summary["failed"] == 1 and summary["poisoned"] == 2


def test_shared_executable_uploaded_once(env):
    tb, runner = env
    payload = make_payload("fixed", size=int(KB(2)), runtime="3")
    wf = Workflow("shared")
    spec = CyberaideJobSpec("same.bin")
    wf.add(WorkflowNode("one", CyberaideJobSpec("same.bin"), payload))
    wf.add(WorkflowNode("two", CyberaideJobSpec("same.bin"), payload,
                        depends_on=("one",)))
    agent = None
    # Find the in-process agent to read its counters.
    tb.sim.run(until=runner.run(wf, "ada", "pw"))
    assert wf.summary() == {"done": 2}
    # One distinct staged path -> one upload.
    # (the runner's stub wraps the agent; counters live on the site FTP)
    assert tb.ftp("ncsa").transfers_in == 1


def test_validation_errors(env):
    tb, runner = env
    wf = Workflow("broken")
    wf.add(node("a", deps=("ghost",)))
    with pytest.raises(ReproError, match="unknown"):
        wf.validate()

    cyc = Workflow("cycle")
    cyc.add(node("x", deps=("y",)))
    cyc.add(node("y", deps=("x",)))
    with pytest.raises(ReproError, match="cycle"):
        cyc.validate()

    dup = Workflow("dup")
    dup.add(node("n"))
    with pytest.raises(ReproError, match="duplicate"):
        dup.add(node("n"))

    with pytest.raises(ReproError, match="name"):
        WorkflowNode("", CyberaideJobSpec("x.bin"), b"p")


def test_bad_credentials_fail_run(env):
    tb, runner = env
    wf = Workflow("auth")
    wf.add(node("a"))
    with pytest.raises(Exception):
        tb.sim.run(until=runner.run(wf, "ada", "wrong"))
