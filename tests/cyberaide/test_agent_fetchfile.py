"""Tests for the agent's fetchFile operation (arbitrary grid files)."""

import pytest

from repro.cyberaide import AgentConfig, CyberaideAgent
from repro.errors import SoapFault
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import SoapFabric, SoapServer, WsClient, generate_stub


def env():
    tb = build_testbed(n_sites=1, nodes_per_site=1, cores_per_node=2,
                       appliance_uplink=Mbps(10))
    tb.new_grid_identity("ada", "pw")
    fabric = SoapFabric()
    server = SoapServer(tb.appliance_host, fabric)
    agent = CyberaideAgent(tb.appliance_host, tb, AgentConfig())
    server.deploy(agent.service_description(), agent.handler)
    stub = generate_stub(server.wsdl(agent.SERVICE_NAME))(
        WsClient(tb.appliance_host, fabric))
    return tb, stub


def test_fetchfile_roundtrip():
    tb, stub = env()
    payload = make_payload("echo", size=int(KB(8)))

    def flow():
        session = yield stub.authenticate(username="ada", passphrase="pw")
        yield stub.uploadExecutable(session=session, site="ncsa",
                                    path="/data/f.bin", data=payload)
        back = yield stub.fetchFile(session=session, site="ncsa",
                                    path="/data/f.bin")
        return back

    assert tb.sim.run(until=tb.sim.process(flow())) == payload


def test_fetchfile_missing_faults():
    tb, stub = env()

    def flow():
        session = yield stub.authenticate(username="ada", passphrase="pw")
        yield stub.fetchFile(session=session, site="ncsa", path="/ghost")

    with pytest.raises(SoapFault, match="no such file"):
        tb.sim.run(until=tb.sim.process(flow()))
