"""Tests for the extended shell commands: cancel, discover, invoke."""

import pytest

from repro.core import deploy_onserve
from repro.cyberaide import CyberaideShell
from repro.grid import JobState, build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import WsClient


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=1, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    tb.new_grid_identity("ada", "pw")
    shell = CyberaideShell(
        WsClient(tb.user_hosts[0], stack.fabric),
        stack.soap_server.endpoint_for("CyberaideAgent"),
        inquiry_endpoint=stack.soap_server.endpoint_for("UddiInquiry"))
    tb.sim.run(until=shell.execute("auth ada pw"))
    return tb, stack, shell


def run(tb, shell, line):
    return tb.sim.run(until=shell.execute(line))


def test_cancel_running_job(env):
    tb, stack, shell = env
    shell.add_file("long.sh", make_payload("fixed", runtime="1000"))
    out = run(tb, shell, "run ncsa long.sh")
    job_id = out.split(": ")[1]

    def later():
        yield tb.sim.timeout(5.0)
        return (yield shell.execute(f"cancel ncsa {job_id}"))

    result = tb.sim.run(until=tb.sim.process(later()))
    assert "canceled" in result
    assert tb.site("ncsa").get_job(job_id).state is JobState.CANCELED


def test_cancel_usage(env):
    tb, stack, shell = env
    assert "usage:" in run(tb, shell, "cancel onlyone")


def test_discover_lists_published_services(env):
    tb, stack, shell = env
    payload = make_payload("echo", size=int(KB(1)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload, description="greets",
        params_spec="name:string"))
    out = run(tb, shell, "discover %Service")
    assert "HelloService" in out and "greets" in out
    assert run(tb, shell, "discover Nothing%") == "(no services match)"


def test_invoke_coerces_types_from_wsdl(env):
    tb, stack, shell = env
    payload = make_payload("mcpi", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "pi.sh", payload,
        params_spec="samples:int, seed:int"))
    out = run(tb, shell, "invoke Pi% samples=20000 seed=1")
    assert "pi_estimate=" in out


def test_invoke_reports_parameter_problems(env):
    tb, stack, shell = env
    payload = make_payload("echo", size=int(KB(1)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "e.sh", payload, params_spec="a:string"))
    assert "missing parameter" in run(tb, shell, "invoke E%")
    assert "unknown parameters" in run(tb, shell, "invoke E% a=x b=y")
    assert "bad parameter" in run(tb, shell, "invoke E% justvalue")
    assert "no service matches" in run(tb, shell, "invoke Zzz% a=1")


def test_invoke_bad_type_coercion(env):
    tb, stack, shell = env
    payload = make_payload("mcpi", size=int(KB(1)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "p2.sh", payload, params_spec="samples:int, seed:int"))
    out = run(tb, shell, "invoke P2% samples=lots seed=1")
    assert "cannot read 'lots' as xsd:int" in out


def test_discover_requires_inquiry_endpoint():
    tb = build_testbed(n_sites=1, nodes_per_site=1, cores_per_node=2,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    shell = CyberaideShell(WsClient(tb.user_hosts[0], stack.fabric),
                           stack.soap_server.endpoint_for("CyberaideAgent"))
    out = tb.sim.run(until=shell.execute("discover %"))
    assert "no UDDI inquiry endpoint" in out
