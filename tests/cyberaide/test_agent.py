"""Unit tests for the Cyberaide agent, jobspec and mediator."""

import pytest

from repro.cyberaide import AgentConfig, CyberaideAgent, CyberaideJobSpec
from repro.cyberaide.mediator import Mediator, TaskState
from repro.errors import AuthenticationFailed, RslError, SoapFault
from repro.grid import build_testbed
from repro.simkernel import Simulator
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import SoapFabric, SoapServer, WsClient, generate_stub


def agent_env(status_supported=False):
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    tb.new_grid_identity("onserve", "pw")
    fabric = SoapFabric()
    server = SoapServer(tb.appliance_host, fabric)
    agent = CyberaideAgent(tb.appliance_host, tb,
                           AgentConfig(status_supported=status_supported))
    server.deploy(agent.service_description(), agent.handler)
    stub = generate_stub(server.wsdl(agent.SERVICE_NAME))(
        WsClient(tb.appliance_host, fabric))
    return tb, agent, stub


# ---------------------------------------------------------------- jobspec

def test_jobspec_paths_and_rsl():
    spec = CyberaideJobSpec("hello.sh", arguments=["a", 3], count=2,
                            max_wall_time=120)
    assert spec.staged_path() == "/scratch/cyberaide/hello.sh"
    assert spec.stdout_path("t1") == "/scratch/cyberaide/hello.sh.t1.out"
    rsl = spec.to_rsl("t1")
    assert 'executable="/scratch/cyberaide/hello.sh"' in rsl
    assert '"a" "3"' in rsl
    assert "(count=2)" in rsl


def test_jobspec_validation():
    with pytest.raises(RslError):
        CyberaideJobSpec("")
    with pytest.raises(RslError):
        CyberaideJobSpec("has/slash")


# ---------------------------------------------------------------- agent

def test_authenticate_creates_session():
    tb, agent, stub = agent_env()

    def flow():
        return (yield stub.authenticate(username="onserve", passphrase="pw"))

    session = tb.sim.run(until=tb.sim.process(flow()))
    assert session.startswith("sess-")
    assert session in agent._sessions


def test_authenticate_bad_credentials_fault():
    tb, agent, stub = agent_env()

    def flow():
        yield stub.authenticate(username="onserve", passphrase="nope")

    with pytest.raises(SoapFault, match="passphrase"):
        tb.sim.run(until=tb.sim.process(flow()))


def test_list_sites_best_first():
    tb, agent, stub = agent_env()

    def flow():
        yield stub.authenticate(username="onserve", passphrase="pw")
        return (yield stub.listSites())

    sites = tb.sim.run(until=tb.sim.process(flow()))
    assert set(sites.split(",")) == {"ncsa", "sdsc"}


def test_full_job_cycle_through_agent():
    tb, agent, stub = agent_env()
    payload = make_payload("echo", size=int(KB(2)))
    spec = CyberaideJobSpec("echo.sh", arguments=["hi"])

    def flow():
        session = yield stub.authenticate(username="onserve", passphrase="pw")
        n = yield stub.uploadExecutable(session=session, site="ncsa",
                                        path=spec.staged_path(), data=payload)
        assert n == len(payload)
        job_id = yield stub.submitJob(session=session, site="ncsa",
                                      rsl=spec.to_rsl("t"))
        # Tentative polling until the stdout file appears.
        while True:
            ready = yield stub.outputReady(session=session, site="ncsa",
                                           path=spec.stdout_path("t"))
            if ready:
                break
            yield tb.sim.timeout(3.0)
        output = yield stub.fetchOutput(session=session, site="ncsa",
                                        jobId=job_id)
        return output

    output = tb.sim.run(until=tb.sim.process(flow()))
    assert output == b"hi\n"
    assert agent.uploads == 1
    assert agent.submissions == 1
    assert agent.output_polls >= 1


def test_job_status_blocked_by_default():
    tb, agent, stub = agent_env(status_supported=False)

    def flow():
        session = yield stub.authenticate(username="onserve", passphrase="pw")
        yield stub.jobStatus(session=session, site="ncsa", jobId="x")

    with pytest.raises(SoapFault, match="not retrievable"):
        tb.sim.run(until=tb.sim.process(flow()))


def test_job_status_works_in_ablation():
    tb, agent, stub = agent_env(status_supported=True)
    payload = make_payload("fixed", runtime="5")
    spec = CyberaideJobSpec("f.sh")

    def flow():
        session = yield stub.authenticate(username="onserve", passphrase="pw")
        yield stub.uploadExecutable(session=session, site="ncsa",
                                    path=spec.staged_path(), data=payload)
        job_id = yield stub.submitJob(session=session, site="ncsa",
                                      rsl=spec.to_rsl("t"))
        yield tb.sim.timeout(30.0)
        return (yield stub.jobStatus(session=session, site="ncsa",
                                     jobId=job_id))

    assert tb.sim.run(until=tb.sim.process(flow())) == "done"


def test_calls_require_session():
    tb, agent, stub = agent_env()

    def flow():
        yield stub.submitJob(session="sess-bogus", site="ncsa", rsl="&")

    with pytest.raises(SoapFault, match="no such agent session"):
        tb.sim.run(until=tb.sim.process(flow()))


def test_session_expires():
    tb, agent, stub = agent_env()
    agent.config.default_proxy_lifetime = 100.0

    def flow():
        session = yield stub.authenticate(username="onserve", passphrase="pw")
        yield tb.sim.timeout(7200.0)
        yield stub.listSites()  # fine: needs no session
        yield stub.fetchOutput(session=session, site="ncsa", jobId="x")

    with pytest.raises(SoapFault, match="expired"):
        tb.sim.run(until=tb.sim.process(flow()))


def test_unknown_site_fault():
    tb, agent, stub = agent_env()

    def flow():
        session = yield stub.authenticate(username="onserve", passphrase="pw")
        yield stub.uploadExecutable(session=session, site="mars",
                                    path="/x", data=b"d")

    with pytest.raises(SoapFault, match="GridFTP"):
        tb.sim.run(until=tb.sim.process(flow()))


# ---------------------------------------------------------------- mediator

def test_mediator_bounds_concurrency():
    sim = Simulator()
    med = Mediator(sim, max_concurrent=2)
    active = []
    peak = []

    def work():
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(10)
        active.pop()
        return "ok"

    tasks = [med.submit(work, label=f"t{i}") for i in range(5)]
    sim.run()
    assert max(peak) <= 2
    assert all(t.state is TaskState.DONE for t in tasks)
    assert med.stats()["done"] == 5
    assert med.stats()["mean_queue_wait"] > 0


def test_mediator_captures_failures():
    sim = Simulator()
    med = Mediator(sim, max_concurrent=1)

    def bad():
        yield sim.timeout(1)
        from repro.errors import JobError
        raise JobError("exploded")

    task = med.submit(bad, label="boom")
    sim.run()
    assert task.state is TaskState.FAILED
    assert "exploded" in str(task.error)
    assert med.stats()["failed"] == 1


def test_mediator_wait_all():
    sim = Simulator()
    med = Mediator(sim, max_concurrent=2)

    def work(d):
        yield sim.timeout(d)

    for d in (5, 10, 15):
        med.submit(lambda d=d: work(d))
    done = med.wait_all()
    sim.run(until=done)
    assert sim.now == pytest.approx(20.0)  # 5,10 parallel; 15 queued after 5
