"""Unit tests for the Cyberaide shell."""

import pytest

from repro.cyberaide import AgentConfig, CyberaideAgent, CyberaideShell
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import SoapFabric, SoapServer, WsClient


def shell_env():
    tb = build_testbed(n_sites=1, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    tb.new_grid_identity("ada", "pw")
    fabric = SoapFabric()
    server = SoapServer(tb.appliance_host, fabric)
    agent = CyberaideAgent(tb.appliance_host, tb, AgentConfig())
    endpoint = server.deploy(agent.service_description(), agent.handler)
    client = WsClient(tb.user_hosts[0], fabric)
    shell = CyberaideShell(client, endpoint)
    return tb, shell


def run(tb, shell, line):
    return tb.sim.run(until=shell.execute(line))


def test_help_and_files():
    tb, shell = shell_env()
    assert "commands:" in run(tb, shell, "help")
    assert run(tb, shell, "files") == "(none)"
    shell.add_file("a.sh", b"123")
    assert "a.sh (3 bytes)" in run(tb, shell, "files")


def test_commands_require_auth():
    tb, shell = shell_env()
    out = run(tb, shell, "sites")
    assert "not authenticated" in out


def test_auth_then_sites():
    tb, shell = shell_env()
    out = run(tb, shell, "auth ada pw")
    assert out.startswith("authenticated")
    assert run(tb, shell, "sites") == "ncsa"


def test_auth_failure_is_reported_not_raised():
    tb, shell = shell_env()
    out = run(tb, shell, "auth ada wrong")
    assert out.startswith("error:")
    assert shell.session is None


def test_run_and_output_roundtrip():
    tb, shell = shell_env()
    shell.add_file("echo.sh", make_payload("echo", size=int(KB(1))))
    run(tb, shell, "auth ada pw")
    out = run(tb, shell, "run ncsa echo.sh hello world")
    assert out.startswith("submitted: ")
    job_id = out.split(": ")[1]

    def wait_then_output():
        yield tb.sim.timeout(30.0)
        return (yield shell.execute(f"output ncsa {job_id}"))

    result = tb.sim.run(until=tb.sim.process(wait_then_output()))
    assert result == "hello\nworld\n"


def test_status_reflects_agent_limitation():
    tb, shell = shell_env()
    run(tb, shell, "auth ada pw")
    out = run(tb, shell, "status ncsa some-job")
    assert "error:" in out and "not retrievable" in out


def test_usage_errors():
    tb, shell = shell_env()
    run(tb, shell, "auth ada pw")
    assert "usage:" in run(tb, shell, "auth onlyone")
    assert "usage:" in run(tb, shell, "run ncsa")
    assert "no local file" in run(tb, shell, "run ncsa ghost.sh")
    assert "unknown command" in run(tb, shell, "frobnicate")
    assert "error" in run(tb, shell, 'run "unclosed')
    assert run(tb, shell, "") == ""
    assert len(shell.history) >= 6
