"""Unit tests for SQL aggregate functions and GROUP BY."""

import pytest

from repro.db import Database, execute_sql
from repro.errors import SqlError


def scores_db():
    db = Database()
    execute_sql(db, "CREATE TABLE s (id INT PRIMARY KEY, team TEXT, "
                    "points REAL)")
    rows = [(1, "red", 10.0), (2, "red", 20.0), (3, "blue", 5.0),
            (4, "blue", None), (5, "green", 7.5)]
    for r in rows:
        db.insert("s", list(r))
    return db


def test_count_star():
    db = scores_db()
    assert execute_sql(db, "SELECT COUNT(*) FROM s") == [{"count(*)": 5}]


def test_count_column_ignores_null():
    db = scores_db()
    assert execute_sql(db, "SELECT COUNT(points) FROM s") == [
        {"count(points)": 4}]


def test_sum_avg_min_max():
    db = scores_db()
    row = execute_sql(db, "SELECT SUM(points), AVG(points), MIN(points), "
                          "MAX(points) FROM s")[0]
    assert row["sum(points)"] == pytest.approx(42.5)
    assert row["avg(points)"] == pytest.approx(42.5 / 4)
    assert row["min(points)"] == 5.0
    assert row["max(points)"] == 20.0


def test_aggregate_with_where():
    db = scores_db()
    assert execute_sql(db, "SELECT COUNT(*) FROM s WHERE team = 'red'") == [
        {"count(*)": 2}]


def test_aggregates_on_empty_input():
    db = scores_db()
    row = execute_sql(db, "SELECT COUNT(*), SUM(points) FROM s "
                          "WHERE team = 'nope'")[0]
    assert row == {"count(*)": 0, "sum(points)": None}


def test_group_by():
    db = scores_db()
    rows = execute_sql(db, "SELECT team, COUNT(*), SUM(points) FROM s "
                           "GROUP BY team")
    assert rows == [
        {"team": "blue", "count(*)": 2, "sum(points)": 5.0},
        {"team": "green", "count(*)": 1, "sum(points)": 7.5},
        {"team": "red", "count(*)": 2, "sum(points)": 30.0},
    ]


def test_group_by_with_order_and_limit():
    db = scores_db()
    rows = execute_sql(db, "SELECT team, MAX(points) FROM s GROUP BY team "
                           "ORDER BY team DESC LIMIT 2")
    assert [r["team"] for r in rows] == ["red", "green"]


def test_group_by_null_group():
    db = scores_db()
    db.insert("s", [6, None, 1.0])
    rows = execute_sql(db, "SELECT team, COUNT(*) FROM s GROUP BY team")
    # The NULL group sorts last and is present.
    assert rows[-1]["team"] is None
    assert rows[-1]["count(*)"] == 1


def test_aggregate_validation():
    db = scores_db()
    with pytest.raises(SqlError, match="only COUNT"):
        execute_sql(db, "SELECT SUM(*) FROM s")
    with pytest.raises(SqlError, match="GROUP BY"):
        execute_sql(db, "SELECT team, COUNT(*) FROM s")
    with pytest.raises(SqlError, match="requires at least one aggregate"):
        execute_sql(db, "SELECT team FROM s GROUP BY team")
    with pytest.raises(SqlError, match="no such column"):
        execute_sql(db, "SELECT SUM(nope) FROM s")
    with pytest.raises(SqlError, match="no such column"):
        execute_sql(db, "SELECT COUNT(*) FROM s GROUP BY nope")


def test_plain_selects_unaffected():
    db = scores_db()
    rows = execute_sql(db, "SELECT id FROM s ORDER BY id LIMIT 2")
    assert [r["id"] for r in rows] == [1, 2]
