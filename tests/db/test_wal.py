"""Unit tests for the write-ahead log and its value codec."""

import io

import pytest

from repro.db.wal import WriteAheadLog, decode_value, encode_value
from repro.errors import DatabaseError


def roundtrip(value):
    buf = io.BytesIO()
    encode_value(value, buf)
    return decode_value(io.BytesIO(buf.getvalue()))


def test_codec_roundtrips_scalars():
    for v in (None, 0, -5, 2**70, 3.14, -0.0, "", "héllo", b"", b"\x00\xff",
              [1, "a", None, [b"x"]]):
        got = roundtrip(v)
        if isinstance(v, tuple):
            v = list(v)
        assert got == v


def test_codec_rejects_bool_and_unknown():
    buf = io.BytesIO()
    with pytest.raises(DatabaseError):
        encode_value(True, buf)
    with pytest.raises(DatabaseError):
        encode_value(object(), buf)


def test_codec_truncated_raises():
    buf = io.BytesIO()
    encode_value("hello world", buf)
    data = buf.getvalue()
    with pytest.raises(DatabaseError, match="truncated"):
        decode_value(io.BytesIO(data[:-3]))


def test_wal_append_and_read():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    wal.append(("insert", 1, "t", 1, [1, "x", b"blob"]))
    wal.append(("commit", 1))
    records = list(wal.records())
    assert records == [
        ("begin", 1),
        ("insert", 1, "t", 1, [1, "x", b"blob"]),
        ("commit", 1),
    ]


def test_wal_torn_tail_ignored():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    size_after_first = wal.size()
    wal.append(("commit", 1))
    wal.truncate(size_after_first + 3)  # tear the second record
    assert list(wal.records()) == [("begin", 1)]


def test_wal_corrupt_frame_stops_replay():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    first = wal.size()
    wal.append(("commit", 1))
    wal.append(("begin", 2))
    wal.corrupt(first + 10)  # flip a byte inside the second record
    records = list(wal.records())
    assert records == [("begin", 1)]  # everything after the damage is dropped


def test_wal_snapshot_reload():
    wal = WriteAheadLog()
    wal.append(("x", 1))
    clone = WriteAheadLog(wal.snapshot())
    assert list(clone.records()) == [("x", 1)]


def test_wal_reset():
    wal = WriteAheadLog()
    wal.append(("x", 1))
    wal.reset()
    assert wal.size() == 0
    assert list(wal.records()) == []


def test_wal_len_counts_valid_records():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append(("r", i))
    assert len(wal) == 5


def test_wal_taps_see_records_in_append_order():
    wal = WriteAheadLog()
    seen_a, seen_b = [], []
    wal.taps.append(seen_a.append)
    wal.taps.append(lambda rec: seen_b.append(rec))
    records = [("begin", 1), ("insert", 1, "t", 1, [1]), ("commit", 1)]
    for rec in records:
        wal.append(rec)
    assert seen_a == records
    assert seen_b == records


def test_observer_byte_gauge_consistent_under_rollback():
    """Sum of observer deltas tracks wal.size() — a rollback appends an
    abort record (growing the log), it never double-counts or rewinds
    the undone mutations."""
    from repro.db.engine import Database
    from repro.db.table import Column

    db = Database()
    db.create_table("t", [Column("a", "INT", primary_key=True)])
    deltas = []
    totals = []

    def observe(delta, total):
        deltas.append(delta)
        totals.append(total)

    db.wal.observer = observe
    base = db.wal.size()
    db.begin()
    db.insert("t", [1])
    db.insert("t", [2])
    db.rollback()
    assert db.count("t") == 0
    # Every delta was a forward append; the running total never jumped.
    assert all(d > 0 for d in deltas)
    assert base + sum(deltas) == db.wal.size()
    assert totals[-1] == db.wal.size()
    # Committed work after the rollback keeps the same invariant.
    with db.transaction():
        db.insert("t", [3])
    assert base + sum(deltas) == db.wal.size()
