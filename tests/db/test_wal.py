"""Unit tests for the write-ahead log and its value codec."""

import io

import pytest

from repro.db.wal import WriteAheadLog, decode_value, encode_value
from repro.errors import DatabaseError


def roundtrip(value):
    buf = io.BytesIO()
    encode_value(value, buf)
    return decode_value(io.BytesIO(buf.getvalue()))


def test_codec_roundtrips_scalars():
    for v in (None, 0, -5, 2**70, 3.14, -0.0, "", "héllo", b"", b"\x00\xff",
              [1, "a", None, [b"x"]]):
        got = roundtrip(v)
        if isinstance(v, tuple):
            v = list(v)
        assert got == v


def test_codec_rejects_bool_and_unknown():
    buf = io.BytesIO()
    with pytest.raises(DatabaseError):
        encode_value(True, buf)
    with pytest.raises(DatabaseError):
        encode_value(object(), buf)


def test_codec_truncated_raises():
    buf = io.BytesIO()
    encode_value("hello world", buf)
    data = buf.getvalue()
    with pytest.raises(DatabaseError, match="truncated"):
        decode_value(io.BytesIO(data[:-3]))


def test_wal_append_and_read():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    wal.append(("insert", 1, "t", 1, [1, "x", b"blob"]))
    wal.append(("commit", 1))
    records = list(wal.records())
    assert records == [
        ("begin", 1),
        ("insert", 1, "t", 1, [1, "x", b"blob"]),
        ("commit", 1),
    ]


def test_wal_torn_tail_ignored():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    size_after_first = wal.size()
    wal.append(("commit", 1))
    wal.truncate(size_after_first + 3)  # tear the second record
    assert list(wal.records()) == [("begin", 1)]


def test_wal_corrupt_frame_stops_replay():
    wal = WriteAheadLog()
    wal.append(("begin", 1))
    first = wal.size()
    wal.append(("commit", 1))
    wal.append(("begin", 2))
    wal.corrupt(first + 10)  # flip a byte inside the second record
    records = list(wal.records())
    assert records == [("begin", 1)]  # everything after the damage is dropped


def test_wal_snapshot_reload():
    wal = WriteAheadLog()
    wal.append(("x", 1))
    clone = WriteAheadLog(wal.snapshot())
    assert list(clone.records()) == [("x", 1)]


def test_wal_reset():
    wal = WriteAheadLog()
    wal.append(("x", 1))
    wal.reset()
    assert wal.size() == 0
    assert list(wal.records()) == []


def test_wal_len_counts_valid_records():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append(("r", i))
    assert len(wal) == 5
