"""Unit tests for the SQL dialect."""

import pytest

from repro.db import Database, execute_sql
from repro.db.sql import tokenize
from repro.errors import SqlError


def db_with_users():
    db = Database()
    execute_sql(db, "CREATE TABLE users (id INT PRIMARY KEY, "
                    "name TEXT NOT NULL, score REAL, data BLOB)")
    execute_sql(db, "INSERT INTO users VALUES (1, 'ada', 9.5, X'00ff')")
    execute_sql(db, "INSERT INTO users (id, name) VALUES (2, 'bob'), (3, 'carol')")
    return db


# ---------------------------------------------------------------- tokenizer

def test_tokenize_kinds():
    toks = tokenize("SELECT a, 'it''s', 1.5, 42, X'ab' FROM t;")
    kinds = [t.kind for t in toks]
    assert kinds == ["KEYWORD", "NAME", "OP", "STRING", "OP", "REAL", "OP",
                     "INT", "OP", "BLOB", "KEYWORD", "NAME", "OP", "END"]
    assert toks[3].value == "it's"
    assert toks[9].value == b"\xab"


def test_tokenize_bad_char():
    with pytest.raises(SqlError, match="unexpected character"):
        tokenize("SELECT @ FROM t")


# ---------------------------------------------------------------- DDL + insert

def test_create_insert_select_roundtrip():
    db = db_with_users()
    rows = execute_sql(db, "SELECT * FROM users")
    assert len(rows) == 3
    assert rows[0]["data"] == b"\x00\xff"
    assert rows[1]["score"] is None


def test_insert_column_list_fills_nulls():
    db = db_with_users()
    row = execute_sql(db, "SELECT score FROM users WHERE id = 2")
    assert row == [{"score": None}]


def test_insert_arity_mismatch():
    db = db_with_users()
    with pytest.raises(SqlError, match="arity"):
        execute_sql(db, "INSERT INTO users (id, name) VALUES (9)")


def test_insert_unknown_column():
    db = db_with_users()
    with pytest.raises(SqlError, match="unknown columns"):
        execute_sql(db, "INSERT INTO users (id, nope) VALUES (9, 1)")


def test_drop_table_sql():
    db = db_with_users()
    execute_sql(db, "DROP TABLE users")
    with pytest.raises(Exception):
        execute_sql(db, "SELECT * FROM users")


# ---------------------------------------------------------------- WHERE

def test_where_comparisons():
    db = db_with_users()
    assert [r["id"] for r in
            execute_sql(db, "SELECT id FROM users WHERE score >= 9")] == [1]
    assert [r["id"] for r in
            execute_sql(db, "SELECT id FROM users WHERE name <> 'ada'")] == [2, 3]


def test_where_and_or_not_parens():
    db = db_with_users()
    rows = execute_sql(
        db, "SELECT id FROM users WHERE (id = 1 OR id = 3) AND NOT name = 'ada'")
    assert [r["id"] for r in rows] == [3]


def test_where_null_semantics():
    db = db_with_users()
    # score comparisons never match NULL scores.
    assert [r["id"] for r in
            execute_sql(db, "SELECT id FROM users WHERE score < 100")] == [1]
    assert [r["id"] for r in
            execute_sql(db, "SELECT id FROM users WHERE score IS NULL")] == [2, 3]
    assert [r["id"] for r in
            execute_sql(db, "SELECT id FROM users WHERE score IS NOT NULL")] == [1]


def test_where_like():
    db = db_with_users()
    assert [r["name"] for r in
            execute_sql(db, "SELECT name FROM users WHERE name LIKE 'c%'")] == ["carol"]
    assert [r["name"] for r in
            execute_sql(db, "SELECT name FROM users WHERE name LIKE '_ob'")] == ["bob"]


def test_order_by_and_limit():
    db = db_with_users()
    rows = execute_sql(db, "SELECT name FROM users ORDER BY name DESC LIMIT 2")
    assert [r["name"] for r in rows] == ["carol", "bob"]
    rows = execute_sql(db, "SELECT id FROM users ORDER BY score ASC")
    # NULLs sort last ascending.
    assert [r["id"] for r in rows][0] == 1


# ---------------------------------------------------------------- update/delete

def test_update_returns_count():
    db = db_with_users()
    n = execute_sql(db, "UPDATE users SET score = 1.0 WHERE score IS NULL")
    assert n == 2
    assert execute_sql(db, "SELECT id FROM users WHERE score = 1.0") is not None


def test_delete_returns_count():
    db = db_with_users()
    assert execute_sql(db, "DELETE FROM users WHERE id > 1") == 2
    assert len(execute_sql(db, "SELECT * FROM users")) == 1


# ---------------------------------------------------------------- transactions

def test_sql_transaction_rollback():
    db = db_with_users()
    execute_sql(db, "BEGIN")
    execute_sql(db, "DELETE FROM users")
    execute_sql(db, "ROLLBACK")
    assert len(execute_sql(db, "SELECT * FROM users")) == 3
    execute_sql(db, "BEGIN")
    execute_sql(db, "DELETE FROM users WHERE id = 1")
    execute_sql(db, "COMMIT")
    assert len(execute_sql(db, "SELECT * FROM users")) == 2


# ---------------------------------------------------------------- index routing

def test_indexed_equality_select():
    db = db_with_users()
    execute_sql(db, "CREATE INDEX ON users (name) USING HASH")
    rows = execute_sql(db, "SELECT * FROM users WHERE name = 'bob'")
    assert [r["id"] for r in rows] == [2]


def test_sorted_index_creation():
    db = db_with_users()
    execute_sql(db, "CREATE INDEX ON users (score) USING SORTED")
    assert ("users", "score") in db._indexes


def test_planner_routes_equality_through_index_counters():
    db = db_with_users()
    execute_sql(db, "CREATE INDEX ON users (name) USING HASH")
    db.stats["rows_scanned"] = 0
    db.stats["index_rows"] = 0
    rows = execute_sql(db, "SELECT * FROM users WHERE name = 'carol'")
    assert [r["id"] for r in rows] == [3]
    # The predicate was answered off the index: no heap scan at all.
    assert db.stats["rows_scanned"] == 0
    assert db.stats["index_rows"] == 1


def test_planner_routes_range_through_sorted_index():
    db = db_with_users()
    execute_sql(db, "UPDATE users SET score = 2.0 WHERE id = 2")
    execute_sql(db, "UPDATE users SET score = 5.0 WHERE id = 3")
    execute_sql(db, "CREATE INDEX ON users (score) USING SORTED")
    db.stats["rows_scanned"] = 0
    db.stats["index_rows"] = 0
    rows = execute_sql(db, "SELECT id FROM users WHERE score >= 5.0")
    assert sorted(r["id"] for r in rows) == [1, 3]
    assert db.stats["rows_scanned"] == 0
    assert db.stats["index_rows"] == 2
    rows = execute_sql(db, "SELECT id FROM users WHERE score < 3.0")
    assert [r["id"] for r in rows] == [2]
    rows = execute_sql(db, "SELECT id FROM users WHERE score > 9.5")
    assert rows == []
    assert db.stats["rows_scanned"] == 0


def test_planner_scans_heap_without_index():
    db = db_with_users()
    db.stats["rows_scanned"] = 0
    db.stats["index_rows"] = 0
    rows = execute_sql(db, "SELECT id FROM users WHERE name = 'ada'")
    assert [r["id"] for r in rows] == [1]
    # Same query, no index: every heap row was visited.
    assert db.stats["rows_scanned"] == 3
    assert db.stats["index_rows"] == 0


# ---------------------------------------------------------------- errors

def test_parse_errors():
    db = Database()
    for bad in [
        "SELEC * FROM t",
        "SELECT FROM t",
        "CREATE TABLE t (a NOPE)",
        "INSERT INTO t VALUES 1",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t LIMIT 'x'",
        "",
    ]:
        with pytest.raises(SqlError):
            execute_sql(db, bad)


def test_unknown_column_in_where():
    db = db_with_users()
    with pytest.raises(SqlError, match="no such column"):
        execute_sql(db, "SELECT * FROM users WHERE nope = 1")


def test_unknown_projection_column():
    db = db_with_users()
    with pytest.raises(SqlError, match="unknown columns"):
        execute_sql(db, "SELECT nope FROM users")
