"""Property-based tests: SQL engine vs an in-memory oracle, WAL recovery."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.table import Column
from repro.db.wal import decode_value, encode_value

values = st.one_of(
    st.none(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)


@given(st.lists(values, max_size=10))
def test_wal_codec_roundtrip(items):
    buf = io.BytesIO()
    encode_value(items, buf)
    assert decode_value(io.BytesIO(buf.getvalue())) == items


# Operations applied both to the engine and a plain-dict oracle.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 30),
                  st.text(max_size=8)),
        st.tuples(st.just("delete"), st.integers(0, 30)),
        st.tuples(st.just("update"), st.integers(0, 30),
                  st.text(max_size=8)),
    ),
    max_size=40,
)


@settings(max_examples=50)
@given(ops)
def test_engine_matches_dict_oracle(operations):
    db = Database()
    db.create_table("t", [Column("k", "INT", primary_key=True),
                          Column("v", "TEXT")])
    oracle = {}
    for op in operations:
        if op[0] == "insert":
            _, k, v = op
            if k in oracle:
                continue  # duplicate pk: skip in both worlds
            db.insert("t", [k, v])
            oracle[k] = v
        elif op[0] == "delete":
            _, k = op
            db.delete_where("t", lambda r, k=k: r["k"] == k)
            oracle.pop(k, None)
        else:
            _, k, v = op
            db.update_where("t", {"v": v}, lambda r, k=k: r["k"] == k)
            if k in oracle:
                oracle[k] = v
    got = {r["k"]: r["v"] for r in db.select("t")}
    assert got == oracle


@settings(max_examples=50)
@given(ops)
def test_recovery_equals_live_state(operations):
    """Recovering from the WAL reproduces exactly the committed state."""
    db = Database()
    db.create_table("t", [Column("k", "INT", primary_key=True),
                          Column("v", "TEXT")])
    seen = set()
    for op in operations:
        if op[0] == "insert":
            _, k, v = op
            if k in seen:
                continue
            db.insert("t", [k, v])
            seen.add(k)
        elif op[0] == "delete":
            _, k = op
            db.delete_where("t", lambda r, k=k: r["k"] == k)
            seen.discard(k)
        else:
            _, k, v = op
            db.update_where("t", {"v": v}, lambda r, k=k: r["k"] == k)
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.select("t") == db.select("t")


@settings(max_examples=50)
@given(ops, st.integers(min_value=0, max_value=100000))
def test_recovery_from_any_truncation_never_crashes(operations, cut):
    """However the WAL is torn, recovery yields a consistent database."""
    db = Database()
    db.create_table("t", [Column("k", "INT", primary_key=True),
                          Column("v", "TEXT")])
    seen = set()
    for op in operations:
        if op[0] == "insert" and op[1] not in seen:
            db.insert("t", [op[1], op[2]])
            seen.add(op[1])
        elif op[0] == "delete":
            db.delete_where("t", lambda r, k=op[1]: r["k"] == k)
            seen.discard(op[1])
    image = db.wal.snapshot()
    recovered = Database.recover(image[: min(cut, len(image))])
    # Whatever survived must be internally consistent: pk map == rows.
    rows = recovered.select("t") if "t" in recovered.tables else []
    keys = [r["k"] for r in rows]
    assert len(keys) == len(set(keys))


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 20), st.text(max_size=5)),
                min_size=1, max_size=20))
def test_rollback_is_exact_inverse(rows):
    db = Database()
    db.create_table("t", [Column("k", "INT"), Column("v", "TEXT")])
    db.insert("t", [999, "sentinel"])
    before = db.select("t")
    db.begin()
    for k, v in rows:
        db.insert("t", [k, v])
    db.update_where("t", {"v": "mutated"})
    db.delete_where("t", lambda r: r["k"] < 10)
    db.rollback()
    assert db.select("t") == before
