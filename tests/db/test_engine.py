"""Unit tests for the database engine: DML, transactions, recovery."""

import pytest

from repro.db.engine import Database
from repro.db.table import Column
from repro.errors import DatabaseError, RecordNotFound, TransactionError


def fresh_db():
    db = Database()
    db.create_table("users", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT", nullable=False),
        Column("score", "REAL"),
    ])
    return db


def test_insert_select():
    db = fresh_db()
    db.insert("users", [1, "ada", 9.5])
    db.insert("users", [2, "bob", None])
    rows = db.select("users")
    assert len(rows) == 2
    assert rows[0] == {"id": 1, "name": "ada", "score": 9.5}


def test_select_with_predicate_and_projection():
    db = fresh_db()
    for i in range(5):
        db.insert("users", [i, f"u{i}", float(i)])
    rows = db.select("users", predicate=lambda r: r["score"] >= 3,
                     columns=["name"])
    assert rows == [{"name": "u3"}, {"name": "u4"}]


def test_update_where():
    db = fresh_db()
    db.insert("users", [1, "ada", 1.0])
    db.insert("users", [2, "bob", 2.0])
    n = db.update_where("users", {"score": 0.0},
                        predicate=lambda r: r["name"] == "bob")
    assert n == 1
    assert db.get_by_pk("users", 2)["score"] == 0.0
    assert db.get_by_pk("users", 1)["score"] == 1.0


def test_delete_where():
    db = fresh_db()
    for i in range(4):
        db.insert("users", [i, f"u{i}", None])
    assert db.delete_where("users", lambda r: r["id"] % 2 == 0) == 2
    assert db.count("users") == 2


def test_get_by_pk_missing():
    db = fresh_db()
    with pytest.raises(RecordNotFound):
        db.get_by_pk("users", 42)


def test_missing_table_errors():
    db = Database()
    with pytest.raises(DatabaseError, match="no such table"):
        db.insert("nope", [1])
    with pytest.raises(DatabaseError):
        db.create_table("t", [Column("a", "INT")]) or db.create_table(
            "t", [Column("a", "INT")])


def test_drop_table():
    db = fresh_db()
    db.drop_table("users")
    with pytest.raises(DatabaseError):
        db.select("users")


# ------------------------------------------------------------ transactions

def test_rollback_undoes_insert_update_delete():
    db = fresh_db()
    db.insert("users", [1, "ada", 1.0])
    db.begin()
    db.insert("users", [2, "bob", 2.0])
    db.update_where("users", {"score": 99.0}, lambda r: r["id"] == 1)
    db.delete_where("users", lambda r: r["id"] == 1)
    db.rollback()
    rows = db.select("users")
    assert rows == [{"id": 1, "name": "ada", "score": 1.0}]


def test_transaction_context_manager():
    db = fresh_db()
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.insert("users", [1, "ada", None])
            raise RuntimeError("abort!")
    assert db.count("users") == 0
    with db.transaction():
        db.insert("users", [1, "ada", None])
    assert db.count("users") == 1


def test_nested_transaction_rejected():
    db = fresh_db()
    db.begin()
    with pytest.raises(TransactionError):
        db.begin()
    db.commit()
    with pytest.raises(TransactionError):
        db.commit()
    with pytest.raises(TransactionError):
        db.rollback()


def test_rollback_restores_pk_slot():
    db = fresh_db()
    db.begin()
    db.insert("users", [1, "ada", None])
    db.rollback()
    db.insert("users", [1, "someone-else", None])  # pk slot is free again
    assert db.get_by_pk("users", 1)["name"] == "someone-else"


# ------------------------------------------------------------ indexes

def test_find_eq_uses_index_and_stays_consistent():
    db = fresh_db()
    db.create_index("users", "name", "hash")
    db.insert("users", [1, "ada", None])
    db.insert("users", [2, "ada", None])
    db.insert("users", [3, "bob", None])
    assert {r["id"] for r in db.find_eq("users", "name", "ada")} == {1, 2}
    db.update_where("users", {"name": "carol"}, lambda r: r["id"] == 2)
    assert {r["id"] for r in db.find_eq("users", "name", "ada")} == {1}
    assert {r["id"] for r in db.find_eq("users", "name", "carol")} == {2}
    db.delete_where("users", lambda r: r["id"] == 1)
    assert db.find_eq("users", "name", "ada") == []


def test_index_backfill_on_create():
    db = fresh_db()
    db.insert("users", [1, "ada", None])
    db.create_index("users", "name")
    assert db.find_eq("users", "name", "ada")[0]["id"] == 1


def test_duplicate_index_rejected():
    db = fresh_db()
    db.create_index("users", "name")
    with pytest.raises(DatabaseError):
        db.create_index("users", "name")
    with pytest.raises(DatabaseError):
        db.create_index("users", "nope")


# ------------------------------------------------------------ recovery

def test_recover_committed_data():
    db = fresh_db()
    db.insert("users", [1, "ada", 1.5])
    db.insert("users", [2, "bob", None])
    db.delete_where("users", lambda r: r["id"] == 2)
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.select("users") == [{"id": 1, "name": "ada", "score": 1.5}]


def test_recover_discards_uncommitted():
    db = fresh_db()
    db.insert("users", [1, "ada", None])
    db.begin()
    db.insert("users", [2, "bob", None])
    # Crash before commit: snapshot now.
    image = db.wal.snapshot()
    recovered = Database.recover(image)
    assert [r["id"] for r in recovered.select("users")] == [1]


def test_recover_survives_torn_tail():
    db = fresh_db()
    db.insert("users", [1, "ada", None])
    good = db.wal.snapshot()
    db.insert("users", [2, "bob", None])
    torn = db.wal.snapshot()[: len(good) + 7]  # rip the last txn mid-frame
    recovered = Database.recover(torn)
    assert [r["id"] for r in recovered.select("users")] == [1]


def test_recover_replays_updates():
    db = fresh_db()
    db.insert("users", [1, "ada", 1.0])
    db.update_where("users", {"score": 7.0}, lambda r: r["id"] == 1)
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.get_by_pk("users", 1)["score"] == 7.0


def test_recover_preserves_indexes():
    db = fresh_db()
    db.create_index("users", "name")
    db.insert("users", [1, "ada", None])
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.find_eq("users", "name", "ada")[0]["id"] == 1
    assert ("users", "name") in recovered._indexes


def test_checkpoint_compacts_and_preserves_state():
    db = fresh_db()
    for i in range(20):
        db.insert("users", [i, f"u{i}", None])
    db.delete_where("users", lambda r: r["id"] >= 10)
    size_before = db.wal.size()
    db.checkpoint()
    assert db.wal.size() < size_before
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.count("users") == 10


def test_checkpoint_inside_txn_rejected():
    db = fresh_db()
    db.begin()
    with pytest.raises(TransactionError):
        db.checkpoint()


def test_writes_continue_after_recovery():
    db = fresh_db()
    db.insert("users", [1, "ada", None])
    recovered = Database.recover(db.wal.snapshot())
    recovered.insert("users", [2, "bob", None])
    again = Database.recover(recovered.wal.snapshot())
    assert again.count("users") == 2


# ------------------------------------------------------------ DDL in txn

def test_ddl_inside_transaction_rejected():
    """create/drop/index are not undoable — they must refuse in a txn."""
    db = fresh_db()
    db.insert("users", [1, "ada", None])
    db.begin()
    with pytest.raises(TransactionError, match="create_table"):
        db.create_table("t2", [Column("a", "INT")])
    with pytest.raises(TransactionError, match="drop_table"):
        db.drop_table("users")
    with pytest.raises(TransactionError, match="create_index"):
        db.create_index("users", "name")
    # The refused DDL left nothing behind; the txn is still usable.
    db.insert("users", [2, "bob", None])
    db.rollback()
    assert db.count("users") == 1
    assert "t2" not in db.tables
    assert ("users", "name") not in db._indexes


def test_drop_table_crash_recovery_roundtrip():
    """drop + recreate + reindex replays faithfully through the WAL."""
    db = fresh_db()
    db.create_index("users", "name")
    db.insert("users", [1, "ada", None])
    db.drop_table("users")
    db.create_table("users", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT", nullable=False),
    ])
    db.create_index("users", "name", "hash")
    db.insert("users", [7, "eve"])
    recovered = Database.recover(db.wal.snapshot())
    assert recovered.select("users") == [{"id": 7, "name": "eve"}]
    assert recovered.find_eq("users", "name", "eve")[0]["id"] == 7
    assert recovered.find_eq("users", "name", "ada") == []
    # The dropped incarnation's index did not leak into the new one.
    assert ("users", "name") in recovered._indexes


# ------------------------------------------------------------ MVCC

def mvcc_db():
    db = Database(mvcc=True)
    db.create_table("users", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT", nullable=False),
        Column("score", "REAL"),
    ])
    return db


def test_snapshot_sees_last_committed_past_open_writer():
    db = mvcc_db()
    db.insert("users", [1, "ada", 1.0])
    db.begin()
    db.update_where("users", {"score": 99.0}, lambda r: r["id"] == 1)
    db.insert("users", [2, "bob", None])
    db.delete_where("users", lambda r: False)
    with db.snapshot() as snap:
        rows = snap.select("users")
        assert rows == [{"id": 1, "name": "ada", "score": 1.0}]
        assert snap.get_by_pk("users", 1)["score"] == 1.0
        with pytest.raises(RecordNotFound):
            snap.get_by_pk("users", 2)
    db.commit()
    with db.snapshot() as snap:
        assert snap.get_by_pk("users", 1)["score"] == 99.0
        assert snap.count("users") == 2
    assert db.stats["snapshot_reads"] > 0


def test_snapshot_pinned_across_commit():
    """A handle opened before a commit keeps its watermark's view."""
    db = mvcc_db()
    db.insert("users", [1, "ada", 1.0])
    snap = db.snapshot()
    db.begin()
    db.update_where("users", {"name": "zoe"}, lambda r: r["id"] == 1)
    db.commit()
    assert snap.get_by_pk("users", 1)["name"] == "ada"
    snap.close()
    with db.snapshot() as later:
        assert later.get_by_pk("users", 1)["name"] == "zoe"


def test_snapshot_invisible_to_rollback():
    db = mvcc_db()
    db.insert("users", [1, "ada", 1.0])
    db.begin()
    db.delete_where("users", lambda r: r["id"] == 1)
    db.rollback()
    with db.snapshot() as snap:
        assert snap.get_by_pk("users", 1)["name"] == "ada"
    # Version chains were discarded with the rollback.
    assert not db.tables["users"].has_versions()


def test_versions_pruned_after_commit():
    db = mvcc_db()
    db.insert("users", [1, "ada", 1.0])
    for i in range(5):
        with db.transaction():
            db.update_where("users", {"score": float(i)},
                            lambda r: r["id"] == 1)
    # No snapshot is open: nothing pins the old versions.
    assert not db.tables["users"].has_versions()
    assert db.get_by_pk("users", 1)["score"] == 4.0
