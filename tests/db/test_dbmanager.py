"""Unit tests for the DbManager facade (simulated-cost executable store)."""

import pytest

from repro.db import DbManager
from repro.db.dbmanager import DbCostModel, DbTierConfig
from repro.errors import RecordNotFound
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import KB, MB


def make_env(disk_bw=MB(50), tier=None):
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "appliance", net,
                HostSpec(cores=2, disk_bandwidth=disk_bw, disk_latency=0.0))
    return sim, host, DbManager(host, tier=tier)


def test_store_load_roundtrip():
    sim, host, mgr = make_env()
    payload = b"#!/bin/sh\necho hello\n" * 100

    def flow():
        yield mgr.store_executable("hello.sh", payload, description="greeter",
                                   params_spec="name:TEXT")
        exe = yield mgr.load_executable("hello.sh")
        return exe

    proc = sim.process(flow())
    exe = sim.run(until=proc)
    assert exe.payload == payload
    assert exe.description == "greeter"
    assert exe.params_spec == "name:TEXT"
    assert exe.size == len(payload)
    assert 0 < exe.compressed_size < len(payload)


def test_load_missing_raises():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.load_executable("ghost")

    proc = sim.process(flow())
    with pytest.raises(RecordNotFound):
        sim.run(until=proc)


def test_store_overwrites_existing():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"version one")
        yield mgr.store_executable("x", b"version two")
        exe = yield mgr.load_executable("x")
        return exe

    proc = sim.process(flow())
    exe = sim.run(until=proc)
    assert exe.payload == b"version two"
    assert len(mgr.list_executables()) == 1


def test_delete_executable():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"data")
        first = yield mgr.delete_executable("x")
        second = yield mgr.delete_executable("x")
        return first, second

    proc = sim.process(flow())
    first, second = sim.run(until=proc)
    assert first is True
    assert second is False
    assert not mgr.has_executable("x")


def test_store_takes_simulated_time():
    sim, host, mgr = make_env(disk_bw=KB(10))
    payload = bytes(range(256)) * 4096  # ~1 MB, poorly compressible

    def flow():
        yield mgr.store_executable("big", payload)

    proc = sim.process(flow())
    sim.run(until=proc)
    assert sim.now > 0.1  # disk at 10 KB/s makes this clearly non-instant
    assert host.disk.bytes_written() > 0


def test_load_charges_cpu_for_decompression():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"a" * int(MB(2)))
        busy_before = host.cpu.busy_core_seconds()
        yield mgr.load_executable("x")
        return host.cpu.busy_core_seconds() - busy_before

    proc = sim.process(flow())
    cpu_used = sim.run(until=proc)
    expected = DbCostModel().decompress_cpu_per_mb * 2
    assert cpu_used >= expected * 0.9


def test_metadata_queries():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("a", b"xyz" * 1000, description="d")

    sim.run(until=sim.process(flow()))
    listing = mgr.list_executables()
    assert len(listing) == 1
    assert listing[0]["name"] == "a"
    assert "data" not in listing[0]
    sizes = mgr.executable_sizes("a")
    assert sizes["size"] == 3000
    assert sizes["compressed_size"] > 0
    assert mgr.has_executable("a")
    assert not mgr.has_executable("b")


def test_executable_sizes_missing_name_raises():
    sim, host, mgr = make_env()
    with pytest.raises(RecordNotFound):
        mgr.executable_sizes("ghost")


# ------------------------------------------------------------ tier: chunking

def test_chunked_fetch_bounds_residency_and_preserves_bytes():
    chunk = int(MB(1))
    sim, host, mgr = make_env(tier=DbTierConfig(chunk_bytes=chunk))
    payload = bytes(range(256)) * (int(MB(5)) // 256 + 13)  # ~5 MB, odd tail
    peaks = []

    def flow():
        yield mgr.store_executable("big", payload)
        mem_before = host.memory_used
        exe = yield mgr.load_executable("big")
        return exe, mem_before

    proc = sim.process(flow())
    exe, mem_before = sim.run(until=proc)
    # The data plane is intact: the reassembled bytes equal the stored.
    assert exe.payload == payload
    # Simulated residency peaked at <= 2 chunks, not the whole BLOB.
    assert host.memory_peak - mem_before <= 2 * chunk
    # Nothing leaked after the fetch.
    assert host.memory_used == mem_before


def test_chunked_fetch_pipelines_consumer():
    chunk = int(MB(1))
    sim, host, mgr = make_env(tier=DbTierConfig(chunk_bytes=chunk))
    payload = b"q" * int(MB(3))
    consumed = []

    def flow():
        yield mgr.store_executable("p", payload)

        def on_chunk(nbytes):
            consumed.append(nbytes)
            yield host.disk_write(nbytes)

        exe = yield mgr.load_executable("p", on_chunk=on_chunk)
        return exe

    exe = sim.run(until=sim.process(flow()))
    assert exe.payload == payload
    assert sum(consumed) == len(payload)
    assert len(consumed) == 3


# ------------------------------------------------------------ tier: serialize

def test_serialized_reads_queue_behind_store():
    sim, host, mgr = make_env(tier=DbTierConfig(serialize=True))
    payload = b"z" * int(MB(4))
    order = []

    def seed_flow():
        yield mgr.store_executable("x", payload)

    sim.run(until=sim.process(seed_flow()))

    def writer():
        yield mgr.store_executable("x", payload)
        order.append("store-done")

    def reader():
        yield sim.timeout(0.001)  # arrive while the store holds the conn
        exe = yield mgr.load_executable("x")
        order.append("read-done")
        return exe

    w = sim.process(writer())
    r = sim.process(reader())
    sim.run(until=sim.all_of([w, r]))
    assert order == ["store-done", "read-done"]


def test_mvcc_reads_skip_the_lock():
    sim, host, mgr = make_env(tier=DbTierConfig(serialize=True, mvcc=True))
    payload = b"z" * int(MB(4))
    order = []

    def seed_flow():
        yield mgr.store_executable("x", payload)

    sim.run(until=sim.process(seed_flow()))

    def writer():
        yield mgr.store_executable("x", payload)
        order.append("store-done")

    def reader():
        yield sim.timeout(0.001)
        exe = yield mgr.load_executable("x")
        order.append("read-done")
        return exe

    w = sim.process(writer())
    r = sim.process(reader())
    sim.run(until=sim.all_of([w, r]))
    # The snapshot read finished under the in-flight store.
    assert order == ["read-done", "store-done"]
    assert mgr.db.stats["snapshot_reads"] > 0


def test_recover_from_crash_keeps_tier():
    tier = DbTierConfig(mvcc=True, chunk_bytes=int(MB(1)))
    sim, host, mgr = make_env(tier=tier)

    def flow():
        yield mgr.store_executable("x", b"payload bytes")

    sim.run(until=sim.process(flow()))
    recovered = mgr.recover_from_crash()
    assert recovered.tier is tier
    assert recovered.db.mvcc
    assert recovered.has_executable("x")
