"""Unit tests for the DbManager facade (simulated-cost executable store)."""

import pytest

from repro.db import DbManager
from repro.db.dbmanager import DbCostModel
from repro.errors import RecordNotFound
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import KB, MB


def make_env(disk_bw=MB(50)):
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "appliance", net,
                HostSpec(cores=2, disk_bandwidth=disk_bw, disk_latency=0.0))
    return sim, host, DbManager(host)


def test_store_load_roundtrip():
    sim, host, mgr = make_env()
    payload = b"#!/bin/sh\necho hello\n" * 100

    def flow():
        yield mgr.store_executable("hello.sh", payload, description="greeter",
                                   params_spec="name:TEXT")
        exe = yield mgr.load_executable("hello.sh")
        return exe

    proc = sim.process(flow())
    exe = sim.run(until=proc)
    assert exe.payload == payload
    assert exe.description == "greeter"
    assert exe.params_spec == "name:TEXT"
    assert exe.size == len(payload)
    assert 0 < exe.compressed_size < len(payload)


def test_load_missing_raises():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.load_executable("ghost")

    proc = sim.process(flow())
    with pytest.raises(RecordNotFound):
        sim.run(until=proc)


def test_store_overwrites_existing():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"version one")
        yield mgr.store_executable("x", b"version two")
        exe = yield mgr.load_executable("x")
        return exe

    proc = sim.process(flow())
    exe = sim.run(until=proc)
    assert exe.payload == b"version two"
    assert len(mgr.list_executables()) == 1


def test_delete_executable():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"data")
        first = yield mgr.delete_executable("x")
        second = yield mgr.delete_executable("x")
        return first, second

    proc = sim.process(flow())
    first, second = sim.run(until=proc)
    assert first is True
    assert second is False
    assert not mgr.has_executable("x")


def test_store_takes_simulated_time():
    sim, host, mgr = make_env(disk_bw=KB(10))
    payload = bytes(range(256)) * 4096  # ~1 MB, poorly compressible

    def flow():
        yield mgr.store_executable("big", payload)

    proc = sim.process(flow())
    sim.run(until=proc)
    assert sim.now > 0.1  # disk at 10 KB/s makes this clearly non-instant
    assert host.disk.bytes_written() > 0


def test_load_charges_cpu_for_decompression():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("x", b"a" * int(MB(2)))
        busy_before = host.cpu.busy_core_seconds()
        yield mgr.load_executable("x")
        return host.cpu.busy_core_seconds() - busy_before

    proc = sim.process(flow())
    cpu_used = sim.run(until=proc)
    expected = DbCostModel().decompress_cpu_per_mb * 2
    assert cpu_used >= expected * 0.9


def test_metadata_queries():
    sim, host, mgr = make_env()

    def flow():
        yield mgr.store_executable("a", b"xyz" * 1000, description="d")

    sim.run(until=sim.process(flow()))
    listing = mgr.list_executables()
    assert len(listing) == 1
    assert listing[0]["name"] == "a"
    assert "data" not in listing[0]
    sizes = mgr.executable_sizes("a")
    assert sizes["size"] == 3000
    assert sizes["compressed_size"] > 0
    assert mgr.has_executable("a")
    assert not mgr.has_executable("b")
