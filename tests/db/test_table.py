"""Unit tests for columns, schemas and heap tables."""

import pytest

from repro.db.table import Column, HeapTable, Schema
from repro.errors import DatabaseError, RecordNotFound


def people_table():
    return HeapTable("people", Schema([
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT", nullable=False),
        Column("age", "INT"),
    ]))


# ---------------------------------------------------------------- Column

def test_column_type_validation():
    col = Column("n", "INT")
    assert col.validate(5) == 5
    with pytest.raises(DatabaseError):
        col.validate("five")
    with pytest.raises(DatabaseError):
        col.validate(True)  # bools are rejected despite being ints


def test_column_real_coerces_int():
    assert Column("x", "REAL").validate(3) == 3.0
    assert isinstance(Column("x", "REAL").validate(3), float)


def test_column_blob_coerces_bytearray():
    v = Column("b", "BLOB").validate(bytearray(b"abc"))
    assert v == b"abc"
    assert isinstance(v, bytes)


def test_column_nullability():
    assert Column("x", "TEXT").validate(None) is None
    with pytest.raises(DatabaseError):
        Column("x", "TEXT", nullable=False).validate(None)


def test_primary_key_implies_not_null():
    col = Column("id", "INT", primary_key=True)
    with pytest.raises(DatabaseError):
        col.validate(None)


def test_bad_column_definitions():
    with pytest.raises(DatabaseError):
        Column("x", "VARCHAR")
    with pytest.raises(DatabaseError):
        Column("bad name", "INT")


# ---------------------------------------------------------------- Schema

def test_schema_rejects_duplicates_and_multi_pk():
    with pytest.raises(DatabaseError):
        Schema([Column("a", "INT"), Column("a", "TEXT")])
    with pytest.raises(DatabaseError):
        Schema([Column("a", "INT", primary_key=True),
                Column("b", "INT", primary_key=True)])
    with pytest.raises(DatabaseError):
        Schema([])


def test_schema_index_of():
    s = Schema([Column("a", "INT"), Column("b", "TEXT")])
    assert s.index_of("b") == 1
    with pytest.raises(DatabaseError):
        s.index_of("c")


# ---------------------------------------------------------------- HeapTable

def test_insert_get_roundtrip():
    t = people_table()
    rid = t.insert([1, "ada", 36])
    assert t.get(rid) == (1, "ada", 36)
    assert len(t) == 1


def test_rowids_monotone():
    t = people_table()
    r1 = t.insert([1, "a", None])
    t.delete(r1)
    r2 = t.insert([2, "b", None])
    assert r2 > r1


def test_pk_uniqueness():
    t = people_table()
    t.insert([1, "ada", None])
    with pytest.raises(DatabaseError, match="duplicate primary key"):
        t.insert([1, "bob", None])


def test_pk_lookup():
    t = people_table()
    rid = t.insert([7, "g", None])
    assert t.lookup_pk(7) == rid
    assert t.lookup_pk(8) is None
    t.delete(rid)
    assert t.lookup_pk(7) is None


def test_update_changes_pk_map():
    t = people_table()
    rid = t.insert([1, "ada", None])
    t.insert([2, "bob", None])
    with pytest.raises(DatabaseError, match="duplicate"):
        t.update(rid, [2, "ada", None])
    t.update(rid, [3, "ada", None])
    assert t.lookup_pk(3) == rid
    assert t.lookup_pk(1) is None


def test_delete_missing_row():
    t = people_table()
    with pytest.raises(RecordNotFound):
        t.delete(99)
    with pytest.raises(RecordNotFound):
        t.get(99)
    with pytest.raises(RecordNotFound):
        t.update(99, [1, "x", None])


def test_restore_after_delete():
    t = people_table()
    rid = t.insert([1, "ada", 36])
    row = t.delete(rid)
    t.restore(rid, row)
    assert t.get(rid) == (1, "ada", 36)
    assert t.lookup_pk(1) == rid
    with pytest.raises(DatabaseError):
        t.restore(rid, row)  # already present


def test_scan_in_rowid_order():
    t = people_table()
    for i in range(5):
        t.insert([i, f"p{i}", None])
    rowids = [rid for rid, _ in t.scan()]
    assert rowids == sorted(rowids)


def test_row_arity_enforced():
    t = people_table()
    with pytest.raises(DatabaseError, match="row has"):
        t.insert([1, "ada"])
