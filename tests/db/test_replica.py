"""Unit tests for WAL-shipping read replicas and the read router."""

import pytest

from repro.db.engine import Database
from repro.db.replica import ReadReplica, ReadRouter
from repro.db.table import Column
from repro.errors import DatabaseError
from repro.simkernel import Simulator

LAG = 0.5


def users_schema():
    return [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT", nullable=False),
    ]


def test_negative_lag_rejected():
    sim = Simulator()
    with pytest.raises(DatabaseError, match="lag"):
        ReadReplica(sim, Database(), lag=-0.1)


def test_bootstrap_refuses_mid_transaction():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    db.begin()
    with pytest.raises(DatabaseError, match="mid-transaction"):
        ReadReplica(sim, db, lag=LAG)
    db.rollback()


def test_bootstrap_syncs_existing_image():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    db.insert("users", [1, "ada"])
    replica = ReadReplica(sim, db, lag=LAG)
    # Rows written before attach are visible immediately (initial sync).
    assert replica.db.count("users") == 1
    assert replica.backlog() == 0


def test_records_apply_only_after_lag():
    sim = Simulator()
    db = Database()
    replica = ReadReplica(sim, db, lag=LAG)
    db.create_table("users", users_schema())
    db.insert("users", [1, "ada"])  # ships at sim.now == 0.0
    assert replica.backlog() > 0
    assert "users" not in replica.db.tables
    # Just short of the lag: nothing is due yet.
    assert replica.catch_up(now=LAG - 0.01) == 0
    assert "users" not in replica.db.tables
    # At the lag boundary everything shipped at t=0 becomes due.
    assert replica.catch_up(now=LAG) > 0
    assert replica.db.count("users") == 1
    assert replica.backlog() == 0


def test_transactions_apply_atomically_at_commit():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    replica = ReadReplica(sim, db, lag=LAG)

    def flow():
        db.begin()
        db.insert("users", [1, "ada"])
        yield sim.timeout(1.0)
        db.insert("users", [2, "bob"])
        yield sim.timeout(1.0)
        db.commit()  # ships at t=2.0

    sim.run(until=sim.process(flow()))
    # Both inserts are past their lag, the commit is not: nothing lands.
    replica.catch_up(now=2.0)
    assert replica.db.count("users") == 0
    # Once the commit record is due, the whole txn appears at once.
    replica.catch_up(now=2.0 + LAG)
    assert replica.db.count("users") == 2
    assert replica.txns_applied >= 1


def test_aborted_transaction_never_applies():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    replica = ReadReplica(sim, db, lag=LAG)
    db.begin()
    db.insert("users", [1, "ada"])
    db.rollback()
    replica.catch_up(now=100.0)
    assert replica.db.count("users") == 0
    assert replica.backlog() == 0


def test_disabled_replica_stays_provably_empty():
    sim = Simulator()
    db = Database()
    replica = ReadReplica(sim, db, lag=LAG, enabled=False)
    db.create_table("users", users_schema())
    db.insert("users", [1, "ada"])
    with db.transaction():
        db.insert("users", [2, "bob"])
    # The tap buffers nothing and the tables never materialize.
    assert replica.backlog() == 0
    assert replica.catch_up(now=100.0) == 0
    assert replica.db.tables == {}
    assert replica.records_applied == 0


def test_router_read_your_writes_then_replica():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    replica = ReadReplica(sim, db, lag=LAG)
    router = ReadRouter(sim, db, replicas=(replica,), lag=LAG)
    got = []

    def flow():
        db.insert("users", [1, "ada"])
        got.append(router.reader("users"))  # within the lag window
        yield sim.timeout(LAG)
        got.append(router.reader("users"))  # write is provably applied

    sim.run(until=sim.process(flow()))
    first, second = got
    # Read-your-writes: the fresh write pins reads to the primary.
    assert first is db
    assert router.primary_reads == 1
    # After one lag interval the replica serves, and serves fresh data.
    assert second is replica.db
    assert router.replica_reads == 1
    assert second.get_by_pk("users", 1)["name"] == "ada"


def test_router_commit_restamps_freshness():
    """A txn's writes count from *commit* time — the replica only
    applies them when the commit record is due, so eligibility keyed
    off the DML timestamps would serve a stale view."""
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    replica = ReadReplica(sim, db, lag=LAG)
    router = ReadRouter(sim, db, replicas=(replica,), lag=LAG)

    def flow():
        yield sim.timeout(LAG)  # let the DDL replicate first
        db.begin()
        db.insert("users", [1, "ada"])
        yield sim.timeout(2.0)  # DML is now ancient...
        db.commit()             # ...but the commit is brand new
        early = router.reader("users")
        yield sim.timeout(LAG)
        late = router.reader("users")
        return early, late

    early, late = sim.run(until=sim.process(flow()))
    assert early is db          # guard held: commit not yet replicated
    assert late is replica.db
    assert late.count("users") == 1


def test_router_bounded_staleness():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    replica = ReadReplica(sim, db, lag=LAG)
    router = ReadRouter(sim, db, replicas=(replica,), lag=LAG)

    def flow():
        for i in range(5):
            db.insert("users", [i, f"u{i}"])
            yield sim.timeout(0.3)
            router.reader("users")
        yield sim.timeout(LAG)
        router.reader("users")

    sim.run(until=sim.process(flow()))
    assert router.replica_reads > 0
    # Every replica-served read observed a view at most one lag behind.
    from repro.telemetry.events import bus
    for ev in bus(sim).events(kind="db.replica.read"):
        assert ev.fields["behind"] <= LAG
        assert ev.fields["lag_bound"] == LAG


def test_router_without_replicas_serves_primary():
    sim = Simulator()
    db = Database()
    db.create_table("users", users_schema())
    router = ReadRouter(sim, db)
    assert router.reader("users") is db
    assert router.primary_reads == 1
    assert router.replica_reads == 0
