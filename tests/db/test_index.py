"""Unit tests for secondary indexes."""

from repro.db.index import HashIndex, SortedIndex


def test_hash_index_add_find_remove():
    idx = HashIndex("t", "c")
    idx.add("x", 1)
    idx.add("x", 2)
    idx.add("y", 3)
    assert idx.find("x") == {1, 2}
    assert idx.find("y") == {3}
    assert idx.find("z") == set()
    idx.remove("x", 1)
    assert idx.find("x") == {2}
    idx.remove("x", 2)
    assert idx.find("x") == set()
    assert len(idx) == 1


def test_hash_index_remove_missing_is_noop():
    idx = HashIndex("t", "c")
    idx.remove("never", 1)  # no error
    idx.add("a", 1)
    idx.remove("a", 99)  # rowid not present
    assert idx.find("a") == {1}


def test_hash_index_bytearray_keys():
    idx = HashIndex("t", "c")
    idx.add(bytearray(b"blob"), 1)
    assert idx.find(b"blob") == {1}


def test_sorted_index_range_closed():
    idx = SortedIndex("t", "c")
    for i, v in enumerate([10, 20, 30, 40, 50]):
        idx.add(v, i)
    assert list(idx.range(lo=20, hi=40)) == [1, 2, 3]


def test_sorted_index_range_open_bounds():
    idx = SortedIndex("t", "c")
    for i, v in enumerate([10, 20, 30, 40, 50]):
        idx.add(v, i)
    assert list(idx.range(lo=20, hi=40, lo_open=True, hi_open=True)) == [2]
    assert list(idx.range()) == [0, 1, 2, 3, 4]
    assert list(idx.range(hi=10)) == [0]


def test_sorted_index_duplicates_and_removal():
    idx = SortedIndex("t", "c")
    idx.add(5, 1)
    idx.add(5, 2)
    assert list(idx.range(lo=5, hi=5)) == [1, 2]
    idx.remove(5, 1)
    assert list(idx.range(lo=5, hi=5)) == [2]


def test_sorted_index_ignores_null():
    idx = SortedIndex("t", "c")
    idx.add(None, 1)
    assert len(idx) == 0
    idx.remove(None, 1)  # no error
