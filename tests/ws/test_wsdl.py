"""Unit tests for service descriptions and WSDL round-trips."""

import pytest

from repro.errors import WsError, WsdlError
from repro.ws import (
    OperationSpec, ParameterSpec, ServiceDescription, generate_wsdl,
    parse_wsdl,
)


def sample_service():
    return ServiceDescription(
        "HelloService",
        [
            OperationSpec("execute",
                          [ParameterSpec("name", "xsd:string"),
                           ParameterSpec("count", "xsd:int")],
                          return_type="xsd:string"),
            OperationSpec("status", [], return_type="xsd:string"),
        ],
        documentation="Says hello on the grid",
    )


# ---------------------------------------------------------------- specs

def test_parameter_validation():
    p = ParameterSpec("count", "xsd:int")
    p.validate(3)
    with pytest.raises(WsError):
        p.validate("three")
    with pytest.raises(WsError):
        p.validate(True)  # bool is not an int here


def test_double_accepts_int():
    ParameterSpec("x", "xsd:double").validate(3)


def test_binary_accepts_bytearray():
    ParameterSpec("b", "xsd:base64Binary").validate(bytearray(b"a"))


def test_bad_parameter_definitions():
    with pytest.raises(WsError):
        ParameterSpec("bad name")
    with pytest.raises(WsError):
        ParameterSpec("x", "xsd:unknown")


def test_operation_argument_checking():
    op = OperationSpec("run", [ParameterSpec("a"), ParameterSpec("b", "xsd:int")])
    op.validate_arguments({"a": "x", "b": 1})
    with pytest.raises(WsError, match="missing"):
        op.validate_arguments({"a": "x"})
    with pytest.raises(WsError, match="unexpected"):
        op.validate_arguments({"a": "x", "b": 1, "c": 2})


def test_operation_duplicate_params_rejected():
    with pytest.raises(WsError):
        OperationSpec("run", [ParameterSpec("a"), ParameterSpec("a")])


def test_service_requires_operations():
    with pytest.raises(WsError):
        ServiceDescription("S", [])
    with pytest.raises(WsError):
        ServiceDescription("bad name!", [OperationSpec("x")])


def test_service_duplicate_operations_rejected():
    with pytest.raises(WsError):
        ServiceDescription("S", [OperationSpec("x"), OperationSpec("x")])


def test_service_operation_lookup():
    svc = sample_service()
    assert svc.operation("execute").name == "execute"
    with pytest.raises(WsError):
        svc.operation("nope")


# ---------------------------------------------------------------- WSDL

def test_wsdl_roundtrip():
    svc = sample_service()
    doc = generate_wsdl(svc, "soap://appliance/HelloService")
    parsed, endpoint = parse_wsdl(doc)
    assert parsed == svc
    assert endpoint == "soap://appliance/HelloService"
    assert parsed.documentation == "Says hello on the grid"


def test_wsdl_preserves_param_order_and_types():
    svc = sample_service()
    parsed, _ = parse_wsdl(generate_wsdl(svc, "soap://h/S"))
    execute = parsed.operation("execute")
    assert [p.name for p in execute.params] == ["name", "count"]
    assert [p.xsd_type for p in execute.params] == ["xsd:string", "xsd:int"]
    assert execute.return_type == "xsd:string"


def test_wsdl_zero_param_operation():
    parsed, _ = parse_wsdl(generate_wsdl(sample_service(), "soap://h/S"))
    assert parsed.operation("status").params == ()


def test_parse_rejects_non_wsdl():
    with pytest.raises(WsdlError):
        parse_wsdl(b"<notwsdl/>")


def test_parse_rejects_broken_documents():
    svc = sample_service()
    doc = generate_wsdl(svc, "soap://h/S").decode()
    # Remove the service element entirely.
    broken = doc[: doc.index("<service")] + "</definitions>"
    with pytest.raises(WsdlError):
        parse_wsdl(broken.encode())
