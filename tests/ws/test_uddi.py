"""Unit tests for the UDDI registry."""

import pytest

from repro.errors import UddiError
from repro.ws import UddiRegistry


def registry_with_data():
    reg = UddiRegistry()
    biz = reg.save_business("Cyberaide", "grid middleware")
    svc1 = reg.save_service(biz.key, "HelloService", "says hello")
    svc2 = reg.save_service(biz.key, "WordCountService")
    reg.save_binding(svc1.key, "soap://appliance/HelloService",
                     wsdl_location="soap://appliance/HelloService?wsdl")
    return reg, biz, svc1, svc2


def test_publish_and_get():
    reg, biz, svc1, svc2 = registry_with_data()
    assert reg.get_business(biz.key).name == "Cyberaide"
    assert reg.get_service(svc1.key).description == "says hello"
    bindings = reg.get_bindings(svc1.key)
    assert len(bindings) == 1
    assert bindings[0].access_point == "soap://appliance/HelloService"
    assert reg.service_count() == 2


def test_keys_are_unique_uuids():
    reg, biz, svc1, svc2 = registry_with_data()
    assert svc1.key != svc2.key
    assert svc1.key.startswith("uuid:")


def test_find_service_patterns():
    reg, biz, svc1, svc2 = registry_with_data()
    assert [s.name for s in reg.find_service("%")] == [
        "HelloService", "WordCountService"]
    assert [s.name for s in reg.find_service("hello%")] == ["HelloService"]
    assert [s.name for s in reg.find_service("%count%")] == ["WordCountService"]
    assert reg.find_service("nothing%") == []


def test_find_service_scoped_to_business():
    reg, biz, svc1, svc2 = registry_with_data()
    other = reg.save_business("Other")
    reg.save_service(other.key, "HelloService")
    assert len(reg.find_service("HelloService")) == 2
    assert len(reg.find_service("HelloService", business_key=biz.key)) == 1


def test_find_business():
    reg, biz, *_ = registry_with_data()
    assert [b.name for b in reg.find_business("cyber%")] == ["Cyberaide"]


def test_publish_validation():
    reg = UddiRegistry()
    with pytest.raises(UddiError):
        reg.save_business("")
    with pytest.raises(UddiError):
        reg.save_service("uuid:nope", "S")
    biz = reg.save_business("B")
    with pytest.raises(UddiError):
        reg.save_service(biz.key, "")
    with pytest.raises(UddiError):
        reg.save_binding("uuid:nope", "soap://x/Y")
    svc = reg.save_service(biz.key, "S")
    with pytest.raises(UddiError):
        reg.save_binding(svc.key, "soap://x/Y", tmodel_key="uuid:nope")


def test_tmodel_roundtrip():
    reg = UddiRegistry()
    tm = reg.save_tmodel("onserve:grid-execution", "soap://doc")
    assert reg.get_tmodel(tm.key).name == "onserve:grid-execution"
    biz = reg.save_business("B")
    svc = reg.save_service(biz.key, "S")
    binding = reg.save_binding(svc.key, "soap://x/S", tmodel_key=tm.key)
    assert binding.tmodel_key == tm.key


def test_delete_service_cascades_bindings():
    reg, biz, svc1, svc2 = registry_with_data()
    reg.delete_service(svc1.key)
    with pytest.raises(UddiError):
        reg.get_service(svc1.key)
    with pytest.raises(UddiError):
        reg.get_bindings(svc1.key)
    assert reg.service_count() == 1


def test_delete_business_cascades_services():
    reg, biz, svc1, svc2 = registry_with_data()
    reg.delete_business(biz.key)
    assert reg.find_service("%") == []
    with pytest.raises(UddiError):
        reg.delete_business(biz.key)


def test_unknown_keys_raise():
    reg = UddiRegistry()
    for fn in (reg.get_business, reg.get_service, reg.get_tmodel):
        with pytest.raises(UddiError):
            fn("uuid:missing")
    with pytest.raises(UddiError):
        reg.get_bindings("uuid:missing")
    with pytest.raises(UddiError):
        reg.delete_service("uuid:missing")
