"""SOAP server robustness: arbitrary handler exceptions become faults."""

import pytest

from repro.errors import SoapFault
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import Mbps
from repro.ws import (
    OperationSpec, ServiceDescription, SoapFabric, SoapServer, WsClient,
)


def make_env():
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, "s", net, HostSpec())
    client_host = Host(sim, "c", net, HostSpec())
    net.connect("s", "c", bandwidth=Mbps(100))
    fabric = SoapFabric()
    server = SoapServer(server_host, fabric)
    client = WsClient(client_host, fabric)
    return sim, server, client


def deploy(server, handler):
    return server.deploy(ServiceDescription("T", [OperationSpec("go")]),
                         handler)


def test_plain_python_exception_becomes_internal_fault():
    sim, server, client = make_env()

    def broken(operation, params):
        raise ValueError("not a repro error")

    endpoint = deploy(server, broken)
    with pytest.raises(SoapFault, match="not a repro error") as exc_info:
        sim.run(until=client.call(endpoint, "go"))
    assert exc_info.value.faultcode == "Server.Internal"
    assert exc_info.value.detail == "ValueError: not a repro error"
    assert exc_info.value.root_cause == "ValueError"


def test_generator_handler_exception_becomes_fault():
    sim, server, client = make_env()

    def broken(operation, params):
        yield server.sim.timeout(1.0)
        raise KeyError("deep inside")

    endpoint = deploy(server, broken)
    with pytest.raises(SoapFault) as exc_info:
        sim.run(until=client.call(endpoint, "go"))
    assert exc_info.value.detail == "KeyError: 'deep inside'"
    assert exc_info.value.root_cause == "KeyError"


def test_repro_errors_keep_server_faultcode():
    sim, server, client = make_env()

    def broken(operation, params):
        from repro.errors import JobError
        raise JobError("grid side")

    endpoint = deploy(server, broken)
    with pytest.raises(SoapFault) as exc_info:
        sim.run(until=client.call(endpoint, "go"))
    assert exc_info.value.faultcode == "Server"


def test_server_survives_faults_and_keeps_serving():
    sim, server, client = make_env()
    calls = {"n": 0}

    def flaky(operation, params):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("first call dies")
        return "recovered"

    endpoint = deploy(server, flaky)
    with pytest.raises(SoapFault):
        sim.run(until=client.call(endpoint, "go"))
    assert sim.run(until=client.call(endpoint, "go")) == "recovered"
    assert server.service("T").faults == 1
    assert server.service("T").invocations == 2
