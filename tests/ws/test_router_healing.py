"""The self-healing routed fabric: crash failover, dedup, shed, leases.

These tests exercise the plane the chaos drill (scenarios/chaos.py)
gates at scale, but one invariant at a time on small fabrics: a crash
mid-request fails over to a survivor without losing the call, a
replayed invocation returns the recorded result instead of executing
twice, the overload ladder sheds with a typed retryable fault, and
lease expiry declares a silent replica dead.
"""

import pytest

from repro.core.context import RequestContext
from repro.core.fabric import deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.errors import OnServeError, SoapFault, WsError
from repro.grid.testbed import build_testbed
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.units import KB
from repro.workloads.executables import make_payload


def deploy_healing(replicas=3, n_users=2, seed=0, **kw):
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, n_users=n_users)
    stack = sim.run(until=deploy_fabric(
        testbed, OnServeConfig(), replicas=replicas,
        self_healing=True, lease_ttl=12.0, lease_check_interval=3.0,
        **kw))
    return sim, testbed, stack


def publish(sim, testbed, stack, runtime="4"):
    payload = make_payload("fixed", size=int(KB(32)), runtime=runtime,
                           output_bytes="64")
    return sim.run(until=stack.portal.upload_and_generate(
        testbed.user_hosts[0], "route.bin", payload))


def crash_at(sim, stack, name, at):
    def op():
        if at > sim.now:
            yield sim.timeout(at - sim.now, name="test:crash-timer")
        stack.crash_replica(name)
    return sim.process(op(), name=f"test:crash:{name}")


def test_passthrough_deploy_rejects_self_healing():
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=1)
    with pytest.raises(OnServeError):
        deploy_fabric(testbed, replicas=1, self_healing=True)


def test_self_healing_deploy_heartbeats_every_replica():
    sim, testbed, stack = deploy_healing(replicas=3)
    names = stack.router.replicas()
    assert len(names) == 3
    sim.run(until=sim.timeout(30.0))
    # Heartbeats outlive the lease TTL: every member stays leased well
    # past the initial grant, with a live (future) expiry.
    rows = {r["replica"]: r for r in stack.store.members()}
    assert sorted(rows) == names
    for row in rows.values():
        assert row["status"] == "up"
        assert row["expires"] > sim.now
    assert stack.store.expired_members(sim.now) == []
    stack.stop_self_healing()


def test_crash_mid_request_fails_over_without_loss():
    sim, testbed, stack = deploy_healing(replicas=3, n_users=1,
                                         fault_threshold=1)
    publish(sim, testbed, stack, runtime="6")
    owner = stack.router.ring.owner("RouteService")
    primary = stack.onserves[0].replica
    if owner == primary:  # keep the DB tier up: crash a secondary
        pytest.skip("ring owner is the primary under this seed")
    proc = discover_and_invoke(stack, stack.user_clients[0], "Route%")
    crasher = crash_at(sim, stack, owner, at=sim.now + 8.0)
    result = sim.run(until=sim.all_of([proc, crasher]))[proc]
    # The call completed on a survivor; the client never saw the crash.
    assert result
    assert stack.router.failovers >= 1
    assert owner not in stack.router.replicas()
    events = bus(sim).events("router.failover")
    assert any(ev.get("from_replica") == owner for ev in events)


def test_crash_detected_by_consecutive_transport_faults():
    sim, testbed, stack = deploy_healing(replicas=3, n_users=2,
                                         fault_threshold=2)
    publish(sim, testbed, stack)
    victim = [n for n in stack.router.replicas()
              if n != stack.onserves[0].replica][0]
    stack.crash_replica(victim)
    # Drive enough routed traffic that the crashed replica accumulates
    # fault_threshold consecutive refusals (each refused dispatch fails
    # over, so no client-visible error).
    for client in stack.user_clients:
        sim.run(until=discover_and_invoke(stack, client, "Route%"))
    assert victim not in stack.router.replicas()
    reasons = {name: reason for _, name, reason in stack.router.deaths}
    assert reasons.get(victim) in ("transport_faults", "lease_expired")
    stack.stop_self_healing()


def test_lease_expiry_declares_a_silent_replica_dead():
    sim, testbed, stack = deploy_healing(replicas=3)
    victim = [n for n in stack.router.replicas()
              if n != stack.onserves[0].replica][0]
    stack.crash_replica(victim)      # kills its heartbeat too
    # No traffic at all: only the membership watchdog can notice.
    sim.run(until=sim.timeout(12.0 + 2 * 3.0 + 1.0))
    assert victim not in stack.router.replicas()
    reasons = {name: reason for _, name, reason in stack.router.deaths}
    assert reasons[victim] == "lease_expired"
    dead = bus(sim).first("router.replica_dead", replica=victim)
    assert dead is not None and dead.get("reason") == "lease_expired"
    stack.stop_self_healing()


def test_restart_rejoins_ring_lease_and_breaker():
    sim, testbed, stack = deploy_healing(replicas=3)
    victim = [n for n in stack.router.replicas()
              if n != stack.onserves[0].replica][0]
    stack.crash_replica(victim)
    sim.run(until=sim.timeout(20.0))
    assert victim not in stack.router.replicas()
    stack.restart_replica(victim)
    assert victim in stack.router.replicas()
    assert not stack.router.replica_handle(victim).crashed
    # The restarted replica heartbeats again: its lease stays fresh.
    sim.run(until=sim.timeout(20.0))
    assert victim in stack.router.replicas()
    row = stack.store.member(victim)
    assert row is not None and row["expires"] > sim.now
    # Reviving a live replica is a no-op, reviving a stranger is not.
    stack.router.revive_replica(victim)
    with pytest.raises(WsError):
        stack.router.revive_replica("never-registered")
    stack.stop_self_healing()


def test_dedup_replays_recorded_result_without_resubmitting():
    sim, testbed, stack = deploy_healing(replicas=2, n_users=1)
    publish(sim, testbed, stack)
    ctx = RequestContext(sim, "req-replayed")
    stack.store.record_dedup("req-replayed|RouteService.execute",
                             "appliance", "recorded-output", now=sim.now)
    invocations_before = stack.store.get_record("RouteService")[
        "invocations"]
    result = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Route%", ctx=ctx))
    # The router short-circuits on the idempotency table: the recorded
    # result comes back and no replica executes the work again.
    assert result == "recorded-output"
    assert stack.router.dedup_hits == 1
    assert stack.store.dedup_duplicates == 0
    row = stack.store.get_record("RouteService")
    assert row["invocations"] == invocations_before
    assert bus(sim).first("router.dedup_hit") is not None
    stack.stop_self_healing()


def test_read_operations_bypass_the_dedup_table():
    sim, testbed, stack = deploy_healing(replicas=2, n_users=1)
    publish(sim, testbed, stack)
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                      "Route%"))
    # Exactly the execute() call is recorded; the discovery traffic
    # (findService et al) must not bloat the idempotency table.
    assert stack.store.dedup_count() == 1
    stack.stop_self_healing()


def test_shed_raises_retryable_server_overloaded():
    sim, testbed, stack = deploy_healing(
        replicas=2, n_users=1, spill_threshold=1, shed_limit=1)
    publish(sim, testbed, stack)
    for name in stack.router.replicas():
        stack.router._admit(name)    # saturate every candidate
    with pytest.raises(SoapFault) as exc_info:
        sim.run(until=discover_and_invoke(
            stack, stack.user_clients[0], "Route%"))
    assert exc_info.value.root_cause == "ServerOverloaded"
    assert exc_info.value.retryable   # callers may back off and repeat
    assert stack.router.sheds == 1
    assert bus(sim).first("router.shed") is not None
    for name in stack.router.replicas():
        stack.router._release(name)
    stack.stop_self_healing()


def test_shed_limit_must_not_undercut_spill():
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=1)
    with pytest.raises(WsError):
        sim.run(until=deploy_fabric(testbed, replicas=2,
                                    self_healing=True,
                                    spill_threshold=4, shed_limit=2))


def test_drain_waits_for_inflight_then_drops_lease():
    sim, testbed, stack = deploy_healing(replicas=3, n_users=1)
    publish(sim, testbed, stack, runtime="6")
    victim = stack.router.ring.owner("RouteService")
    if victim == stack.onserves[0].replica:
        pytest.skip("ring owner is the primary under this seed")
    proc = discover_and_invoke(stack, stack.user_clients[0], "Route%")

    def drainer():
        yield sim.timeout(8.0, name="test:drain-timer")
        assert stack.router.inflight(victim) > 0
        yield stack.drain_replica(victim)

    drain_proc = sim.process(drainer(), name="test:drainer")
    result = sim.run(until=sim.all_of([proc, drain_proc]))[proc]
    # The draining replica finished its request before leaving; its
    # membership lease is gone and nothing new routes to it.
    assert result
    assert victim not in stack.router.replicas()
    assert stack.store.member(victim) is None
    assert stack.router.inflight(victim) == 0
    drained = [ev for ev in bus(sim).events("router.rebalance")
               if ev.get("replica") == victim
               and str(ev.get("reason", "")).startswith("drained:")]
    assert drained
    stack.stop_self_healing()
