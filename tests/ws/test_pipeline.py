"""Unit tests for the interceptor pipeline (the request-fabric spine)."""

import pytest

from repro.core.context import RequestContext
from repro.errors import SoapFault
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import Mbps
from repro.ws import (
    AdmissionControlInterceptor, DeadlineInterceptor, Interceptor,
    Invocation, MetricsInterceptor, OperationSpec, ParameterSpec, Pipeline,
    ServiceDescription, SoapFabric, SoapServer, TracingInterceptor, WsClient,
)


def make_env():
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, "appliance", net, HostSpec(cores=2))
    client_host = Host(sim, "user", net, HostSpec())
    net.connect("appliance", "user", bandwidth=Mbps(100), latency=0.005)
    fabric = SoapFabric()
    server = SoapServer(server_host, fabric)
    client = WsClient(client_host, fabric)
    return sim, server, client


def echo_service():
    return ServiceDescription("Echo", [
        OperationSpec("say", [ParameterSpec("text")], "xsd:string"),
    ])


def echo_handler(operation, params):
    return f"echo: {params['text']}"


def drive(gen):
    """Run a yield-free pipeline generator to completion."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("pipeline unexpectedly yielded")


# -- chain composition -------------------------------------------------------

class Recorder(Interceptor):
    def __init__(self, tag, log):
        self.tag = tag
        self.log = log

    def invoke(self, inv, call_next):
        self.log.append(f"{self.tag}:in")
        result = yield from call_next(inv)
        self.log.append(f"{self.tag}:out")
        return result


def test_interceptors_run_in_order_and_unwind_in_reverse():
    log = []
    pipe = Pipeline([Recorder("a", log), Recorder("b", log),
                     Recorder("c", log)])

    def terminal(inv):
        log.append("terminal")
        return inv.params["x"] * 2
        yield  # pragma: no cover - makes terminal a generator

    inv = Invocation(None, "Svc", "op", {"x": 21}, side="server")
    assert drive(pipe.run(inv, terminal)) == 42
    assert log == ["a:in", "b:in", "c:in", "terminal",
                   "c:out", "b:out", "a:out"]


def test_pipeline_find_locates_interceptor_by_class():
    sim = Simulator()
    admission = AdmissionControlInterceptor(sim)
    pipe = Pipeline([TracingInterceptor(), admission])
    assert pipe.find(AdmissionControlInterceptor) is admission
    assert pipe.find(DeadlineInterceptor) is None


# -- admission control -------------------------------------------------------

def test_admission_reject_short_circuits_before_handler():
    sim, server, client = make_env()
    calls = []

    def slow_handler(operation, params):
        calls.append(params["text"])
        yield sim.timeout(5.0)
        return "done"

    endpoint = server.deploy(echo_service(), slow_handler)
    server.admission.set_policy("Echo", max_concurrent=1)

    results = {}

    def first():
        results["first"] = yield client.call(endpoint, "say", text="one")

    def second():
        yield sim.timeout(0.5)  # arrives while the first is in flight
        try:
            yield client.call(endpoint, "say", text="two")
        except SoapFault as fault:
            results["fault"] = fault

    sim.process(first())
    sim.process(second())
    sim.run()

    assert results["first"] == "done"
    fault = results["fault"]
    assert fault.faultcode == "Server.Busy"
    assert fault.detail == "AdmissionReject"
    assert calls == ["one"]  # the rejected request never reached the handler
    stats = server.admission.stats("Echo")
    assert stats.admitted == 1
    assert stats.rejected == 1
    # the fault is visible in the server's per-operation metrics too
    cell = server.metrics.get("Echo", "say")
    assert cell.calls == 2
    assert cell.fault_codes == {"Server.Busy": 1}


def test_admission_queue_mode_serialises_instead_of_rejecting():
    sim, server, client = make_env()
    running = {"now": 0, "peak": 0}

    def slow_handler(operation, params):
        running["now"] += 1
        running["peak"] = max(running["peak"], running["now"])
        yield sim.timeout(2.0)
        running["now"] -= 1
        return params["text"]

    endpoint = server.deploy(echo_service(), slow_handler)
    server.admission.set_policy("Echo", max_concurrent=1, queue=True)

    done = []

    def caller(tag, delay):
        yield sim.timeout(delay)
        done.append((yield client.call(endpoint, "say", text=tag)))

    for i, tag in enumerate(["a", "b", "c"]):
        sim.process(caller(tag, 0.1 * i))
    sim.run()

    assert sorted(done) == ["a", "b", "c"]
    assert running["peak"] == 1  # never more than the cap in flight
    stats = server.admission.stats("Echo")
    assert stats.admitted == 3
    assert stats.rejected == 0
    assert stats.queued >= 2


def test_admission_queue_bound_rejects_overflow():
    sim, server, client = make_env()

    def slow_handler(operation, params):
        yield sim.timeout(2.0)
        return "ok"

    endpoint = server.deploy(echo_service(), slow_handler)
    server.admission.set_policy("Echo", max_concurrent=1, queue=True,
                                max_queue=1)
    faults = []

    def caller(delay):
        yield sim.timeout(delay)
        try:
            yield client.call(endpoint, "say", text="x")
        except SoapFault as fault:
            faults.append(fault.faultcode)

    for i in range(3):
        sim.process(caller(0.1 * i))
    sim.run()

    assert faults == ["Server.Busy"]  # third caller found the queue full
    assert server.admission.stats("Echo").rejected == 1


def test_admission_policy_can_be_removed():
    sim = Simulator()
    admission = AdmissionControlInterceptor(sim)
    admission.set_policy("Echo", max_concurrent=2)
    admission.set_policy("Echo", None)
    inv = Invocation(None, "Echo", "say", {}, side="server")

    def terminal(inv):
        return "through"
        yield  # pragma: no cover

    assert drive(Pipeline([admission]).run(inv, terminal)) == "through"
    with pytest.raises(ValueError):
        admission.set_policy("Echo", 0)


# -- deadlines ---------------------------------------------------------------

def test_deadline_exceeded_faults_at_the_caller():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    ctx = RequestContext.create(sim, principal="user", deadline=1.0)
    faults = []

    def caller():
        yield sim.timeout(2.0)  # the deadline passes before we dispatch
        try:
            yield client.call(endpoint, "say", ctx=ctx, text="late")
        except SoapFault as fault:
            faults.append(fault)

    sim.process(caller())
    sim.run()

    (fault,) = faults
    # the client-side interceptor refuses first: no bytes hit the wire
    assert fault.faultcode == "Client.DeadlineExceeded"
    assert fault.detail == "DeadlineExceeded"
    assert server.requests_served == 0
    deadline = client.pipeline.find(DeadlineInterceptor)
    assert deadline.expirations == 1
    assert ctx.expired


def test_live_deadline_lets_the_request_through():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    ctx = RequestContext.create(sim, principal="user", deadline=100.0)
    result = sim.run(until=client.call(endpoint, "say", ctx=ctx, text="hi"))
    assert result == "echo: hi"
    assert not ctx.expired
    assert ctx.remaining < 100.0  # the call consumed simulated time


# -- tracing -----------------------------------------------------------------

def test_trace_spans_nest_client_around_server():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    ctx = RequestContext.create(sim, principal="user")
    sim.run(until=client.call(endpoint, "say", ctx=ctx, text="hi"))

    client_span = ctx.root.find("client:Echo.say")
    server_span = ctx.root.find("server:Echo.say")
    assert client_span is not None and server_span is not None
    assert server_span.parent is client_span
    assert client_span.closed and server_span.closed
    # the server span sits inside the client span's sim-time window
    assert client_span.start <= server_span.start
    assert server_span.end <= client_span.end
    assert client_span.duration > 0
    assert ctx.request_id in ctx.waterfall()


def test_trace_span_marks_faulting_call():
    sim, server, client = make_env()

    def broken(operation, params):
        raise RuntimeError("boom")

    endpoint = server.deploy(echo_service(), broken)
    ctx = RequestContext.create(sim, principal="user")
    with pytest.raises(SoapFault):
        sim.run(until=client.call(endpoint, "say", ctx=ctx, text="hi"))
    server_span = ctx.root.find("server:Echo.say")
    assert server_span.meta["error"] == "RuntimeError"


# -- metrics -----------------------------------------------------------------

def test_metrics_record_latency_on_both_sides():
    sim, server, client = make_env()

    def working_handler(operation, params):
        yield sim.timeout(0.25)  # give the server span real sim time
        return f"echo: {params['text']}"

    endpoint = server.deploy(echo_service(), working_handler)
    sim.run(until=client.call(endpoint, "say", text="hi"))
    sim.run(until=client.call(endpoint, "say", text="ho"))

    for registry in (server.metrics, client.metrics):
        cell = registry.get("Echo", "say")
        assert cell.calls == 2
        assert cell.faults == 0
        assert cell.latency.mean > 0
    # client-observed latency includes the network; server's does not
    assert (client.metrics.get("Echo", "say").latency.mean
            > server.metrics.get("Echo", "say").latency.mean)


def test_metrics_interceptor_standalone_counts_faults():
    sim = Simulator()
    metrics = MetricsInterceptor(sim, side="client")

    def failing(inv):
        raise SoapFault(faultcode="Server", faultstring="nope")
        yield  # pragma: no cover

    inv = Invocation(None, "Svc", "op", {}, side="client")
    with pytest.raises(SoapFault):
        drive(Pipeline([metrics]).run(inv, failing))
    cell = metrics.registry.get("Svc", "op")
    assert cell.fault_codes == {"Server": 1}
