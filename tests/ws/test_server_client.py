"""Unit tests for the SOAP server, fabric, client and stub generation."""

import pytest

from repro.errors import ServiceNotFound, SoapFault, WsError
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import Mbps
from repro.ws import (
    OperationSpec, ParameterSpec, ServiceDescription, SoapFabric,
    SoapServer, WsClient, generate_stub,
)


def make_env():
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, "appliance", net, HostSpec(cores=2))
    client_host = Host(sim, "user", net, HostSpec())
    net.connect("appliance", "user", bandwidth=Mbps(100), latency=0.005)
    fabric = SoapFabric()
    server = SoapServer(server_host, fabric)
    client = WsClient(client_host, fabric)
    return sim, server, client


def echo_service():
    return ServiceDescription("Echo", [
        OperationSpec("say", [ParameterSpec("text")], "xsd:string"),
        OperationSpec("add", [ParameterSpec("a", "xsd:int"),
                              ParameterSpec("b", "xsd:int")], "xsd:int"),
    ])


def echo_handler(operation, params):
    if operation == "say":
        return f"echo: {params['text']}"
    return params["a"] + params["b"]


def test_deploy_and_invoke():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    assert endpoint == "soap://appliance/Echo"
    result = sim.run(until=client.call(endpoint, "say", text="hi"))
    assert result == "echo: hi"
    assert sim.now > 0  # network + CPU took simulated time
    assert server.requests_served == 1
    assert server.service("Echo").invocations == 1


def test_typed_result():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    assert sim.run(until=client.call(endpoint, "add", a=2, b=3)) == 5


def test_generator_handler_takes_time():
    sim, server, client = make_env()

    def slow_handler(operation, params):
        yield server.sim.timeout(42.0)
        return "done"

    svc = ServiceDescription("Slow", [OperationSpec("work")])
    endpoint = server.deploy(svc, slow_handler)
    result = sim.run(until=client.call(endpoint, "work"))
    assert result == "done"
    assert sim.now > 42.0


def test_handler_exception_becomes_fault():
    sim, server, client = make_env()

    def broken(operation, params):
        from repro.errors import JobError
        raise JobError("the grid is on fire")

    endpoint = server.deploy(ServiceDescription("B", [OperationSpec("go")]),
                             broken)
    with pytest.raises(SoapFault, match="on fire") as exc_info:
        sim.run(until=client.call(endpoint, "go"))
    assert exc_info.value.detail == "JobError: the grid is on fire"
    assert exc_info.value.root_cause == "JobError"
    assert exc_info.value.retryable  # JobError is transient
    assert server.service("B").faults == 1


def test_bad_arguments_fault_before_handler_runs():
    sim, server, client = make_env()
    calls = []

    def handler(operation, params):
        calls.append(operation)
        return "x"

    endpoint = server.deploy(echo_service(), handler)
    with pytest.raises(SoapFault, match="missing"):
        sim.run(until=client.call(endpoint, "say"))
    assert calls == []


def test_unknown_service_and_operation():
    sim, server, client = make_env()
    server.deploy(echo_service(), echo_handler)
    # Unknown service/operation surface as SOAP faults at the caller
    # (the server answers; it does not silently drop the request).
    with pytest.raises(SoapFault, match="not deployed"):
        sim.run(until=client.call("soap://appliance/Nope", "say", text="x"))
    with pytest.raises(SoapFault):
        sim.run(until=client.call("soap://appliance/Echo", "nope"))


def test_fabric_resolution_errors():
    sim, server, client = make_env()
    with pytest.raises(WsError):
        client.fabric.resolve("http://appliance/Echo")
    with pytest.raises(WsError):
        client.fabric.resolve("soap://appliance")
    # a trailing slash with nothing after it is not a service path
    with pytest.raises(WsError, match="empty service path"):
        client.fabric.resolve("soap://appliance/")
    with pytest.raises(ServiceNotFound):
        client.fabric.resolve("soap://ghost/Echo")


def test_duplicate_deploy_and_undeploy():
    sim, server, client = make_env()
    server.deploy(echo_service(), echo_handler)
    with pytest.raises(WsError, match="already deployed"):
        server.deploy(echo_service(), echo_handler)
    server.undeploy("Echo")
    assert server.services() == []
    with pytest.raises(ServiceNotFound):
        server.undeploy("Echo")


def test_one_server_per_host():
    sim, server, client = make_env()
    with pytest.raises(WsError, match="already bound"):
        SoapServer(server.host, client.fabric)


def test_invocation_moves_bytes_both_ways():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)
    sim.run(until=client.call(endpoint, "say", text="payload " * 100))
    assert client.host.net_bytes_out() > 500   # request envelope
    assert client.host.net_bytes_in() > 100    # response envelope


# ---------------------------------------------------------------- stubs

def test_stub_generation_and_call():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)

    def flow():
        document = yield client.fetch_wsdl(endpoint)
        Stub = generate_stub(document)
        stub = Stub(client)
        result = yield stub.add(a=20, b=22)
        return result, Stub

    result, Stub = sim.run(until=sim.process(flow()))
    assert result == 42
    assert Stub.__name__ == "EchoStub"
    assert Stub.ENDPOINT == endpoint
    assert "say" in dir(Stub)


def test_stub_validates_arguments_locally():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)

    def flow():
        document = yield client.fetch_wsdl(endpoint)
        stub = generate_stub(document)(client)
        with pytest.raises(WsError):
            stub.add(a="not-an-int", b=2)
        with pytest.raises(WsError):
            stub.say()  # missing param
        return True

    assert sim.run(until=sim.process(flow()))


def test_fetch_wsdl_transfers_document():
    sim, server, client = make_env()
    endpoint = server.deploy(echo_service(), echo_handler)

    def flow():
        return (yield client.fetch_wsdl(endpoint))

    document = sim.run(until=sim.process(flow()))
    assert b"definitions" in document
    assert client.host.net_bytes_in() >= len(document)
