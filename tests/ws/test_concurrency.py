"""Concurrent SOAP invocations share the server host's resources."""

import pytest

from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import Mbps
from repro.ws import (
    OperationSpec, ParameterSpec, ServiceDescription, SoapFabric,
    SoapServer, WsClient,
)


def env(cores=1):
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, "s", net, HostSpec(cores=cores))
    fabric = SoapFabric()
    server = SoapServer(server_host, fabric)
    clients = []
    for i in range(3):
        h = Host(sim, f"c{i}", net, HostSpec())
        net.connect("s", f"c{i}", bandwidth=Mbps(100))
        clients.append(WsClient(h, fabric))
    return sim, server, clients


def test_cpu_bound_handlers_contend():
    sim, server, clients = env(cores=1)

    def burn(operation, params):
        yield server.host.compute(10.0)
        return "done"

    endpoint = server.deploy(
        ServiceDescription("Burn", [OperationSpec("go")]), burn)
    procs = [c.call(endpoint, "go") for c in clients[:2]]
    sim.run(until=sim.all_of(procs))
    # Two 10 s CPU-bound handlers on one core: ~20 s, not ~10.
    assert sim.now > 19.0


def test_parallel_handlers_on_multicore():
    sim, server, clients = env(cores=2)

    def burn(operation, params):
        yield server.host.compute(10.0)
        return "done"

    endpoint = server.deploy(
        ServiceDescription("Burn", [OperationSpec("go")]), burn)
    procs = [c.call(endpoint, "go") for c in clients[:2]]
    sim.run(until=sim.all_of(procs))
    assert sim.now < 12.0  # both handlers fit the two cores


def test_interleaved_requests_all_answered():
    sim, server, clients = env(cores=2)
    answered = []

    def echo(operation, params):
        yield server.sim.timeout(params["delay"])
        return params["delay"]

    endpoint = server.deploy(
        ServiceDescription("E", [OperationSpec(
            "go", [ParameterSpec("delay", "xsd:int")], "xsd:int")]), echo)

    def caller(client, delay):
        result = yield client.call(endpoint, "go", delay=delay)
        answered.append(result)

    for client, delay in zip(clients, (30, 10, 20)):
        sim.process(caller(client, delay))
    sim.run()
    assert sorted(answered) == [10, 20, 30]
    assert server.requests_served == 3
