"""Unit tests for the request router and its consistent-hash ring."""

import pytest

from repro.errors import ReplicaDown, SoapFault, WsError
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.ws.router import HashRing, RequestRouter
from repro.ws.server import SoapFabric


# -- the ring ---------------------------------------------------------------

KEYS = [f"Service{i:03d}" for i in range(200)]


def ring_with(nodes, vnodes=64):
    ring = HashRing(vnodes=vnodes)
    for node in nodes:
        ring.add(node)
    return ring


def test_ring_owner_is_preference_head():
    ring = ring_with([f"r{i}" for i in range(1, 9)])
    for key in KEYS:
        order = ring.preference(key)
        assert order[0] == ring.owner(key)
        assert sorted(order) == ring.nodes()


def test_ring_leave_moves_only_departed_nodes_keys():
    nodes = [f"r{i}" for i in range(1, 9)]
    ring = ring_with(nodes)
    before = {key: ring.owner(key) for key in KEYS}
    ring.remove("r3")
    moved = [key for key in KEYS if ring.owner(key) != before[key]]
    # Consistent hashing: exactly the departed node's keys remap.
    assert set(moved) == {key for key in KEYS if before[key] == "r3"}
    # ...and that is a small fraction of the keyspace (~1/8 expected).
    assert len(moved) <= len(KEYS) // 2


def test_ring_join_steals_only_what_it_now_owns():
    ring = ring_with([f"r{i}" for i in range(1, 9)])
    before = {key: ring.owner(key) for key in KEYS}
    ring.add("r9")
    moved = [key for key in KEYS if ring.owner(key) != before[key]]
    assert all(ring.owner(key) == "r9" for key in moved)
    assert 0 < len(moved) <= len(KEYS) // 2


def test_ring_spread_is_roughly_uniform():
    ring = ring_with([f"r{i}" for i in range(1, 5)])
    per_node = {n: 0 for n in ring.nodes()}
    for key in KEYS:
        per_node[ring.owner(key)] += 1
    assert all(count > 0 for count in per_node.values())


def test_ring_rejects_duplicates_and_unknown():
    ring = ring_with(["a"])
    with pytest.raises(WsError):
        ring.add("a")
    with pytest.raises(WsError):
        ring.remove("ghost")
    with pytest.raises(WsError):
        HashRing(vnodes=0)


def test_empty_ring_has_no_owner():
    ring = HashRing()
    assert ring.preference("AnyService") == []
    with pytest.raises(WsError):
        ring.owner("AnyService")


# -- routing decisions ------------------------------------------------------

class _StubServer:
    """Stands in for a SoapServer in pure choose() tests."""


def make_router(n_replicas=3, **kw):
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "router", net, HostSpec(cores=4))
    router = RequestRouter(host, **kw)
    for i in range(1, n_replicas + 1):
        router.add_replica(f"replica{i}", _StubServer())
    return sim, router


def test_choose_prefers_hash_owner_when_idle():
    sim, router = make_router()
    owner = router.ring.owner("HelloService")
    assert router.choose("HelloService").name == owner
    assert router.rebalances == 0


def test_choose_spills_to_least_loaded_under_skew():
    sim, router = make_router(spill_threshold=2)
    order = router.ring.preference("HelloService")
    owner, second, third = order
    router._inflight[owner] = 2   # at threshold: must spill
    router._inflight[second] = 1
    router._inflight[third] = 0
    assert router.choose("HelloService").name == third
    assert router.rebalances == 1
    # Ties break by ring preference, keeping the decision deterministic.
    router._inflight[third] = 1
    assert router.choose("HelloService").name == second


def test_choose_skips_open_breaker():
    sim, router = make_router(breaker_failure_threshold=2)
    order = router.ring.preference("HelloService")
    owner = order[0]
    for _ in range(2):
        router.breakers.failure(owner)
    chosen = router.choose("HelloService")
    assert chosen.name == order[1]
    assert router.rebalances == 1


def test_choose_raises_when_all_circuits_open():
    sim, router = make_router(n_replicas=2, breaker_failure_threshold=1)
    for name in router.replicas():
        router.breakers.failure(name)
    with pytest.raises(WsError):
        router.choose("HelloService")


def test_membership_bookkeeping():
    sim, router = make_router(n_replicas=2)
    assert router.replicas() == ["replica1", "replica2"]
    with pytest.raises(WsError):
        router.add_replica("replica1", _StubServer())
    router.remove_replica("replica2")
    assert router.replicas() == ["replica1"]
    with pytest.raises(WsError):
        router.remove_replica("replica2")
    assert len(router.ring) == 1


def test_remove_replica_clears_gauges_and_emits_rebalance():
    # The ghost-replica fix: removal must zero the removed replica's
    # inflight gauge, shed its share of the aggregate queue gauge, and
    # announce the membership change on the bus.
    sim, router = make_router(n_replicas=3)
    board = gauges(sim)
    router._admit("replica2")
    router._admit("replica2")
    router._admit("replica1")
    assert board.gauge("router.queue", unit="reqs").current == 3
    router.remove_replica("replica2", reason="test")
    assert board.gauge("router.queue", unit="reqs").current == 1
    assert board.gauge("router.inflight", unit="reqs",
                       labels={"replica": "replica2"}).current == 0
    events = bus(sim).events("router.rebalance")
    assert any(ev.get("replica") == "replica2"
               and ev.get("reason") == "remove:test" for ev in events)
    # A late release for the removed replica must not go negative.
    router._release("replica2")
    assert board.gauge("router.queue", unit="reqs").current == 1
    router._release("replica1")
    assert board.gauge("router.queue", unit="reqs").current == 0


# -- satellite: HashRing.remove coverage ------------------------------------

def test_ring_remove_preference_excludes_removed_node():
    ring = ring_with([f"r{i}" for i in range(1, 6)])
    ring.remove("r2")
    for key in KEYS:
        order = ring.preference(key)
        assert "r2" not in order
        assert sorted(order) == ring.nodes()


def test_ring_remove_keeps_ownership_normalized():
    ring = ring_with([f"r{i}" for i in range(1, 9)])
    for victim in ("r4", "r7"):
        ring.remove(victim)
        ownership = ring.ownership()
        assert victim not in ownership
        assert sum(ownership.values()) == pytest.approx(1.0)
        assert all(arc > 0.0 for arc in ownership.values())


def test_ring_remove_then_readd_is_deterministic():
    ring = ring_with([f"r{i}" for i in range(1, 6)])
    before_points = list(ring._points)
    before_owners = {key: ring.owner(key) for key in KEYS}
    ring.remove("r3")
    ring.add("r3")
    assert list(ring._points) == before_points
    assert {key: ring.owner(key) for key in KEYS} == before_owners


def test_disabled_router_owns_no_endpoint():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "router", net, HostSpec(cores=4))
    fabric = SoapFabric()
    router = RequestRouter(host, fabric, enabled=False)
    router.add_replica("replica1", _StubServer())
    with pytest.raises(WsError):
        fabric.resolve(router.endpoint_for("HelloService"))


def test_enabled_router_is_a_fabric_target():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "router", net, HostSpec(cores=4))
    fabric = SoapFabric()
    router = RequestRouter(host, fabric, enabled=True)
    server, service = fabric.resolve(router.endpoint_for("HelloService"))
    assert server is router
    assert service == "HelloService"


# -- end-to-end determinism -------------------------------------------------

def _routed_run():
    from repro.core.fabric import deploy_fabric
    from repro.core.invocation import discover_and_invoke
    from repro.core.onserve import OnServeConfig
    from repro.grid.testbed import build_testbed
    from repro.telemetry.events import bus
    from repro.units import KB
    from repro.workloads.executables import make_payload

    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=4)
    stack = sim.run(until=deploy_fabric(testbed, OnServeConfig(),
                                        replicas=2, spill_threshold=1))
    payload = make_payload("fixed", size=int(KB(32)), runtime="3",
                           output_bytes="64")
    sim.run(until=stack.portal.upload_and_generate(
        testbed.user_hosts[0], "route.bin", payload))
    procs = [discover_and_invoke(stack, client, "Route%")
             for client in stack.user_clients]
    sim.run(until=sim.all_of(procs))
    return (sim.now, stack.router.requests_routed,
            stack.router.rebalances, dict(bus(sim).counts()))


def test_routed_runs_are_trace_deterministic():
    assert _routed_run() == _routed_run()


def test_ring_ownership_arcs_sum_to_one_and_cover_all_nodes():
    nodes = [f"r{i}" for i in range(1, 6)]
    ring = ring_with(nodes)
    ownership = ring.ownership()
    assert sorted(ownership) == sorted(nodes)
    assert sum(ownership.values()) == pytest.approx(1.0)
    assert all(arc > 0.0 for arc in ownership.values())
    # 64 vnodes keep arcs roughly even; nothing owns half the ring.
    assert max(ownership.values()) < 0.5


def test_ring_ownership_tracks_membership_and_empty_ring():
    assert HashRing().ownership() == {}
    ring = ring_with(["a", "b"])
    before = ring.ownership()
    ring.remove("b")
    assert ring.ownership() == {"a": pytest.approx(1.0)}
    ring.add("b")
    after = ring.ownership()
    assert after.keys() == before.keys()
    for node in before:
        assert after[node] == pytest.approx(before[node])


def test_ring_ownership_matches_sampled_owner_frequency():
    ring = ring_with([f"r{i}" for i in range(1, 5)])
    ownership = ring.ownership()
    counts = {}
    for key in KEYS:
        owner = ring.owner(key)
        counts[owner] = counts.get(owner, 0) + 1
    for node, arc in ownership.items():
        # 200 sampled keys land within a loose band of the exact arcs.
        assert abs(counts.get(node, 0) / len(KEYS) - arc) < 0.15
