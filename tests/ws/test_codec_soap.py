"""Unit tests for the XML codec and SOAP envelopes."""

import pytest

from repro.errors import SoapFault, WsError
from repro.ws.soap import SoapEnvelope
from repro.ws.xmlcodec import (
    element_to_value, python_to_xsd, value_to_element,
)


# ---------------------------------------------------------------- xmlcodec

@pytest.mark.parametrize("value,xsd", [
    ("hello", "xsd:string"),
    ("", "xsd:string"),
    ("<&> 'quoted'", "xsd:string"),
    (42, "xsd:int"),
    (-1, "xsd:int"),
    (3.5, "xsd:double"),
    (1e-300, "xsd:double"),
    (True, "xsd:boolean"),
    (False, "xsd:boolean"),
    (b"\x00\x01binary\xff", "xsd:base64Binary"),
    (b"", "xsd:base64Binary"),
])
def test_value_roundtrip(value, xsd):
    elem = value_to_element("p", value)
    assert elem.get("type") == xsd
    assert element_to_value(elem) == value


def test_python_to_xsd_inference():
    assert python_to_xsd(True) == "xsd:boolean"  # bool before int
    assert python_to_xsd(1) == "xsd:int"
    with pytest.raises(WsError):
        python_to_xsd([1, 2])


def test_decode_bad_typed_text():
    elem = value_to_element("p", 5)
    elem.text = "not-a-number"
    with pytest.raises(WsError, match="cannot decode"):
        element_to_value(elem)


def test_none_roundtrip():
    elem = value_to_element("p", None, "xsd:string")
    assert element_to_value(elem) is None


# ---------------------------------------------------------------- SOAP

def test_request_roundtrip():
    env = SoapEnvelope.request("execute", {"fileName": "a.sh", "count": 3,
                                           "blob": b"\x01\x02"})
    decoded = SoapEnvelope.decode(env.encode())
    assert decoded.operation == "execute"
    assert decoded.params == {"fileName": "a.sh", "count": 3,
                              "blob": b"\x01\x02"}
    assert not decoded.is_response


def test_response_roundtrip_and_result():
    env = SoapEnvelope.response("execute", "job-42")
    decoded = SoapEnvelope.decode(env.encode())
    assert decoded.is_response
    assert decoded.result() == "job-42"


def test_fault_roundtrip():
    fault = SoapFault("Server", "it broke", detail="JobError")
    env = SoapEnvelope.fault_response(fault)
    decoded = SoapEnvelope.decode(env.encode())
    assert decoded.fault is not None
    with pytest.raises(SoapFault, match="it broke"):
        decoded.result()
    assert decoded.fault.faultcode == "Server"
    assert decoded.fault.detail == "JobError"


def test_result_on_request_rejected():
    env = SoapEnvelope.request("op", {})
    with pytest.raises(WsError):
        env.result()


def test_decode_garbage():
    with pytest.raises(WsError, match="malformed XML"):
        SoapEnvelope.decode(b"this is not xml")
    with pytest.raises(WsError, match="not a SOAP envelope"):
        SoapEnvelope.decode(b"<other/>")
    with pytest.raises(WsError, match="exactly one"):
        SoapEnvelope.decode(b"<Envelope><Body/></Envelope>")


def test_size_scales_with_payload():
    small = SoapEnvelope.request("op", {"d": b"x"})
    big = SoapEnvelope.request("op", {"d": b"x" * 10000})
    assert big.size() > small.size() + 10000  # base64 expands ~4/3
