"""Property-based tests: envelope and WSDL round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ws import (
    OperationSpec, ParameterSpec, ServiceDescription, generate_wsdl,
    parse_wsdl,
)
from repro.ws.soap import SoapEnvelope

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True)

# Text that XML 1.0 can carry (the codec rejects the rest by design).
xml_text = st.text(
    alphabet=st.characters(
        exclude_characters="".join(map(chr, range(0x00, 0x09)))
        + "\x0b\x0c\x0d" + "".join(map(chr, range(0x0e, 0x20)))
        + "￾￿",
        exclude_categories=("Cs",),
    ),
    max_size=60,
)

param_values = st.one_of(
    xml_text,
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.binary(max_size=60),
)


@settings(max_examples=60)
@given(identifiers, st.dictionaries(identifiers, param_values, max_size=6))
def test_soap_request_roundtrip(operation, params):
    env = SoapEnvelope.request(operation, params)
    decoded = SoapEnvelope.decode(env.encode())
    assert decoded.operation == operation
    assert decoded.params == params


@settings(max_examples=60)
@given(identifiers, param_values)
def test_soap_response_roundtrip(operation, result):
    env = SoapEnvelope.response(operation, result)
    assert SoapEnvelope.decode(env.encode()).result() == result


xsd_types = st.sampled_from(
    ["xsd:string", "xsd:int", "xsd:double", "xsd:boolean", "xsd:base64Binary"])


@st.composite
def service_descriptions(draw):
    n_ops = draw(st.integers(min_value=1, max_value=4))
    ops = []
    names = draw(st.lists(identifiers, min_size=n_ops, max_size=n_ops,
                          unique=True))
    for name in names:
        param_names = draw(st.lists(identifiers, max_size=4, unique=True))
        params = [ParameterSpec(p, draw(xsd_types)) for p in param_names]
        ops.append(OperationSpec(name, params, return_type=draw(xsd_types)))
    svc_name = draw(identifiers)
    doc = draw(st.from_regex(r"[A-Za-z0-9 ,.]{0,40}", fullmatch=True))
    return ServiceDescription(svc_name, ops, documentation=doc.strip())


@settings(max_examples=40)
@given(service_descriptions(), identifiers)
def test_wsdl_roundtrip_property(service, hostname):
    endpoint = f"soap://{hostname}/{service.name}"
    parsed, got_endpoint = parse_wsdl(generate_wsdl(service, endpoint))
    assert parsed == service
    assert got_endpoint == endpoint
