"""Client-side invocation caches: hits, TTL, and the invalidation contract."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.core.invocation import discover_service
from repro.errors import ServiceNotFound, SoapFault
from repro.grid import build_testbed
from repro.simkernel.kernel import Simulator
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws.cache import ClientCache


# -- unit: the cache itself ------------------------------------------------


def test_ttl_must_be_positive():
    with pytest.raises(ValueError):
        ClientCache(Simulator(seed=0), ttl=0.0)


def test_discovery_entries_expire_by_sim_time():
    sim = Simulator(seed=0)
    cache = ClientCache(sim, ttl=10.0)
    cache.store_discovery("Hello%", ("HelloService", "soap://a/HelloService",
                                     "soap://a/HelloService?wsdl"))
    assert cache.lookup_discovery("Hello%") is not None
    sim.run(until=sim.timeout(10.0))
    assert cache.lookup_discovery("Hello%") is None  # expired + dropped
    assert cache.hits == 1 and cache.misses == 1


def test_disabled_cache_stores_and_serves_nothing():
    sim = Simulator(seed=0)
    cache = ClientCache(sim, enabled=False)
    cache.store_discovery("X%", ("X", "soap://a/X", "soap://a/X?wsdl"))
    cache.store_wsdl("soap://a/X", b"<wsdl/>")
    assert cache.lookup_discovery("X%") is None
    assert cache.lookup_wsdl("soap://a/X") is None
    assert cache.hits == 0 and cache.misses == 0  # not even counted


def test_stub_memo_is_keyed_by_document_bytes():
    sim = Simulator(seed=0)
    cache = ClientCache(sim)
    from repro.ws.registryapi import OperationSpec, ServiceDescription
    from repro.ws.wsdl import generate_wsdl
    doc_a = generate_wsdl(ServiceDescription("A", [
        OperationSpec("execute", [], "xsd:string")]), "soap://a/A")
    assert cache.stub_class(doc_a) is cache.stub_class(doc_a)
    doc_b = generate_wsdl(ServiceDescription("B", [
        OperationSpec("execute", [], "xsd:string")]), "soap://a/B")
    assert cache.stub_class(doc_a) is not cache.stub_class(doc_b)


def test_invalidate_drops_only_the_named_service():
    sim = Simulator(seed=0)
    cache = ClientCache(sim)
    cache.store_discovery("A%", ("AService", "soap://h/AService",
                                 "soap://h/AService?wsdl"))
    cache.store_discovery("B%", ("BService", "soap://h/BService",
                                 "soap://h/BService?wsdl"))
    cache.store_wsdl("soap://h/AService", b"<a/>")
    cache.store_wsdl("soap://h/BService", b"<b/>")
    cache.invalidate_service("AService")
    assert cache.lookup_discovery("A%") is None
    assert cache.lookup_wsdl("soap://h/AService") is None
    assert cache.lookup_discovery("B%") is not None
    assert cache.lookup_wsdl("soap://h/BService") is not None
    assert cache.invalidations == 1


def test_evict_endpoint_drops_bindings_but_keeps_stubs():
    sim = Simulator(seed=0)
    cache = ClientCache(sim)
    cache.store_discovery("A%", ("AService", "soap://dead/AService",
                                 "soap://dead/AService?wsdl"))
    cache.store_discovery("B%", ("BService", "soap://live/BService",
                                 "soap://live/BService?wsdl"))
    cache.store_wsdl("soap://dead/AService", b"<a/>")
    cache.store_wsdl("soap://live/BService", b"<b/>")
    from repro.ws.registryapi import OperationSpec, ServiceDescription
    from repro.ws.wsdl import generate_wsdl
    doc = generate_wsdl(ServiceDescription("AService", [
        OperationSpec("execute", [], "xsd:string")]), "soap://dead/AService")
    stub = cache.stub_class(doc)
    # Failover eviction: everything *bound to* the dead endpoint goes,
    # entries for other endpoints stay put.
    cache.evict_endpoint("soap://dead/AService")
    assert cache.lookup_discovery("A%") is None
    assert cache.lookup_wsdl("soap://dead/AService") is None
    assert cache.lookup_discovery("B%") is not None
    assert cache.lookup_wsdl("soap://live/BService") is not None
    # Stub classes are pure derivations of WSDL bytes: they survive.
    assert cache.stub_class(doc) is stub
    assert cache.invalidations == 1
    # Evicting an endpoint nothing points at is a silent no-op.
    cache.evict_endpoint("soap://dead/AService")
    assert cache.invalidations == 1


# -- integration: caches on a live stack -----------------------------------


def cached_stack():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    caches = stack.enable_client_caches()
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload, params_spec="name:string"))
    return tb, stack, caches[0]


def test_warm_discovery_skips_the_registry_round_trips():
    tb, stack, cache = cached_stack()
    client = stack.user_clients[0]
    inquiry = stack.soap_server.service("UddiInquiry")
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="a"))
    calls_after_cold = inquiry.invocations
    t0 = tb.sim.now
    tb.sim.run(until=discover_service(stack, client, "Hello%"))
    # A warm discovery touches neither the registry nor the clock.
    assert inquiry.invocations == calls_after_cold
    assert tb.sim.now == t0
    assert cache.hits >= 1


def test_warm_invocation_is_faster_and_correct():
    tb, stack, cache = cached_stack()
    client = stack.user_clients[0]
    t0 = tb.sim.now
    out1 = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                                name="cold"))
    cold = tb.sim.now - t0
    t0 = tb.sim.now
    out2 = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                                name="warm"))
    warm = tb.sim.now - t0
    assert (out1, out2) == ("cold\n", "warm\n")
    assert warm < cold  # discovery + WSDL round-trips disappeared


def test_undeploy_invalidates_no_stale_endpoint_served():
    tb, stack, cache = cached_stack()
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="x"))
    assert cache.lookup_discovery("Hello%") is not None
    tb.sim.run(until=stack.onserve.undeploy_service("HelloService"))
    # The undeploy hook dropped every cached artefact of the service...
    assert cache.lookup_discovery("Hello%") is None
    assert cache.lookup_wsdl("soap://appliance/HelloService") is None
    # ...so the next workflow fails with a clean not-found, instead of
    # invoking a cached endpoint that no longer exists.
    with pytest.raises((ServiceNotFound, SoapFault)):
        tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                             name="y"))


def test_replacement_upload_invalidates_client_caches():
    tb, stack, cache = cached_stack()
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="x"))
    assert cache.lookup_wsdl("soap://appliance/HelloService") is not None
    # Replace the executable with one declaring a different interface.
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload,
        params_spec="name:string, shout:boolean"))
    # The republish hook dropped the cached discovery + WSDL, so the
    # next call re-fetches and generates a stub for the *new* spec.
    assert cache.lookup_discovery("Hello%") is None
    assert cache.lookup_wsdl("soap://appliance/HelloService") is None
    out = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                               name="y", shout=True))
    assert out == "y\ntrue\n"  # the new parameter reached the executable
