"""Fuzzing: malformed inputs never crash the parsers, only raise WsError."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import RslError, SoapFault, WsError, WsdlError
from repro.grid.rsl import parse_rsl
from repro.ws.soap import SoapEnvelope
from repro.ws.wsdl import parse_wsdl


@settings(max_examples=120)
@given(st.binary(max_size=400))
def test_soap_decode_never_crashes(data):
    try:
        SoapEnvelope.decode(data)
    except WsError:
        pass  # the only acceptable failure mode


@settings(max_examples=120)
@given(st.binary(max_size=400))
def test_wsdl_parse_never_crashes(data):
    try:
        parse_wsdl(data)
    except (WsError, WsdlError):
        pass


@settings(max_examples=120)
@given(st.text(max_size=200))
def test_rsl_parse_never_crashes(text):
    try:
        parse_rsl(text)
    except RslError:
        pass


@settings(max_examples=60)
@given(st.binary(max_size=400))
def test_mutated_valid_envelope_decodes_or_wserrors(data):
    """Splicing garbage into a valid envelope stays contained."""
    valid = SoapEnvelope.request("op", {"a": 1}).encode()
    mutated = valid[: len(valid) // 2] + data + valid[len(valid) // 2:]
    try:
        SoapEnvelope.decode(mutated)
    except WsError:
        pass
