"""Cross-cutting property tests over several subsystems."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, execute_sql
from repro.db.table import Column
from repro.hardware import Network
from repro.simkernel import Simulator
from repro.telemetry import TimeSeries
from repro.workloads import make_payload, parse_payload


# ---------------------------------------------------------------- payloads

option_values = st.from_regex(r"[A-Za-z0-9_.:-]{0,12}", fullmatch=True)


@settings(max_examples=50)
@given(st.sampled_from(["fixed", "sleep", "echo", "mcpi", "wordcount"]),
       st.one_of(st.none(), st.integers(min_value=0, max_value=100_000)),
       st.dictionaries(st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
                       .filter(lambda k: k != "profile"),
                       option_values, max_size=4))
def test_payload_roundtrip_property(profile, size, options):
    payload = make_payload(profile, size=size, **options)
    got_profile, got_options = parse_payload(payload)
    assert got_profile == profile
    assert got_options == {k: str(v) for k, v in options.items()}
    if size is not None and size > 4096:
        assert len(payload) == size


# ---------------------------------------------------------------- network

@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                min_size=1, max_size=15),
       st.integers(0, 7), st.integers(0, 7))
def test_route_is_valid_path(edges, src, dst):
    """Any route returned is a contiguous src->dst walk over real links."""
    sim = Simulator()
    net = Network(sim)
    for i in range(8):
        net.add_host(f"h{i}")
    for a, b in edges:
        if a != b:
            net.connect(f"h{a}", f"h{b}", bandwidth=100.0)
    from repro.errors import HardwareError
    try:
        path = net.route(f"h{src}", f"h{dst}")
    except HardwareError:
        return  # disconnected: acceptable outcome
    if src == dst:
        assert path == []
        return
    at = f"h{src}"
    for link in path:
        assert at in link.endpoints()
        at = link.b if link.a == at else link.a
    assert at == f"h{dst}"
    # BFS minimality: a path exists means its length is at most #hosts.
    assert len(path) <= 8


# ---------------------------------------------------------------- telemetry

series_points = st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    min_size=1, max_size=40)


@settings(max_examples=50)
@given(series_points,
       st.floats(min_value=0.1, max_value=90),
       st.floats(min_value=0, max_value=20))
def test_merged_peaks_invariants(values, threshold, min_gap):
    s = TimeSeries("s")
    for i, v in enumerate(values):
        s.append(float(i), v)
    raw = s.peaks(threshold)
    merged = s.merged_peaks(threshold, min_gap)
    assert len(merged) <= len(raw)
    # Merged intervals are ordered, disjoint and within the time range.
    last_end = -1.0
    for start, end in merged:
        assert start >= 0 and end <= len(values) - 1
        assert start <= end
        assert start > last_end
        last_end = end
    # peak_count agrees with merged_peaks.
    assert s.peak_count(threshold, min_gap) == len(merged)


@settings(max_examples=50)
@given(series_points)
def test_nonzero_fraction_bounds(values):
    s = TimeSeries("s")
    for i, v in enumerate(values):
        s.append(float(i), v)
    f = s.nonzero_fraction()
    assert 0.0 <= f <= 1.0


# ---------------------------------------------------------------- SQL aggregates

groups = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.one_of(st.none(), st.integers(-100, 100))),
    max_size=30)


@settings(max_examples=50)
@given(groups)
def test_group_by_matches_python_oracle(rows):
    db = Database()
    db.create_table("t", [Column("g", "TEXT"), Column("v", "INT")])
    for g, v in rows:
        db.insert("t", [g, v])
    got = execute_sql(db, "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), "
                          "MAX(v) FROM t GROUP BY g")
    oracle = {}
    for g, v in rows:
        oracle.setdefault(g, []).append(v)
    assert len(got) == len(oracle)
    for record in got:
        g = record["g"]
        values = oracle[g]
        non_null = [v for v in values if v is not None]
        assert record["count(*)"] == len(values)
        assert record["count(v)"] == len(non_null)
        assert record["sum(v)"] == (sum(non_null) if non_null else None)
        assert record["min(v)"] == (min(non_null) if non_null else None)
        assert record["max(v)"] == (max(non_null) if non_null else None)
