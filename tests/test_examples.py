"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
    assert "Traceback" not in result.stderr
