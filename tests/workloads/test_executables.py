"""Unit tests for executable profiles and payloads."""

import random

import pytest

from repro.errors import JobError
from repro.workloads import (
    ExecutableProfile, WorkloadSpec, get_profile, make_payload,
    make_workload, parse_payload, register_profile,
)


def test_payload_roundtrip():
    payload = make_payload("fixed", runtime="30", output_bytes="512")
    profile, options = parse_payload(payload)
    assert profile == "fixed"
    assert options == {"runtime": "30", "output_bytes": "512"}


def test_payload_padding_to_size():
    payload = make_payload("echo", size=10_000)
    assert len(payload) == 10_000
    profile, _ = parse_payload(payload)
    assert profile == "echo"


def test_payload_smaller_than_header():
    payload = make_payload("echo", size=5)
    assert len(payload) > 5  # header always survives
    assert parse_payload(payload)[0] == "echo"


def test_payload_validation():
    with pytest.raises(JobError):
        make_payload("no-such-profile")
    with pytest.raises(JobError):
        make_payload("echo", note="two\nlines")
    with pytest.raises(JobError):
        parse_payload(b"not an exe")
    with pytest.raises(JobError):
        parse_payload(b"#!repro-exe\nprofile=echo\n(no terminator)")
    with pytest.raises(JobError):
        parse_payload(b"#!repro-exe\njunk-line\n--\n")
    with pytest.raises(JobError):
        parse_payload(b"#!repro-exe\nkey=v\n--\n")  # no profile


def test_fixed_profile():
    p = get_profile("fixed")
    rng = random.Random(0)
    assert p.runtime([], 1, {"runtime": "42"}, rng) == 42.0
    assert p.output_size([], 1, {"output_bytes": "100"}) == 100
    assert len(p.compute_output([], 1, {"output_bytes": "100"})) == 100


def test_sleep_profile():
    p = get_profile("sleep")
    rng = random.Random(0)
    assert p.runtime(["7.5"], 1, {}, rng) == 7.5
    assert p.runtime([], 1, {}, rng) == 1.0
    with pytest.raises(JobError):
        p.runtime(["soon"], 1, {}, rng)


def test_echo_profile():
    p = get_profile("echo")
    assert p.compute_output(["a", "b"], 1, {}) == b"a\nb\n"


def test_mcpi_profile_real_estimate():
    p = get_profile("mcpi")
    out = p.compute_output(["50000", "1"], 1, {})
    estimate = float(out.decode().splitlines()[-1].split("=")[1])
    assert abs(estimate - 3.14159) < 0.05
    # Deterministic given the seed.
    assert p.compute_output(["50000", "1"], 1, {}) == out
    # Runtime scales with samples, shrinks with cores.
    rng = random.Random(0)
    t1 = p.runtime(["100000"], 1, {}, rng)
    t4 = p.runtime(["100000"], 4, {}, rng)
    assert t1 == pytest.approx(4 * t4)


def test_wordcount_profile_real_counts():
    p = get_profile("wordcount")
    out = p.compute_output([], 1, {"text": "the cat and the hat and the bat"})
    lines = out.decode().splitlines()
    assert lines[0] == "the 3"
    assert "and 2" in lines


def test_custom_profile_registration():
    class Doubler(ExecutableProfile):
        name = "doubler"

        def runtime(self, arguments, count, options, rng):
            return 1.0

        def compute_output(self, arguments, count, options):
            return str(int(arguments[0]) * 2).encode()

    register_profile(Doubler())
    payload = make_payload("doubler")
    profile, _ = parse_payload(payload)
    assert get_profile(profile).compute_output(["21"], 1, {}) == b"42"


def test_unknown_profile_lookup():
    with pytest.raises(JobError):
        get_profile("missing")


# ---------------------------------------------------------------- generator

def test_make_workload_small():
    uploads = make_workload(WorkloadSpec(kind="small", count=5, seed=1))
    assert len(uploads) == 5
    names = [u[0] for u in uploads]
    assert len(set(names)) == 5
    for _, payload, _, _ in uploads:
        assert len(payload) <= 4096 + 200
        parse_payload(payload)


def test_make_workload_large_is_5mb():
    uploads = make_workload(WorkloadSpec(kind="large", count=1))
    assert len(uploads[0][1]) == 5 * 1024 * 1024


def test_make_workload_deterministic():
    a = make_workload(WorkloadSpec(kind="mixed", count=8, seed=7))
    b = make_workload(WorkloadSpec(kind="mixed", count=8, seed=7))
    assert [x[1] for x in a] == [x[1] for x in b]


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(kind="weird")
    with pytest.raises(ValueError):
        WorkloadSpec(count=0)
