"""Unit tests for Cpu, Disk and Host."""

import pytest

from repro.errors import HardwareError
from repro.hardware import Cpu, Disk, Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator


# ---------------------------------------------------------------- CPU

def test_cpu_single_task_duration():
    sim = Simulator()
    cpu = Cpu(sim, cores=2)
    done = cpu.compute(3.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(3.0)


def test_cpu_parallel_tasks_within_cores():
    sim = Simulator()
    cpu = Cpu(sim, cores=2)
    a = cpu.compute(3.0)
    b = cpu.compute(3.0)
    sim.run()
    assert a.value == pytest.approx(3.0)
    assert b.value == pytest.approx(3.0)


def test_cpu_contention_beyond_cores():
    sim = Simulator()
    cpu = Cpu(sim, cores=1)
    a = cpu.compute(2.0)
    b = cpu.compute(2.0)
    sim.run()
    # Processor sharing: both run at 0.5 cores, both finish at t=4.
    assert a.value == pytest.approx(4.0)
    assert b.value == pytest.approx(4.0)


def test_cpu_speed_factor_scales_time():
    sim = Simulator()
    fast = Cpu(sim, cores=1, speed_factor=2.0)
    done = fast.compute(10.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(5.0)


def test_cpu_busy_accounting():
    sim = Simulator()
    cpu = Cpu(sim, cores=4)
    cpu.compute(2.0)
    cpu.compute(2.0)
    sim.run()
    assert cpu.busy_core_seconds() == pytest.approx(4.0)
    # 4 core-seconds over 2 s wall on 4 cores -> 50% mean utilization.
    assert cpu.utilization(since=0.0, busy_at_since=0.0) == pytest.approx(0.5)


def test_cpu_validation():
    sim = Simulator()
    with pytest.raises(HardwareError):
        Cpu(sim, cores=0)
    with pytest.raises(HardwareError):
        Cpu(sim, speed_factor=0)
    cpu = Cpu(sim)
    with pytest.raises(HardwareError):
        cpu.compute(-1)


# ---------------------------------------------------------------- Disk

def test_disk_write_duration_includes_latency():
    sim = Simulator()
    disk = Disk(sim, bandwidth=100.0, access_latency=0.5)
    done = disk.write(1000.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.5)


def test_disk_read_write_share_bandwidth():
    sim = Simulator()
    disk = Disk(sim, bandwidth=100.0, access_latency=0.0)
    r = disk.read(500.0)
    w = disk.write(500.0)
    sim.run()
    assert r.value == pytest.approx(10.0)
    assert w.value == pytest.approx(10.0)


def test_disk_counters_separate_directions():
    sim = Simulator()
    disk = Disk(sim, bandwidth=1000.0, access_latency=0.0)
    disk.write(300.0)
    disk.read(200.0)
    sim.run()
    assert disk.bytes_written() == pytest.approx(300.0)
    assert disk.bytes_read() == pytest.approx(200.0)


def test_disk_capacity_enforced():
    sim = Simulator()
    disk = Disk(sim, bandwidth=1000.0, capacity_bytes=1000.0)
    disk.write(800.0)
    with pytest.raises(HardwareError, match="disk full"):
        disk.write(300.0)
    disk.free(500.0)
    disk.write(300.0)  # fits now
    sim.run()


# ---------------------------------------------------------------- Host

def _mini_net():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, "a", net, HostSpec(cores=1))
    b = Host(sim, "b", net, HostSpec(cores=1))
    net.connect("a", "b", bandwidth=100.0)
    return sim, net, a, b


def test_host_send_uses_network():
    sim, net, a, b = _mini_net()
    done = a.send(b, 1000.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)
    assert a.net_bytes_out() == pytest.approx(1000.0)
    assert b.net_bytes_in() == pytest.approx(1000.0)
    assert a.net_bytes_in() == 0.0


def test_host_memory_accounting():
    sim = Simulator()
    net = Network(sim)
    h = Host(sim, "h", net, HostSpec(memory_bytes=100.0))
    h.allocate_memory(60.0)
    with pytest.raises(HardwareError, match="out of memory"):
        h.allocate_memory(50.0)
    h.release_memory(30.0)
    h.allocate_memory(50.0)
    assert h.memory_used == pytest.approx(80.0)


def test_host_local_send_is_instant():
    sim, net, a, b = _mini_net()
    done = a.send(a, 1e9)
    sim.run(until=done)
    assert sim.now == 0.0
