"""Tests for the disk operation log."""

from repro.hardware import Disk
from repro.simkernel import Simulator


def test_op_log_records_time_direction_size():
    sim = Simulator()
    disk = Disk(sim, bandwidth=1000.0, access_latency=0.0)

    def flow():
        yield disk.write(100.0)
        yield sim.timeout(5.0)
        yield disk.read(50.0)

    sim.run(until=sim.process(flow()))
    assert disk.op_log == [
        (0.0, "write", 100.0),
        (5.1, "read", 50.0),
    ]


def test_op_log_orders_concurrent_ops():
    sim = Simulator()
    disk = Disk(sim, bandwidth=1000.0, access_latency=0.0)
    disk.write(100.0)
    disk.write(200.0)
    sim.run()
    assert [entry[2] for entry in disk.op_log] == [100.0, 200.0]
    assert all(t == 0.0 for t, _, _ in disk.op_log)
