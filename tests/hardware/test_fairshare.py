"""Unit tests for the fair-share capacity server."""

import pytest

from repro.errors import HardwareError
from repro.hardware.fairshare import FairShareServer
from repro.simkernel import Simulator


def test_single_flow_full_capacity():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    done = srv.submit(500.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(5.0)


def test_two_equal_flows_share_capacity():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    a = srv.submit(500.0)
    b = srv.submit(500.0)
    sim.run()
    # Each gets 50 units/s, so both finish at t=10.
    assert a.value == pytest.approx(10.0)
    assert b.value == pytest.approx(10.0)


def test_late_arrival_slows_first_flow():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    first = srv.submit(1000.0)  # alone: 10 s

    def late():
        yield sim.timeout(5.0)
        done = srv.submit(250.0)
        yield done

    sim.process(late())
    sim.run()
    # First flow: 500 done by t=5 (alone at 100/s). Then shared 50/s.
    # Second finishes at 5 + 250/50 = 10; first then has 250 left at
    # 100/s -> finishes at 12.5.
    assert first.value == pytest.approx(12.5)


def test_per_flow_cap_limits_single_flow():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=4.0, per_flow_cap=1.0)
    done = srv.submit(10.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)  # capped at 1/s despite 4 capacity


def test_per_flow_cap_allows_parallelism():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=4.0, per_flow_cap=1.0)
    events = [srv.submit(10.0) for _ in range(4)]
    sim.run()
    for ev in events:
        assert ev.value == pytest.approx(10.0)


def test_oversubscription_divides_evenly():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=2.0, per_flow_cap=1.0)
    events = [srv.submit(10.0) for _ in range(4)]
    sim.run()
    # 4 flows on 2 capacity -> 0.5/s each -> 20 s.
    for ev in events:
        assert ev.value == pytest.approx(20.0)


def test_zero_work_completes_instantly():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done = srv.submit(0.0)
    sim.run()
    assert done.value == 0.0
    assert sim.now == 0.0


def test_negative_work_rejected():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    with pytest.raises(HardwareError):
        srv.submit(-1.0)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        FairShareServer(sim, capacity=0)
    with pytest.raises(HardwareError):
        FairShareServer(sim, capacity=10, per_flow_cap=0)


def test_cumulative_tracks_partial_progress():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    srv.submit(1000.0, tags=("all", "rx"))
    sim.run(until=3.0)
    assert srv.cumulative("rx") == pytest.approx(300.0)
    assert srv.cumulative("all") == pytest.approx(300.0)
    assert srv.cumulative("other") == 0.0


def test_cumulative_multi_tag_attribution():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    srv.submit(200.0, tags=("in:a", "out:b"))
    srv.submit(200.0, tags=("in:a", "out:c"))
    sim.run()
    assert srv.cumulative("in:a") == pytest.approx(400.0)
    assert srv.cumulative("out:b") == pytest.approx(200.0)
    assert srv.cumulative("out:c") == pytest.approx(200.0)


def test_work_integral_equals_submitted_work():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=7.0)
    total = 0.0
    for w in (13.0, 5.5, 100.0, 0.25):
        srv.submit(w)
        total += w
    sim.run()
    assert srv.work_integral() == pytest.approx(total)


def test_large_flow_no_stall():
    """Floating-point residue on multi-GB flows must not stall the server."""
    sim = Simulator()
    srv = FairShareServer(sim, capacity=1e8)
    done = srv.submit(5e9)
    sim.run(until=done)
    assert sim.now == pytest.approx(50.0)


def test_infinite_capacity():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=float("inf"), per_flow_cap=10.0)
    done = srv.submit(100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)
