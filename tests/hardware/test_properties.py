"""Property-based tests: hardware conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cpu, Disk, Network
from repro.hardware.fairshare import FairShareServer
from repro.simkernel import Simulator

flows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),    # arrival time
        st.floats(min_value=0.1, max_value=5000.0),  # work
    ),
    min_size=1, max_size=15,
)


@settings(max_examples=40)
@given(flows, st.floats(min_value=0.5, max_value=1000.0))
def test_fairshare_conserves_work(jobs, capacity):
    """Total work served == total work submitted, whatever the contention."""
    sim = Simulator()
    srv = FairShareServer(sim, capacity=capacity)

    def submit_later(at, work):
        yield sim.timeout(at)
        yield srv.submit(work)

    for at, work in jobs:
        sim.process(submit_later(at, work))
    sim.run()
    assert srv.work_integral() == pytest.approx(sum(w for _, w in jobs))


@settings(max_examples=40)
@given(flows, st.floats(min_value=0.5, max_value=1000.0))
def test_fairshare_never_exceeds_capacity(jobs, capacity):
    """Each flow takes at least work/capacity seconds."""
    sim = Simulator()
    srv = FairShareServer(sim, capacity=capacity)
    results = []

    def submit_later(at, work):
        yield sim.timeout(at)
        ev = srv.submit(work)
        elapsed = yield ev
        results.append((work, elapsed))

    for at, work in jobs:
        sim.process(submit_later(at, work))
    sim.run()
    assert len(results) == len(jobs)
    for work, elapsed in results:
        assert elapsed >= work / capacity - 1e-6


@settings(max_examples=40)
@given(flows, st.integers(min_value=1, max_value=8))
def test_cpu_time_lower_bound(jobs, cores):
    """No task finishes faster than its cpu_seconds (per-core cap)."""
    sim = Simulator()
    cpu = Cpu(sim, cores=cores)
    results = []

    def run_later(at, work):
        yield sim.timeout(at)
        elapsed = yield cpu.compute(work)
        results.append((work, elapsed))

    for at, work in jobs:
        sim.process(run_later(at, work))
    sim.run()
    for work, elapsed in results:
        assert elapsed >= work - 1e-6
    assert cpu.busy_core_seconds() == pytest.approx(sum(w for _, w in jobs))


@settings(max_examples=30)
@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10))
def test_disk_counters_match_submitted_bytes(sizes):
    sim = Simulator()
    disk = Disk(sim, bandwidth=1e5, access_latency=0.001)
    for i, size in enumerate(sizes):
        if i % 2 == 0:
            disk.write(size)
        else:
            disk.read(size)
    sim.run()
    wrote = sum(s for i, s in enumerate(sizes) if i % 2 == 0)
    read = sum(s for i, s in enumerate(sizes) if i % 2 == 1)
    assert disk.bytes_written() == pytest.approx(wrote)
    assert disk.bytes_read() == pytest.approx(read)


@settings(max_examples=30)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.sampled_from(["a", "b", "c"]),
                          st.floats(min_value=1.0, max_value=1e5)),
                min_size=1, max_size=12))
def test_network_in_equals_out(transfers):
    """Over all hosts, bytes in == bytes out == bytes requested."""
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=1e4)
    net.connect("b", "c", bandwidth=2e4)
    expected = 0.0
    for src, dst, size in transfers:
        net.transfer(src, dst, size)
        if src != dst:
            expected += size
    sim.run()
    hosts = ["a", "b", "c"]
    total_in = sum(net.bytes_in(h) for h in hosts)
    total_out = sum(net.bytes_out(h) for h in hosts)
    assert total_in == pytest.approx(expected)
    assert total_out == pytest.approx(expected)
