"""Unit tests for the network topology and transfer model."""

import pytest

from repro.errors import HardwareError
from repro.hardware import Network
from repro.simkernel import Simulator


def test_direct_transfer_timing():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0)
    done = net.transfer("a", "b", 1000.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_latency_added_once():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0, latency=0.2)
    net.connect("b", "c", bandwidth=100.0, latency=0.3)
    done = net.transfer("a", "c", 100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.5 + 1.0)


def test_multi_hop_rated_at_bottleneck():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=1000.0)
    net.connect("b", "c", bandwidth=10.0)  # bottleneck
    done = net.transfer("a", "c", 100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_concurrent_transfers_share_bottleneck():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0)
    t1 = net.transfer("a", "b", 500.0)
    t2 = net.transfer("b", "a", 500.0)
    sim.run()
    assert t1.value == pytest.approx(10.0)
    assert t2.value == pytest.approx(10.0)


def test_shortest_path_routing():
    sim = Simulator()
    net = Network(sim)
    # Two routes a->d: a-b-d (2 hops) and a-c-e-d (3 hops).
    net.connect("a", "b", bandwidth=10.0)
    net.connect("b", "d", bandwidth=10.0)
    net.connect("a", "c", bandwidth=1000.0)
    net.connect("c", "e", bandwidth=1000.0)
    net.connect("e", "d", bandwidth=1000.0)
    path = net.route("a", "d")
    assert len(path) == 2


def test_route_errors():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=1.0)
    net.add_host("island")
    with pytest.raises(HardwareError, match="unknown host"):
        net.route("a", "nowhere")
    with pytest.raises(HardwareError, match="no route"):
        net.route("a", "island")


def test_self_link_rejected():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(HardwareError):
        net.connect("a", "a", bandwidth=1.0)


def test_per_host_counters():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0)
    net.connect("b", "c", bandwidth=100.0)
    net.transfer("a", "b", 100.0)
    net.transfer("a", "c", 200.0)
    sim.run()
    assert net.bytes_out("a") == pytest.approx(300.0)
    assert net.bytes_in("b") == pytest.approx(100.0)
    assert net.bytes_in("c") == pytest.approx(200.0)
    assert net.bytes_out("b") == 0.0


def test_counters_show_partial_progress():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0)
    net.transfer("a", "b", 1000.0)
    sim.run(until=4.0)
    assert net.bytes_in("b") == pytest.approx(400.0)


def test_zero_byte_transfer():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=100.0, latency=0.1)
    done = net.transfer("a", "b", 0.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.1)
