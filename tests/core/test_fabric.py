"""Integration tests for the replica fabric (deploy_fabric + store)."""

import pytest

from repro.core.fabric import FabricStack, deploy_fabric
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig
from repro.errors import OnServeError
from repro.grid.testbed import build_testbed
from repro.simkernel import Simulator
from repro.units import KB
from repro.workloads.executables import make_payload


def deploy(replicas=3, n_users=3, router=None, config=None, seed=0):
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim=sim, n_users=n_users)
    stack = sim.run(until=deploy_fabric(testbed, config or OnServeConfig(),
                                        replicas=replicas, router=router))
    return sim, testbed, stack


def publish(sim, testbed, stack, filename="route.bin", runtime="2"):
    payload = make_payload("fixed", size=int(KB(32)), runtime=runtime,
                           output_bytes="64")
    return sim.run(until=stack.portal.upload_and_generate(
        testbed.user_hosts[0], filename, payload))


def test_replicas_must_be_positive():
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=1)
    with pytest.raises(OnServeError):
        deploy_fabric(testbed, replicas=0)


def test_single_replica_passthrough_keeps_direct_endpoints():
    sim, testbed, stack = deploy(replicas=1)
    assert isinstance(stack, FabricStack)
    assert not stack.router.enabled
    assert stack.replica_hosts[0] is stack.appliance_host
    service = publish(sim, testbed, stack)
    # Router off: services publish the appliance's own endpoint and
    # nothing routes through the (attached-but-disabled) router.
    assert service.endpoint.startswith("soap://appliance/")
    result = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Route%"))
    assert result
    assert stack.router.requests_routed == 0


def test_fabric_publishes_router_endpoint():
    sim, testbed, stack = deploy(replicas=2)
    service = publish(sim, testbed, stack)
    assert service.endpoint == "soap://router/RouteService"
    row = stack.store.get_record("RouteService")
    assert row["endpoint"] == "soap://router/RouteService"
    assert row["replica"] == "appliance"


def test_deploy_on_primary_invoke_anywhere():
    sim, testbed, stack = deploy(replicas=3)
    publish(sim, testbed, stack)
    # Force materialization on a replica that did not generate the
    # service: the store row + DB executable are enough to rebuild.
    other = stack.onserves[2]
    assert "RouteService" not in other.services
    sim.run(until=sim.process(
        other.ensure_local_service("RouteService")))
    assert "RouteService" in other.services
    assert "RouteService" in other.soap_server.services()
    # And the routed client path works end to end.
    result = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[1], "Route%"))
    assert result
    assert stack.router.requests_routed > 0


def test_materialized_replica_serves_without_republishing(monkeypatch):
    sim, testbed, stack = deploy(replicas=2)
    publish(sim, testbed, stack)
    # Materialization must not touch UDDI: placement truth stays put.
    before = sim.run(until=stack.user_clients[0].call(
        stack.inquiry_endpoint(), "findService", pattern="Route%"))
    sim.run(until=sim.process(
        stack.onserves[1].ensure_local_service("RouteService")))
    after = sim.run(until=stack.user_clients[0].call(
        stack.inquiry_endpoint(), "findService", pattern="Route%"))
    assert before == after


def test_cross_replica_undeploy_invalidates_everywhere():
    sim, testbed, stack = deploy(replicas=3)
    publish(sim, testbed, stack)
    sim.run(until=sim.process(
        stack.onserves[1].ensure_local_service("RouteService")))
    # Undeploy through a replica that never materialized the service.
    sim.run(until=stack.onserves[2].undeploy_service("RouteService"))
    assert stack.store.get_record("RouteService") is None
    for onserve in stack.onserves:
        assert "RouteService" not in onserve.services
        assert "RouteService" not in onserve.soap_server.services()


def test_replacement_upload_drops_stale_materializations():
    sim, testbed, stack = deploy(replicas=2)
    publish(sim, testbed, stack)
    sim.run(until=sim.process(
        stack.onserves[1].ensure_local_service("RouteService")))
    assert "RouteService" in stack.onserves[1].services
    # Re-uploading the same filename republishes in place on the
    # primary; the store fan-out must drop replica 1's stale runtime.
    publish(sim, testbed, stack)
    assert "RouteService" not in stack.onserves[1].services
    assert "RouteService" not in stack.onserves[1].soap_server.services()
    # It materializes again on demand, from the fresh record.
    sim.run(until=sim.process(
        stack.onserves[1].ensure_local_service("RouteService")))
    assert "RouteService" in stack.onserves[1].services


def test_invocation_counts_are_fabric_wide():
    sim, testbed, stack = deploy(replicas=2)
    publish(sim, testbed, stack)
    for client in stack.user_clients[:2]:
        sim.run(until=discover_and_invoke(stack, client, "Route%"))
    row = stack.store.get_record("RouteService")
    assert row["invocations"] == 2


def test_enable_client_caches_is_idempotent():
    sim, testbed, stack = deploy(replicas=2)
    stack.enable_client_caches()
    listeners = [len(o.soap_server._undeploy_listeners)
                 for o in stack.onserves]
    caches = [client.cache for client in stack.user_clients]
    stack.enable_client_caches()
    # Second call replaces the caches instead of stacking hook layers.
    assert [len(o.soap_server._undeploy_listeners)
            for o in stack.onserves] == listeners
    assert all(client.cache is not None for client in stack.user_clients)
    assert all(client.cache is not old
               for client, old in zip(stack.user_clients, caches))


def test_remediation_drains_and_restarts_the_hot_replica():
    from types import SimpleNamespace
    from repro.telemetry.events import bus
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=1)
    stack = sim.run(until=deploy_fabric(testbed, OnServeConfig(),
                                        replicas=3, self_healing=True,
                                        lease_ttl=12.0,
                                        lease_check_interval=3.0))
    hot = [n for n in stack.router.replicas()
           if n != stack.onserves[0].replica][0]
    tower = SimpleNamespace(detector=SimpleNamespace(hot=hot))
    stack.enable_remediation(tower, cooldown=60.0)
    bus(sim).emit("slo.burn", layer="telemetry", slo="availability")
    bus(sim).emit("slo.burn", layer="telemetry", slo="availability")
    sim.run(until=sim.timeout(5.0))
    # One remediation despite two burn alerts (cooldown), and the hot
    # replica came back: drained out of the ring, then restarted in.
    assert [(name, action) for _, name, action
            in stack.remediations] == [(hot, "drain_restart")]
    assert hot in stack.router.replicas()
    reasons = [str(ev.get("reason", ""))
               for ev in bus(sim).events("router.rebalance")
               if ev.get("replica") == hot]
    assert "drain:slo_burn" in reasons and "revive" in reasons
    assert bus(sim).first("fabric.remediate") is not None
    # Detached, further burns do nothing.
    stack.disable_remediation()
    sim.run(until=sim.timeout(120.0))
    bus(sim).emit("slo.burn", layer="telemetry", slo="availability")
    sim.run(until=sim.timeout(5.0))
    assert len(stack.remediations) == 1
    stack.stop_self_healing()


def test_remediation_never_recycles_the_last_replica():
    from types import SimpleNamespace
    from repro.telemetry.events import bus
    sim = Simulator(seed=0)
    testbed = build_testbed(sim=sim, n_users=1)
    stack = sim.run(until=deploy_fabric(testbed, OnServeConfig(),
                                        replicas=2, self_healing=True))
    survivor, other = stack.router.replicas()[0], \
        stack.router.replicas()[1]
    stack.crash_replica(other)
    sim.run(until=sim.timeout(30.0))   # watchdog buries the crash
    assert stack.router.replicas() == [survivor]
    tower = SimpleNamespace(detector=SimpleNamespace(hot=survivor))
    stack.enable_remediation(tower, cooldown=1.0)
    bus(sim).emit("slo.burn", layer="telemetry", slo="availability")
    sim.run(until=sim.timeout(5.0))
    assert stack.remediations == []
    assert stack.router.replicas() == [survivor]
    stack.stop_self_healing()
