"""Service-naming edge cases: collisions, odd filenames, cache refresh."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.errors import SoapFault, UploadError
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    return tb, stack


def upload(tb, stack, name, payload=None, **kw):
    payload = payload or make_payload("echo", size=int(KB(1)))
    return tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], name, payload, **kw))


def test_colliding_names_refused(env):
    tb, stack = env
    upload(tb, stack, "hello.sh")
    with pytest.raises((UploadError, SoapFault), match="collide"):
        upload(tb, stack, "hello.py")
    # The original service and executable are untouched.
    assert stack.onserve.get_service("HelloService").executable_name == "hello.sh"
    assert stack.dbmanager.has_executable("hello.sh")
    assert not stack.dbmanager.has_executable("hello.py")


@pytest.mark.parametrize("filename,service", [
    ("my-cool_tool.v2.sh", "MyCoolToolV2Service"),
    ("UPPERCASE.EXE", "UppercaseService"),
    ("123-start.sh", "123StartService"),
    ("dots.in.name.tar.gz", "DotsInNameTarService"),
])
def test_odd_filenames_produce_valid_services(env, filename, service):
    tb, stack = env
    result = upload(tb, stack, filename)
    assert result.service_name == service
    assert service in stack.soap_server.services()
    assert stack.uddi.find_service(service)


def test_replacement_upload_invalidates_stage_cache(env):
    tb, stack = env
    stack.onserve.config.upload_cache = True
    upload(tb, stack, "job.sh",
           payload=make_payload("echo", size=int(KB(1))))
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    assert stack.agent.uploads == 1
    # Cache hit on the second invocation.
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    assert stack.agent.uploads == 1
    # Re-upload new bytes: the staged copy must be refreshed on next use.
    upload(tb, stack, "job.sh",
           payload=make_payload("echo", size=int(KB(2))))
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    assert stack.agent.uploads == 2
