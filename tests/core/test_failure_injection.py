"""Failure-injection tests on the full onServe stack."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.errors import HardwareError, SoapFault
from repro.grid import build_testbed
from repro.hardware.host import HostSpec
from repro.units import KB, MB, MBps, Mbps
from repro.workloads import make_payload


def stack_env(config=None, **testbed_kw):
    testbed_kw.setdefault("n_sites", 2)
    testbed_kw.setdefault("nodes_per_site", 2)
    testbed_kw.setdefault("cores_per_node", 4)
    testbed_kw.setdefault("appliance_uplink", Mbps(8))
    tb = build_testbed(**testbed_kw)
    stack = tb.sim.run(until=deploy_onserve(tb, config))
    return tb, stack


def upload(tb, stack, name="job.sh", payload=None, params=""):
    payload = payload or make_payload("fixed", size=int(KB(4)),
                                      runtime="30")
    return tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], name, payload, params_spec=params))


# ------------------------------------------------------------ session expiry

def test_agent_session_renews_between_invocations():
    config = OnServeConfig(session_renewal=60.0)
    tb, stack = stack_env(config)
    upload(tb, stack)
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    logons_after_first = tb.myproxy.logons_served
    # Wait past the renewal horizon; the next invocation re-authenticates.
    tb.sim.run(until=tb.sim.timeout(3600.0))
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    assert tb.myproxy.logons_served == logons_after_first + 1


def test_session_cached_within_renewal_window():
    tb, stack = stack_env(OnServeConfig(session_renewal=7200.0))
    upload(tb, stack)
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    tb.sim.run(until=discover_and_invoke(stack, client, "Job%"))
    assert tb.myproxy.logons_served == 1  # one logon served both


# ------------------------------------------------------------ watchdog

def test_watchdog_gives_up_on_everlasting_job():
    config = OnServeConfig(poll_interval=5.0, watchdog_timeout=60.0,
                           default_walltime=1800)
    tb, stack = stack_env(config)
    payload = make_payload("fixed", size=int(KB(2)), runtime="1200")
    upload(tb, stack, payload=payload)
    with pytest.raises(SoapFault, match="polling gave up"):
        tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                             "Job%"))
    report = stack.onserve.runtimes["JobService"].reports[0]
    assert "WatchdogTimeout" in report.error


# ------------------------------------------------------------ disk full

def test_appliance_disk_full_fails_upload():
    # The ~305 MB appliance image fits, but little room remains after it.
    tb, stack = stack_env(
        appliance_spec=HostSpec(cores=2, disk_bandwidth=MBps(25),
                                disk_capacity=330 * MB(1)))
    big = make_payload("fixed", size=int(60 * MB(1)), runtime="10")
    with pytest.raises(HardwareError, match="disk full"):
        tb.sim.run(until=stack.portal.upload_and_generate(
            tb.user_hosts[0], "big.bin", big))


# ------------------------------------------------------------ DB crash

def test_dbmanager_recovers_committed_executables_after_crash():
    tb, stack = stack_env()
    upload(tb, stack, name="keep.sh")
    # Crash: rebuild the manager from its WAL image.
    recovered = stack.dbmanager.recover_from_crash()
    assert recovered.has_executable("keep.sh")

    def reload():
        exe = yield recovered.load_executable("keep.sh")
        return exe

    exe = tb.sim.run(until=tb.sim.process(reload()))
    assert exe.payload.startswith(b"#!repro-exe")


def test_dbmanager_recovery_drops_torn_tail():
    tb, stack = stack_env()
    upload(tb, stack, name="first.sh")
    image_before = stack.dbmanager.db.wal.snapshot()
    upload(tb, stack, name="second.sh")
    # Crash with the second upload's tail torn off.
    torn = stack.dbmanager.db.wal.snapshot()[: len(image_before) + 11]
    from repro.db import Database, DbManager
    recovered = DbManager(stack.appliance_host,
                          db=Database.recover(torn))
    assert recovered.has_executable("first.sh")
    assert not recovered.has_executable("second.sh")


# ------------------------------------------------------------ grid-side failure

def test_node_failure_mid_invocation_surfaces_as_fault():
    config = OnServeConfig(poll_interval=5.0, watchdog_timeout=600.0)
    tb, stack = stack_env(config, n_sites=1)
    payload = make_payload("fixed", size=int(KB(2)), runtime="300",
                           output_bytes="1024")
    upload(tb, stack, payload=payload)
    site = tb.sites[0]

    def saboteur():
        yield tb.sim.timeout(60.0)
        # Kill every node the job might be on (count=1 -> first node).
        victims = site.fail_node(site.pool.nodes[0].name)
        assert victims  # the running job died

    tb.sim.process(saboteur())
    with pytest.raises(SoapFault):
        tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                             "Job%"))
