"""Tests for onServe site-selection policies."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.errors import OnServeError
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def run_invocations(policy, n=4):
    tb = build_testbed(n_sites=3, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(20))
    stack = tb.sim.run(until=deploy_onserve(
        tb, OnServeConfig(site_policy=policy)))
    payload = make_payload("fixed", size=int(KB(2)), runtime="5")
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "p.bin", payload))
    runtime = stack.onserve.runtimes["PService"]
    for _ in range(n):
        tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                             "P%"))
    return tb, [r.job_id.rsplit("-job-", 1)[0] for r in runtime.reports]


def test_policy_validation():
    with pytest.raises(OnServeError, match="site policy"):
        OnServeConfig(site_policy="nearest-pub")


def test_round_robin_rotates_sites():
    tb, sites = run_invocations("round_robin", n=4)
    ordered = sorted({s.name for s in tb.sites})
    assert sites[:3] == ordered  # one pass over all three sites
    assert sites[3] == ordered[0]


def test_best_prefers_idle_sites():
    # Sequential 5 s jobs: each finishes before the next starts, so the
    # ranking ties and "best" keeps the deterministic first pick.
    tb, sites = run_invocations("best", n=2)
    assert len(set(sites)) == 1


def test_random_is_seed_deterministic():
    _, a = run_invocations("random", n=4)
    _, b = run_invocations("random", n=4)
    assert a == b
    assert set(a) <= {"ncsa", "sdsc", "anl"}
