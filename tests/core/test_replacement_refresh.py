"""Replacement uploads must refresh every in-memory surface.

Two regressions around ``OnServe.generate_service``'s replacement path:

* the runtime kept serving the *old* :class:`ExecutableRecord` — later
  invocations validated against the stale parameter spec, ``describe``
  returned the old description, and the UDDI entry kept the old text;
* staged-copy eviction matched staging paths by *suffix*, so replacing
  an executable whose name is a path-suffix of another's (e.g.
  ``cyberaide/echo.sh`` vs ``echo.sh``) evicted the wrong entry.
"""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.cyberaide.jobspec import staged_path_for
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def stack_env(config=None):
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb, config))
    return tb, stack


def upload(tb, stack, name, payload=None, **kw):
    payload = payload or make_payload("echo", size=int(KB(2)))
    return tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], name, payload, **kw))


# -- stale in-memory record ------------------------------------------------


def test_replacement_refreshes_runtime_record():
    tb, stack = stack_env()
    upload(tb, stack, "hello.sh", params_spec="name:string",
           description="v1")
    runtime = stack.onserve.runtimes["HelloService"]
    assert [p.name for p in runtime.record.params] == ["name"]

    big = make_payload("echo", size=int(KB(8)))
    upload(tb, stack, "hello.sh", payload=big,
           params_spec="name:string, shout:boolean", description="v2")
    # The runtime serves the new record, not the one from upload #1.
    assert [p.name for p in runtime.record.params] == ["name", "shout"]
    assert runtime.record.description == "v2"
    assert runtime.record.size == len(big)


def test_replacement_new_parameter_is_accepted_end_to_end():
    tb, stack = stack_env()
    upload(tb, stack, "hello.sh", params_spec="name:string")
    upload(tb, stack, "hello.sh",
           params_spec="name:string, shout:boolean")
    client = stack.user_clients[0]
    # Pre-fix this faulted: the server dispatched against the stale
    # one-parameter spec and rejected ``shout`` as undeclared.
    out = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                               name="x", shout=True))
    assert out == "x\ntrue\n"


def test_replacement_narrowed_spec_rejects_old_parameter():
    tb, stack = stack_env()
    upload(tb, stack, "hello.sh", params_spec="name:string, extra:string")
    upload(tb, stack, "hello.sh", params_spec="name:string")
    client = stack.user_clients[0]
    with pytest.raises(Exception):  # stale spec would have accepted it
        tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                             name="x", extra="y"))


def test_replacement_refreshes_describe_and_uddi():
    tb, stack = stack_env()
    upload(tb, stack, "hello.sh", description="old words")
    upload(tb, stack, "hello.sh", description="new words")
    svc = stack.onserve.get_service("HelloService")
    assert stack.uddi.get_service(svc.uddi_service_key).description \
        == "new words"
    deployed = stack.soap_server.service("HelloService")
    assert deployed.description.name == "HelloService"
    client = stack.user_clients[0]
    out = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%"))
    # describe() rides the execute service; check via the runtime record.
    assert stack.onserve.runtimes["HelloService"].record.description \
        == "new words"


# -- exact-path staged eviction --------------------------------------------


def test_eviction_only_drops_the_exact_staged_path():
    tb, stack = stack_env()
    onserve = stack.onserve
    # Two executables whose staged paths are suffix-related.
    onserve.mark_staged("siteA", staged_path_for("echo.sh"), b"inner")
    onserve.mark_staged("siteA", staged_path_for("cyberaide/echo.sh"),
                        b"outer")
    upload(tb, stack, "cyberaide/echo.sh", payload=b"#!x v1")
    upload(tb, stack, "cyberaide/echo.sh", payload=b"#!x v2")
    # Replacing cyberaide/echo.sh dropped *its* staged copy only;
    # suffix matching used to evict echo.sh's entry too, because
    # "/scratch/cyberaide/echo.sh".endswith("/cyberaide/echo.sh").
    assert onserve.is_staged("siteA", staged_path_for("echo.sh"), b"inner")
    assert not onserve.is_staged("siteA",
                                 staged_path_for("cyberaide/echo.sh"),
                                 b"outer")


def test_suffix_named_replacement_keeps_other_service_cached():
    tb, stack = stack_env(OnServeConfig(upload_cache=True))
    upload(tb, stack, "echo.sh", params_spec="name:string")
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Echo%", name="a"))
    assert stack.agent.uploads == 1  # echo.sh is staged now

    # A different service whose name path-suffixes echo.sh's staged path.
    upload(tb, stack, "cyberaide/echo.sh", payload=b"#!x v1")
    upload(tb, stack, "cyberaide/echo.sh", payload=b"#!x v2")  # replacement

    tb.sim.run(until=discover_and_invoke(stack, client, "Echo%", name="b"))
    # The staged copy survived the unrelated replacement: no re-upload.
    assert stack.agent.uploads == 1
