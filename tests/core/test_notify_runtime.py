"""End-to-end push path: subscription detection, fallback, failover."""

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig, deploy_onserve
from repro.errors import OnServeError
from repro.faults import FaultSpec
from repro.grid import build_testbed
from repro.grid.notify import JOB_STATES_TABLE
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.units import KB, Mbps
from repro.workloads import make_payload

import pytest


def deploy(n_users=1, n_sites=1, **cfg_kw):
    sim = Simulator(seed=0)
    tb = build_testbed(sim=sim, n_sites=n_sites, nodes_per_site=2,
                       cores_per_node=4, appliance_uplink=Mbps(10),
                       n_users=n_users)
    cfg_kw.setdefault("notify", True)
    config = OnServeConfig(datapath=True, **cfg_kw)
    stack = sim.run(until=deploy_onserve(tb, config))
    return sim, tb, stack


def upload(sim, tb, stack):
    payload = make_payload("sleep", size=int(KB(32)))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "sleeper.bin", payload,
        params_spec="seconds:double"))


def test_push_completion_runs_zero_poll_rounds():
    sim, tb, stack = deploy()
    upload(sim, tb, stack)
    out = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=5.0))
    assert out == "slept\n"
    counts = bus(sim).counts()
    # Detection came by subscription: no batched or per-job polling.
    assert counts.get("poller.batch", 0) == 0
    assert counts.get("notify.publish", 0) >= 2  # pending + done
    detected = bus(sim).first("core.output_detected")
    assert detected.fields["pushed"] and detected.fields["polls"] == 0
    runtime = next(iter(stack.onserve.runtimes.values()))
    report = runtime.reports[-1]
    assert report.ok and report.polls == 0
    # The scheduler finished the job exactly one propagation before.
    finish = bus(sim).first("sched.finish",
                            job_id=detected.fields["job_id"])
    lag = detected.ts - finish.ts
    assert lag == pytest.approx(stack.onserve.config.notify_propagation)


def test_job_states_table_tracks_the_lifecycle():
    sim, tb, stack = deploy()
    upload(sim, tb, stack)
    sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=3.0))
    queue = stack.onserve.notify_queue
    rows = queue.db.select(JOB_STATES_TABLE, lambda r: True)
    assert len(rows) == 1  # upsert: one row per job, latest state
    assert rows[0]["state"] == "done" and rows[0]["terminal"]
    assert queue.depth == 0 and queue.delivered == queue.published
    # An intermediate state was pushed at submit (already "active" when
    # free cores start the job in the same frame) and the terminal one
    # closed the lifecycle.
    states = [ev.fields["state"]
              for ev in bus(sim).events(kind="notify.publish")]
    assert states[0] in ("pending", "active") and states[-1] == "done"


def test_incapable_site_falls_back_to_the_poll_mux():
    sim, tb, stack = deploy(notify_sites=())  # queue attached, no sites
    upload(sim, tb, stack)
    out = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=5.0))
    assert out == "slept\n"
    counts = bus(sim).counts()
    # The ladder stepped down one rung: batched polling did the work.
    assert counts.get("poller.batch", 0) > 0
    assert counts.get("notify.publish", 0) == 0
    queue = stack.onserve.notify_queue
    assert queue.published == 0
    assert queue.db.select(JOB_STATES_TABLE, lambda r: True) == []


def test_mixed_capability_splits_by_site():
    sim, tb, stack = deploy(n_users=2, n_sites=2,
                            notify_sites=("ncsa",),
                            site_policy="round_robin")
    upload(sim, tb, stack)
    results = []

    def invoke(i):
        def op():
            out = yield discover_and_invoke(
                stack, stack.user_clients[i], "Sleeper%",
                seconds=4.0 + 3.0 * i)
            results.append(out)

        return sim.process(op(), name=f"invoke:{i}")

    sim.run(until=sim.all_of([invoke(i) for i in range(2)]))
    assert results == ["slept\n"] * 2
    pushed = {ev.fields["job_id"].split("-job-")[0]: ev.fields["pushed"]
              for ev in bus(sim).events(kind="core.output_detected")}
    assert pushed == {"ncsa": True, "sdsc": False}
    # Lifecycle rows exist only where the capability does.
    queue = stack.onserve.notify_queue
    sites = {r["site"]
             for r in queue.db.select(JOB_STATES_TABLE, lambda r: True)}
    assert sites == {"ncsa"}


def test_lost_job_error_notification_drives_failover():
    sim, tb, stack = deploy(n_sites=2, site_policy="round_robin",
                            notify_sites=("*",))
    upload(sim, tb, stack)
    tb.install_faults([FaultSpec("gram.lost_job", max_fires=1)])
    out = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=4.0))
    assert out == "slept\n"
    counts = bus(sim).counts()
    # The notify-capable gatekeeper *pushed* the loss: JobNotFound came
    # from the error callback, not from a timed-out poll, and failover
    # landed the work on the other site.
    assert counts.get("core.failover", 0) == 1
    lost = [ev for ev in bus(sim).events(kind="notify.publish")
            if ev.fields["state"] == "lost"]
    assert len(lost) == 1
    queue = stack.onserve.notify_queue
    rows = queue.db.select(JOB_STATES_TABLE, lambda r: True)
    by_job = {r["job_id"]: r for r in rows}
    assert sorted(r["state"] for r in by_job.values()) == ["done", "lost"]


def test_config_validation_and_default_off():
    with pytest.raises(OnServeError):
        OnServeConfig(notify_propagation=0.0)
    assert OnServeConfig().notify is False
    # notify off -> no queue object on the deployed stack at all.
    sim, tb, stack = deploy(notify=False)
    assert stack.onserve.notify_queue is None
