"""Tests for the UDDI inquiry service and the management service."""

import pytest

from repro.core import deploy_onserve
from repro.core.invocation import discover_and_invoke
from repro.errors import SoapFault
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws.uddi_service import parse_binding_lines, parse_service_lines


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload, description="greets",
        params_spec="name:string"))
    return tb, stack


def call(tb, stack, service, operation, **params):
    client = stack.user_clients[0]
    endpoint = stack.soap_server.endpoint_for(service)
    return tb.sim.run(until=client.call(endpoint, operation, **params))


# ---------------------------------------------------------------- inquiry

def test_inquiry_find_service_over_soap(env):
    tb, stack = env
    raw = call(tb, stack, "UddiInquiry", "findService", pattern="Hello%")
    hits = parse_service_lines(raw)
    assert len(hits) == 1
    assert hits[0]["name"] == "HelloService"
    assert hits[0]["description"] == "greets"


def test_inquiry_get_bindings_over_soap(env):
    tb, stack = env
    raw = call(tb, stack, "UddiInquiry", "findService", pattern="Hello%")
    key = parse_service_lines(raw)[0]["key"]
    bindings = parse_binding_lines(
        call(tb, stack, "UddiInquiry", "getBindings", serviceKey=key))
    assert bindings[0]["access_point"] == "soap://appliance/HelloService"
    assert bindings[0]["wsdl_location"].endswith("?wsdl")


def test_inquiry_empty_result(env):
    tb, stack = env
    raw = call(tb, stack, "UddiInquiry", "findService", pattern="Ghost%")
    assert parse_service_lines(raw) == []


def test_inquiry_find_business(env):
    tb, stack = env
    raw = call(tb, stack, "UddiInquiry", "findBusiness", pattern="Cyber%")
    assert "Cyberaide onServe" in raw


def test_inquiry_service_count(env):
    tb, stack = env
    assert call(tb, stack, "UddiInquiry", "serviceCount") == 1


def test_inquiry_bad_key_faults(env):
    tb, stack = env
    with pytest.raises(SoapFault):
        call(tb, stack, "UddiInquiry", "getBindings", serviceKey="uuid:nope")


def test_discovery_generates_inquiry_traffic(env):
    tb, stack = env
    inquiry_before = None
    # Find the deployed inquiry wrapper and count its invocations.
    svc = stack.soap_server.service("UddiInquiry")
    before = svc.invocations
    tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                         "Hello%", name="x"))
    assert svc.invocations >= before + 2  # findService + getBindings


# ---------------------------------------------------------------- management

def test_management_list_services(env):
    tb, stack = env
    raw = call(tb, stack, "OnServeManagement", "listServices")
    assert raw.startswith("HelloService|soap://appliance/HelloService|"
                          "hello.sh|0")


def test_management_describe(env):
    tb, stack = env
    tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                         "Hello%", name="x"))
    detail = call(tb, stack, "OnServeManagement", "describeService",
                  name="HelloService")
    assert "executable   : hello.sh" in detail
    assert "invocations  : 1 (1 ok)" in detail


def test_management_describe_unknown_faults(env):
    tb, stack = env
    with pytest.raises(SoapFault, match="no service"):
        call(tb, stack, "OnServeManagement", "describeService", name="Nope")


def test_management_undeploy_over_soap(env):
    tb, stack = env
    assert call(tb, stack, "OnServeManagement", "undeployService",
                name="HelloService") is True
    assert "HelloService" not in stack.soap_server.services()
    assert stack.uddi.find_service("HelloService") == []
    assert call(tb, stack, "OnServeManagement", "listServices") == ""


def test_management_list_executables(env):
    tb, stack = env
    raw = call(tb, stack, "OnServeManagement", "listExecutables")
    name, size, compressed, stored_at = raw.split("|")
    assert name == "hello.sh"
    assert int(size) == 2048
    assert 0 < int(compressed)
