"""Unit tests for the ServiceStateStore (externalized service state)."""

from repro.core.datastructures import GeneratedService
from repro.core.registry import ServiceStateStore
from repro.db import DbManager
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator


def make_store():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "appliance", net, HostSpec(cores=2))
    return sim, ServiceStateStore(DbManager(host).db)


def make_service(name="HelloService", invocations=0):
    service = GeneratedService(
        service_name=name, executable_name="hello.sh",
        endpoint=f"soap://appliance/{name}",
        wsdl_location=f"soap://appliance/{name}?wsdl",
        uddi_service_key="S-1", uddi_binding_key="B-1",
        archive_size=1024, created_at=1.5)
    service.invocations = invocations
    return service


def test_record_roundtrip_and_rehydrate():
    sim, store = make_store()
    store.put_record(make_service(invocations=3), replica="appliance")
    row = store.get_record("HelloService")
    assert row["replica"] == "appliance"
    back = ServiceStateStore.rehydrate(row)
    assert back.service_name == "HelloService"
    assert back.endpoint == "soap://appliance/HelloService"
    assert back.archive_size == 1024
    assert back.created_at == 1.5
    assert back.invocations == 3


def test_put_record_replaces_in_place():
    sim, store = make_store()
    store.put_record(make_service(), replica="appliance")
    replacement = make_service()
    replacement.archive_size = 2048
    store.put_record(replacement, replica="appliance02")
    assert store.record_count() == 1
    row = store.get_record("HelloService")
    assert row["archive_size"] == 2048
    assert row["replica"] == "appliance02"


def test_all_records_sorted_by_name():
    sim, store = make_store()
    for name in ("Zeta", "Alpha", "Mid"):
        store.put_record(make_service(name), replica="appliance")
    assert [r["service_name"] for r in store.all_records()] == \
        ["Alpha", "Mid", "Zeta"]


def test_remove_fans_out_to_other_replicas_only():
    sim, store = make_store()
    fired = []
    store.subscribe("a", lambda n: fired.append(("a", "rm", n)),
                    lambda n: fired.append(("a", "re", n)))
    store.subscribe("b", lambda n: fired.append(("b", "rm", n)),
                    lambda n: fired.append(("b", "re", n)))
    store.put_record(make_service(), replica="a")
    row = store.remove_record("HelloService", origin="a")
    assert row["service_name"] == "HelloService"
    assert fired == [("b", "rm", "HelloService")]
    # Removing an absent record neither returns a row nor fans out.
    fired.clear()
    assert store.remove_record("HelloService", origin="a") is None
    assert fired == []


def test_republish_fans_out_minus_origin():
    sim, store = make_store()
    fired = []
    store.subscribe("a", lambda n: fired.append("a"), lambda n: fired.append("a-re"))
    store.subscribe("b", lambda n: fired.append("b"), lambda n: fired.append("b-re"))
    store.record_republished("HelloService", origin="b")
    assert fired == ["a-re"]
    store.unsubscribe("a")
    fired.clear()
    store.record_republished("HelloService", origin="b")
    assert fired == []


def test_bump_invocations_persists():
    sim, store = make_store()
    store.put_record(make_service(), replica="a")
    assert store.bump_invocations("HelloService") == 1
    assert store.bump_invocations("HelloService") == 2
    assert store.get_record("HelloService")["invocations"] == 2
    assert store.bump_invocations("Ghost") == 0


def test_staged_copies_are_fabric_global():
    sim, store = make_store()
    assert store.staged_digest("siteA", "/tmp/hello") is None
    store.mark_staged("siteA", "/tmp/hello", "d1", replica="a")
    store.mark_staged("siteB", "/tmp/hello", "d1", replica="b")
    store.mark_staged("siteA", "/tmp/other", "d2", replica="a")
    # Visible regardless of which replica staged the copy.
    assert store.staged_digest("siteB", "/tmp/hello") == "d1"
    # Restaging the same (site, path) replaces the digest.
    store.mark_staged("siteA", "/tmp/hello", "d9", replica="b")
    assert store.staged_digest("siteA", "/tmp/hello") == "d9"
    # A replacement upload evicts every site's copy of that path.
    assert store.evict_staged("/tmp/hello") == 2
    assert store.staged_digest("siteA", "/tmp/hello") is None
    assert store.staged_copies() == [("siteA", "/tmp/other", "d2")]


def test_agent_leases_keyed_by_replica():
    sim, store = make_store()
    assert store.get_lease("a", "onserve") is None
    store.put_lease("a", "onserve", "sess-1", expires=100.0)
    store.put_lease("b", "onserve", "sess-2", expires=200.0)
    assert store.get_lease("a", "onserve") == ("sess-1", 100.0)
    assert store.get_lease("b", "onserve") == ("sess-2", 200.0)
    # Dropping with a stale session id keeps the current lease.
    store.drop_lease("a", "onserve", session="stale")
    assert store.get_lease("a", "onserve") == ("sess-1", 100.0)
    store.drop_lease("a", "onserve", session="sess-1")
    assert store.get_lease("a", "onserve") is None
    # Dropping without a session id revokes unconditionally.
    store.drop_lease("b", "onserve")
    assert store.get_lease("b", "onserve") is None


def test_counters_monotonic_and_seed_once():
    sim, store = make_store()
    store.seed_counters()
    first = store.next_invocation_id()
    assert first == 1
    assert store.next_invocation_id() == 2
    # Tag sequence shares the seed but advances independently.
    assert store.next_tag_seq() == 1
    assert store.next_tag_seq() == 2
    # Re-seeding later must never rewind ids already handed out.
    store.seed_counters()
    assert store.next_invocation_id() == 3
    assert store.next_tag_seq() == 3


def test_shared_store_single_schema():
    """Two replicas over one Database share one set of tables."""
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "appliance", net, HostSpec(cores=2))
    db = DbManager(host).db
    store_a = ServiceStateStore(db)
    store_b = ServiceStateStore(db)  # idempotent table creation
    store_a.put_record(make_service(), replica="a")
    assert store_b.get_record("HelloService") is not None


def test_member_lease_lifecycle_and_epochs():
    sim, store = make_store()
    assert store.members() == []
    store.renew_member("a", expires=10.0)
    store.renew_member("b", expires=20.0)
    row = store.member("a")
    assert row["status"] == "up" and row["expires"] == 10.0
    first_epoch = row["epoch"]
    # Renewal refreshes the expiry without bumping the incarnation.
    store.renew_member("a", expires=15.0)
    renewed = store.member("a")
    assert renewed["expires"] == 15.0
    assert renewed["epoch"] == first_epoch
    # Drop + reappear = a new incarnation: the epoch must advance.
    store.drop_member("a")
    assert store.member("a") is None
    store.renew_member("a", expires=30.0)
    assert store.member("a")["epoch"] > first_epoch


def test_expired_members_and_draining():
    sim, store = make_store()
    store.renew_member("a", expires=10.0)
    store.renew_member("b", expires=20.0)
    store.renew_member("c", expires=5.0)
    assert store.expired_members(4.9) == []
    assert store.expired_members(10.0) == ["a", "c"]  # lapse inclusive
    assert store.expired_members(99.0) == ["a", "b", "c"]
    store.mark_draining("b")
    assert store.member("b")["status"] == "draining"
    # Draining does not exempt a replica from lease expiry.
    assert "b" in store.expired_members(99.0)
    # Dropping an unknown member is a no-op, not an error.
    store.drop_member("ghost")
    assert [r["replica"] for r in store.members()] == ["a", "b", "c"]


def test_dedup_records_once_and_flags_duplicates():
    sim, store = make_store()
    key = "req-1|RouteService.invoke"
    assert store.dedup_result(key) is None
    assert store.dedup_count() == 0
    assert store.record_dedup(key, "replica1", "out.dat", now=3.0)
    assert store.dedup_result(key) == "out.dat"
    assert store.dedup_count() == 1
    # A second completion of the same key is the double-execution the
    # chaos gate hunts for: refused, and counted.
    assert store.dedup_duplicates == 0
    assert not store.record_dedup(key, "replica2", "other.dat", now=4.0)
    assert store.dedup_result(key) == "out.dat"
    assert store.dedup_count() == 1
    assert store.dedup_duplicates == 1
    # Distinct keys never collide.
    assert store.record_dedup("req-2|RouteService.invoke", "replica2",
                              "out2.dat", now=5.0)
    assert store.dedup_count() == 2
