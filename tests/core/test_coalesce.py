"""Single-flight coalescing: unit semantics + the staged-transfer path."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.core.coalesce import SingleFlight
from repro.grid import build_testbed
from repro.simkernel.kernel import Simulator
from repro.units import KB, KBps
from repro.workloads import make_payload


# -- unit: SingleFlight on a bare kernel -----------------------------------


def slow_op(sim, log, value="v", delay=5.0, boom=None):
    def factory():
        log.append(("run", sim.now))
        yield sim.timeout(delay)
        if boom is not None:
            raise boom
        return value

    return factory


def test_disabled_is_a_pure_passthrough():
    sim = Simulator(seed=0)
    flights = SingleFlight(sim, enabled=False)
    log = []

    def caller():
        out = yield from flights.do("k", slow_op(sim, log), group="g")
        return out

    assert sim.run(until=sim.process(caller())) == "v"
    assert log == [("run", 0.0)]
    assert flights.stats() == {}  # no flights even recorded


def test_concurrent_callers_share_one_flight():
    sim = Simulator(seed=0)
    flights = SingleFlight(sim, enabled=True)
    log, results = [], []

    def caller(i):
        if i:
            yield sim.timeout(1.0 * i)  # arrive while the leader runs
        out = yield from flights.do("k", slow_op(sim, log), group="g")
        results.append((i, sim.now, out))

    procs = [sim.process(caller(i)) for i in range(3)]
    sim.run(until=sim.all_of(procs))
    assert log == [("run", 0.0)]  # the factory ran exactly once
    assert results == [(0, 5.0, "v"), (1, 5.0, "v"), (2, 5.0, "v")]
    assert flights.stats() == {"g": {"flights": 1, "joins": 2}}
    assert not flights.inflight("k")


def test_leader_failure_reaches_every_joiner():
    sim = Simulator(seed=0)
    flights = SingleFlight(sim, enabled=True)
    log, outcomes = [], []

    def caller(i):
        if i:
            yield sim.timeout(1.0)
        try:
            yield from flights.do(
                "k", slow_op(sim, log, boom=RuntimeError("down")), group="g")
        except RuntimeError as exc:
            outcomes.append((i, str(exc)))

    procs = [sim.process(caller(i)) for i in range(2)]
    sim.run(until=sim.all_of(procs))
    assert outcomes == [(0, "down"), (1, "down")]
    assert not flights.inflight("k")  # a failed flight is over


def test_landed_flights_are_not_memoised():
    sim = Simulator(seed=0)
    flights = SingleFlight(sim, enabled=True)
    log = []

    def caller():
        first = yield from flights.do("k", slow_op(sim, log), group="g")
        second = yield from flights.do("k", slow_op(sim, log), group="g")
        return (first, second)

    assert sim.run(until=sim.process(caller())) == ("v", "v")
    assert len(log) == 2  # sequential callers each run the operation
    assert flights.stats() == {"g": {"flights": 2, "joins": 0}}


def test_distinct_keys_fly_separately():
    sim = Simulator(seed=0)
    flights = SingleFlight(sim, enabled=True)
    log = []

    def caller(key):
        return (yield from flights.do(key, slow_op(sim, log), group="g"))

    procs = [sim.process(caller(k)) for k in ("a", "b")]
    sim.run(until=sim.all_of(procs))
    assert len(log) == 2
    assert flights.stats() == {"g": {"flights": 2, "joins": 0}}


# -- integration: the invocation hot path ----------------------------------


def coalesced_stack(n_users=4):
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=KBps(200), n_users=n_users)
    stack = tb.sim.run(until=deploy_onserve(
        tb, OnServeConfig(coalesce=True, upload_cache=True)))
    payload = make_payload("echo", size=int(KB(64)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload, params_spec="name:string"))
    return tb, stack


def test_single_flight_staging_one_transfer_per_site_path():
    tb, stack = coalesced_stack(n_users=4)
    uploads0 = stack.agent.uploads
    procs = [discover_and_invoke(stack, stack.user_clients[i], "Hello%",
                                 name=f"u{i}")
             for i in range(4)]
    tb.sim.run(until=tb.sim.all_of(procs))
    assert sorted(p.value for p in procs) == [f"u{i}\n" for i in range(4)]
    # Exactly one GridFTP transfer for the shared (site, path): the
    # leader staged it, the three joiners coalesced onto that flight
    # (or hit the staged cache if they arrived after it landed).
    assert stack.agent.uploads - uploads0 == 1
    stats = stack.onserve.flights.stats()
    assert stats["staging"]["flights"] == 1
    coalesced = (stats["staging"]["joins"]
                 + stack.onserve.bus.counts().get("cache.hit", 0))
    assert coalesced >= 3


def test_concurrent_invocations_share_db_fetch_and_logon():
    tb, stack = coalesced_stack(n_users=4)
    procs = [discover_and_invoke(stack, stack.user_clients[i], "Hello%",
                                 name=f"u{i}")
             for i in range(4)]
    tb.sim.run(until=tb.sim.all_of(procs))
    stats = stack.onserve.flights.stats()
    # One DB decompression for the wave; everyone else joined it.
    assert stats["db-load"]["flights"] == 1
    assert stats["db-load"]["joins"] == 3
    # The appliance held one agent session across all four requests
    # (deploy_onserve itself logs on during startup checks).
    auths = stack.onserve.bus.counts().get("agent.auth", 0)
    assert auths <= 2


def test_coalescing_defaults_off():
    sim_stack = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4)
    stack = sim_stack.sim.run(until=deploy_onserve(sim_stack))
    assert stack.onserve.config.coalesce is False
    assert stack.onserve.flights.enabled is False
