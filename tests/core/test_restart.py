"""Appliance restart: redeploy over recovered data, services come back."""

import pytest

from repro.core import deploy_onserve, discover_and_invoke
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def test_redeploy_restores_services_from_recovered_db():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload, description="greets",
        params_spec="name:string"))
    tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                         "Hello%", name="before"))

    # --- crash: lose every in-memory component; only the WAL survives.
    recovered_db = stack.dbmanager.recover_from_crash()
    stack.fabric.unregister(stack.soap_server)  # the old container died

    stack2 = tb.sim.run(until=deploy_onserve(tb, dbmanager=recovered_db))
    # The service is back without any re-upload...
    assert "HelloService" in stack2.soap_server.services()
    hits = stack2.uddi.find_service("HelloService")
    assert len(hits) == 1
    # ...with its metadata intact...
    svc = stack2.onserve.get_service("HelloService")
    assert svc.executable_name == "hello.sh"
    runtime = stack2.onserve.runtimes["HelloService"]
    assert [p.name for p in runtime.record.params] == ["name"]
    assert runtime.record.description == "greets"
    # ...and it is invocable end to end.
    out = tb.sim.run(until=discover_and_invoke(
        stack2, stack2.user_clients[0], "Hello%", name="after"))
    assert out == "after\n"
    # History from before the crash also survived.
    rows = stack2.dbmanager.db.select("invocations")
    assert len(rows) >= 2  # pre-crash + post-restart invocations


def test_restore_services_is_idempotent():
    tb = build_testbed(n_sites=1, nodes_per_site=1, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("echo", size=int(KB(1)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "a.sh", payload))
    restored = tb.sim.run(until=stack.onserve.restore_services())
    assert restored == []  # everything already live


def test_fresh_deploy_has_no_restore_work():
    tb = build_testbed(n_sites=1, nodes_per_site=1, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    restored = tb.sim.run(until=stack.onserve.restore_services())
    assert restored == []
