"""Transient-vs-permanent classification of the whole error hierarchy.

Table-driven on purpose: adding a new error class without deciding its
``retryable`` classification fails ``test_every_exported_error_is_in_
the_table`` — the failover machinery acts on this flag, so "unclassified"
is not an acceptable state.
"""

import pytest

import repro.errors as errors
from repro.errors import (
    ReproError, SoapFault, error_class, is_retryable, root_cause_name,
)

#: Every exported ReproError subclass and its agreed classification.
#: True = transient (retry / failover may fix it); False = permanent.
CLASSIFICATION = {
    "ReproError": False,
    "SimulationError": False,
    "CausalityError": False,
    "HardwareError": False,
    "DatabaseError": False,
    "SqlError": False,
    "TransactionError": True,        # aborted commit: replay it
    "RecordNotFound": False,
    "SecurityError": False,
    "CertificateInvalid": False,
    "CredentialExpired": True,       # re-logon via MyProxy
    "AuthenticationFailed": False,
    "WsError": False,
    "SoapFault": None,               # delegates to its root cause
    "WsdlError": False,
    "UddiError": False,
    "ServiceNotFound": False,
    "ReplicaDown": True,             # fail over to a survivor
    "ServerOverloaded": True,        # transient load: back off, repeat
    "GridError": False,
    "RslError": False,
    "JobError": True,                # resubmission may well succeed
    "JobNotFound": True,             # lost by the LRM: resubmit
    "WalltimeExceeded": False,       # longer wall time won't appear
    "SubmissionRefused": True,       # transient LRM rejection
    "TransferError": True,           # data channels come back
    "ApplianceError": False,
    "OnServeError": False,
    "ServiceBuildError": False,
    "UploadError": False,
    "InvocationError": False,
    "WatchdogTimeout": False,
}


def exported_error_classes():
    return sorted(
        name for name in errors.__all__
        if isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), ReproError))


def test_every_exported_error_is_in_the_table():
    assert exported_error_classes() == sorted(CLASSIFICATION)


@pytest.mark.parametrize("name", sorted(CLASSIFICATION))
def test_classification(name):
    cls = getattr(errors, name)
    expected = CLASSIFICATION[name]
    if name == "SoapFault":
        # Not a class attribute: SoapFault answers per instance, from
        # the root-cause name carried in its detail (tested below).
        assert isinstance(vars(cls)["retryable"], property)
        return
    assert cls.retryable is expected
    assert is_retryable(cls("synthetic")) is expected


def test_error_class_lookup():
    assert error_class("TransferError") is errors.TransferError
    assert error_class("NoSuchError") is None


def test_soap_fault_delegates_to_root_cause():
    transient = SoapFault("Server", "boom", detail="TransferError: boom")
    assert transient.root_cause == "TransferError"
    assert transient.retryable and is_retryable(transient)
    permanent = SoapFault("Server", "bad", detail="RslError: bad")
    assert not permanent.retryable and not is_retryable(permanent)


def test_soap_fault_transient_detail_table():
    # Non-ReproError root causes the middleware still knows are safe
    # to retry (grid-side admission control).
    fault = SoapFault("Server", "full", detail="AdmissionReject: queue")
    assert fault.retryable


def test_soap_fault_without_detail_is_permanent():
    bare = SoapFault("Server.Internal", "mystery")
    assert bare.root_cause == "Server.Internal"
    assert not bare.retryable


def test_root_cause_name_sees_through_wrapping():
    assert root_cause_name(errors.JobError("x")) == "JobError"
    assert root_cause_name(
        SoapFault("Server", "x", detail="JobError: x")) == "JobError"
    assert root_cause_name(ValueError("x")) == "ValueError"


def test_non_repro_exceptions_are_never_retryable():
    assert not is_retryable(ValueError("x"))
    assert not is_retryable(KeyError("x"))
