"""Tests for downloadable client bundles (generated stub source)."""

import io
import zipfile

import pytest

from repro.core import deploy_onserve
from repro.errors import SoapFault
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws.client import generate_stub_source
from repro.ws.wsdl import generate_wsdl
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=1, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", payload,
        params_spec="name:string, times:int"))
    return tb, stack


def test_generated_source_is_valid_python():
    svc = ServiceDescription("Demo", [
        OperationSpec("execute", [ParameterSpec("x", "xsd:int")],
                      "xsd:string"),
        OperationSpec("ping", [], "xsd:string"),
    ])
    source = generate_stub_source(generate_wsdl(svc, "soap://h/Demo"))
    namespace = {}
    exec(compile(source, "demo_stub.py", "exec"), namespace)
    stub_cls = namespace["DemoStub"]
    assert stub_cls.ENDPOINT == "soap://h/Demo"
    assert "execute" in stub_cls.__dict__
    assert "ping" in stub_cls.__dict__


def test_bundle_download_over_soap(env):
    tb, stack = env
    client = stack.user_clients[0]
    data = tb.sim.run(until=client.call(
        stack.soap_server.endpoint_for("OnServeManagement"),
        "clientBundle", name="HelloService"))
    with zipfile.ZipFile(io.BytesIO(data)) as bundle:
        names = set(bundle.namelist())
        assert names == {"helloservice_stub.py", "HelloService.wsdl",
                         "README.txt"}
        source = bundle.read("helloservice_stub.py").decode()
        wsdl = bundle.read("HelloService.wsdl")
    assert "class HelloServiceStub:" in source
    assert b"definitions" in wsdl


def test_downloaded_stub_actually_works(env):
    """The full §VIII.D.4 path: download the bundle, exec the stub,
    invoke the grid through it."""
    tb, stack = env
    client = stack.user_clients[0]
    data = tb.sim.run(until=client.call(
        stack.soap_server.endpoint_for("OnServeManagement"),
        "clientBundle", name="HelloService"))
    with zipfile.ZipFile(io.BytesIO(data)) as bundle:
        source = bundle.read("helloservice_stub.py").decode()
    namespace = {}
    exec(compile(source, "helloservice_stub.py", "exec"), namespace)
    stub = namespace["HelloServiceStub"](client)
    out = tb.sim.run(until=stub.execute(name="bundled", times=2))
    assert out == "bundled\n2\n"


def test_bundle_for_unknown_service_faults(env):
    tb, stack = env
    client = stack.user_clients[0]
    with pytest.raises(SoapFault, match="no service"):
        tb.sim.run(until=client.call(
            stack.soap_server.endpoint_for("OnServeManagement"),
            "clientBundle", name="Ghost"))
