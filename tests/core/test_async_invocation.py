"""Tests for asynchronous invocation (submit / poll / result)."""

import pytest

from repro.core import OnServeConfig, deploy_onserve
from repro.core.invocation import discover_service
from repro.errors import SoapFault
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws.client import generate_stub


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("fixed", size=int(KB(2)), runtime="120",
                           output_bytes="512")
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "slow.sh", payload, params_spec=""))
    client = stack.user_clients[0]
    return tb, stack, client


def stub_for(tb, stack, client, pattern="Slow%"):
    def flow():
        _name, endpoint, _ = yield discover_service(stack, client, pattern)
        document = yield client.fetch_wsdl(endpoint)
        return generate_stub(document)(client)

    return tb.sim.run(until=tb.sim.process(flow()))


def test_submit_returns_immediately(env):
    tb, stack, client = env
    stub = stub_for(tb, stack, client)
    t0 = tb.sim.now
    ticket = tb.sim.run(until=stub.submit())
    assert ticket.startswith("tkt-")
    # Submission is near-instant; the 120 s job runs in the background.
    assert tb.sim.now - t0 < 5.0


def test_poll_then_result_roundtrip(env):
    tb, stack, client = env
    stub = stub_for(tb, stack, client)
    ticket = tb.sim.run(until=stub.submit())
    assert tb.sim.run(until=stub.poll(ticket=ticket)) is False

    def wait_and_collect():
        while True:
            done = yield stub.poll(ticket=ticket)
            if done:
                break
            yield tb.sim.timeout(15.0)
        return (yield stub.result(ticket=ticket))

    output = tb.sim.run(until=tb.sim.process(wait_and_collect()))
    assert output.startswith("fixed-profile")
    # The ticket is consumed.
    with pytest.raises(SoapFault, match="unknown ticket"):
        tb.sim.run(until=stub.result(ticket=ticket))


def test_result_before_completion_faults(env):
    tb, stack, client = env
    stub = stub_for(tb, stack, client)
    ticket = tb.sim.run(until=stub.submit())
    with pytest.raises(SoapFault, match="still running"):
        tb.sim.run(until=stub.result(ticket=ticket))


def test_failed_async_job_faults_at_result(env):
    tb, stack, client = env
    stack.onserve.config.default_walltime = 30  # job needs 120 s -> killed
    stack.onserve.config.watchdog_timeout = 300.0
    stack.onserve.config.poll_interval = 5.0
    stub = stub_for(tb, stack, client)
    ticket = tb.sim.run(until=stub.submit())
    tb.sim.run(until=tb.sim.timeout(400.0))
    assert tb.sim.run(until=stub.poll(ticket=ticket)) is True
    with pytest.raises(SoapFault, match="failed"):
        tb.sim.run(until=stub.result(ticket=ticket))


def test_concurrent_async_submissions(env):
    tb, stack, client = env
    stub = stub_for(tb, stack, client)
    tickets = [tb.sim.run(until=stub.submit()) for _ in range(3)]
    assert len(set(tickets)) == 3

    def collect(ticket):
        while not (yield stub.poll(ticket=ticket)):
            yield tb.sim.timeout(15.0)
        return (yield stub.result(ticket=ticket))

    procs = [tb.sim.process(collect(t)) for t in tickets]
    done = tb.sim.all_of(procs)
    results = tb.sim.run(until=done)
    assert all(v.startswith("fixed-profile") for v in results.values())
    # All three ran as separate grid jobs.
    history = stack.dbmanager.db.find_eq("invocations", "service",
                                         "SlowService")
    assert len(history) == 3
