"""Unit tests for core building blocks: datastructures, watchdog, builder."""

import zipfile
import io

import pytest

from repro.core.datastructures import (
    ExecutableRecord, parse_params_spec, service_name_for,
)
from repro.core.service_builder import ServiceBuilder
from repro.core.watchdog import Watchdog, poll_until
from repro.errors import OnServeError, WatchdogTimeout, WsError
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.ws import SoapFabric, SoapServer


# ---------------------------------------------------------------- datastructures

def test_parse_params_spec():
    params = parse_params_spec("name:string, count:int, x:double, ok:boolean")
    assert [(p.name, p.xsd_type) for p in params] == [
        ("name", "xsd:string"), ("count", "xsd:int"),
        ("x", "xsd:double"), ("ok", "xsd:boolean")]
    assert parse_params_spec("") == []
    assert parse_params_spec("   ") == []


def test_parse_params_spec_errors():
    with pytest.raises(OnServeError, match="name:type"):
        parse_params_spec("justname")
    with pytest.raises(OnServeError, match="unknown parameter type"):
        parse_params_spec("x:blob")
    with pytest.raises(WsError):
        parse_params_spec("bad name:string")


def test_service_name_for():
    assert service_name_for("hello.sh") == "HelloService"
    assert service_name_for("word-count_2.py") == "WordCount2Service"
    assert service_name_for("UPPER.exe") == "UpperService"
    with pytest.raises(OnServeError):
        service_name_for("...")


def test_executable_record_validation():
    with pytest.raises(OnServeError):
        ExecutableRecord("", "", [], 0, "u", 0.0)


# ---------------------------------------------------------------- watchdog

def test_watchdog_passes_through_fast_result():
    sim = Simulator()

    def quick():
        yield sim.timeout(5)
        return "fast"

    dog = Watchdog(sim, timeout=100)
    assert sim.run(until=dog.guard(sim.process(quick()))) == "fast"
    assert dog.timeouts_fired == 0


def test_watchdog_kills_slow_process():
    sim = Simulator()
    interrupted = []

    def slow():
        try:
            yield sim.timeout(1000)
        except BaseException as exc:
            interrupted.append(type(exc).__name__)
            raise

    dog = Watchdog(sim, timeout=10)
    with pytest.raises(WatchdogTimeout, match="exceeded 10"):
        sim.run(until=dog.guard(sim.process(slow()), label="slow-op"))
    sim.run()
    assert interrupted == ["Interrupt"]
    assert dog.timeouts_fired == 1


def test_watchdog_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Watchdog(sim, timeout=0)


def test_poll_until_accepts_and_counts():
    sim = Simulator()
    state = {"n": 0}

    def poll():
        def p():
            yield sim.timeout(0.5)
            state["n"] += 1
            return state["n"]
        return sim.process(p())

    result, polls = sim.run(until=poll_until(
        sim, poll, accept=lambda v: v >= 3, interval=10.0, timeout=1000.0))
    assert result == 3
    assert polls == 3
    assert sim.now >= 20.0  # two sleep intervals


def test_poll_until_times_out():
    sim = Simulator()

    def poll():
        def p():
            yield sim.timeout(0.1)
            return False
        return sim.process(p())

    with pytest.raises(WatchdogTimeout, match="gave up"):
        sim.run(until=poll_until(sim, poll, accept=lambda v: v,
                                 interval=5.0, timeout=20.0))


def test_poll_until_side_effect_runs():
    sim = Simulator()
    effects = []

    def poll():
        def p():
            yield sim.timeout(0.1)
            return True
        return sim.process(p())

    def side(result):
        def writer():
            yield sim.timeout(1.0)
            effects.append(result)
        return sim.process(writer())

    sim.run(until=poll_until(sim, poll, accept=lambda v: v, interval=1.0,
                             timeout=100.0, on_result=side))
    assert effects == [True]


def test_poll_until_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        poll_until(sim, lambda: None, lambda v: True, interval=0, timeout=1)


# ---------------------------------------------------------------- service builder

def _builder():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "h", net, HostSpec())
    server = SoapServer(host, SoapFabric())
    return sim, host, server, ServiceBuilder(host, server)


def _record(name="hello.sh", params="name:string"):
    return ExecutableRecord(name, "demo", parse_params_spec(params),
                            size=100, uploaded_by="t", uploaded_at=0.0)


def test_builder_generates_real_archive():
    sim, host, server, builder = _builder()
    record = _record()
    archive = builder.build_archive(record)
    with zipfile.ZipFile(io.BytesIO(archive)) as aar:
        names = aar.namelist()
        assert "HelloService.java" in names
        assert "META-INF/services.xml" in names
        source = aar.read("HelloService.java").decode()
        assert 'executableName = "hello.sh"' in source
        assert "String name" in source
        xml = aar.read("META-INF/services.xml").decode()
        assert 'name="HelloService"' in xml
        assert 'name="name" type="xsd:string"' in xml


def test_builder_deploys_service():
    sim, host, server, builder = _builder()
    endpoint, archive = sim.run(until=builder.build_and_deploy(
        _record(), lambda op, p: "x"))
    assert endpoint == "soap://h/HelloService"
    assert "HelloService" in server.services()
    assert builder.builds == 1
    assert sim.now > 0  # the build took CPU+disk time
    assert host.disk.bytes_written() >= len(archive)


def test_builder_rejects_duplicate_service():
    sim, host, server, builder = _builder()
    sim.run(until=builder.build_and_deploy(_record(), lambda op, p: "x"))
    from repro.errors import ServiceBuildError
    with pytest.raises(ServiceBuildError, match="already exists"):
        sim.run(until=builder.build_and_deploy(_record(), lambda op, p: "x"))


def test_builder_description_interface():
    _, _, _, builder = _builder()
    desc = builder.description_for(_record(params="a:int, b:double"))
    execute = desc.operation("execute")
    assert [p.xsd_type for p in execute.params] == ["xsd:int", "xsd:double"]
    assert desc.operation("describe").params == ()
