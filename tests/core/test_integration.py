"""Integration tests: the full onServe pipeline on a live testbed."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.core.invocation import discover_service
from repro.errors import ServiceNotFound, SoapFault
from repro.grid import build_testbed
from repro.units import KB, MB, Mbps
from repro.workloads import make_payload


def stack_env(config=None, **testbed_kw):
    testbed_kw.setdefault("n_sites", 3)
    testbed_kw.setdefault("nodes_per_site", 2)
    testbed_kw.setdefault("cores_per_node", 4)
    testbed_kw.setdefault("appliance_uplink", Mbps(8))
    tb = build_testbed(**testbed_kw)
    stack = tb.sim.run(until=deploy_onserve(tb, config))
    return tb, stack


def upload(tb, stack, name="hello.sh", payload=None, params="name:string",
           description="demo"):
    payload = payload or make_payload("echo", size=int(KB(2)))
    return tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], name, payload, description=description,
        params_spec=params))


def test_deployment_brings_up_everything():
    tb, stack = stack_env()
    assert stack.appliance.startup_seconds > 10
    assert "CyberaideAgent" in stack.soap_server.services()
    assert tb.myproxy.has_credential("onserve")
    assert stack.uddi.find_business("Cyberaide%")


def test_upload_generates_and_publishes():
    tb, stack = stack_env()
    service = upload(tb, stack)
    assert service.service_name == "HelloService"
    assert service.endpoint == "soap://appliance/HelloService"
    assert "HelloService" in stack.soap_server.services()
    assert stack.dbmanager.has_executable("hello.sh")
    hits = stack.uddi.find_service("HelloService")
    assert len(hits) == 1
    binding = stack.uddi.get_bindings(hits[0].key)[0]
    assert binding.access_point == service.endpoint
    assert binding.wsdl_location.endswith("?wsdl")
    assert service.archive_size > 100


def test_full_saas_invocation_returns_real_output():
    tb, stack = stack_env()
    upload(tb, stack)
    client = stack.user_clients[0]
    out = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                               name="world"))
    assert out == "world\n"
    runtime = stack.onserve.runtimes["HelloService"]
    report = runtime.reports[0]
    assert report.ok
    assert report.polls >= 1
    assert report.job_id
    assert report.total > report.overhead > 0


def test_invocation_runs_real_computation():
    tb, stack = stack_env()
    payload = make_payload("mcpi", size=int(KB(4)))
    upload(tb, stack, name="pi-estimator.sh", payload=payload,
           params="samples:int, seed:int")
    out = tb.sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "PiEstimator%",
        samples=50000, seed=3))
    estimate = float(out.splitlines()[-1].split("=")[1])
    assert abs(estimate - 3.14159) < 0.1


def test_tentative_polling_produces_periodic_disk_writes():
    config = OnServeConfig(poll_interval=9.0)
    tb, stack = stack_env(config)
    payload = make_payload("fixed", size=int(KB(2)), runtime="120",
                           output_bytes="4096")
    upload(tb, stack, name="long.sh", payload=payload, params="")
    host = stack.appliance_host
    written_before = host.disk.bytes_written()
    tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                         "Long%"))
    runtime = stack.onserve.runtimes["LongService"]
    report = runtime.reports[0]
    # ~120 s at a 9 s poll interval -> on the order of a dozen polls.
    assert report.polls >= 8
    assert host.disk.bytes_written() > written_before


def test_second_invocation_reuploads_executable():
    tb, stack = stack_env()
    upload(tb, stack)
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="a"))
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="b"))
    # Faithful behaviour: the file is uploaded to the grid twice.
    assert stack.agent.uploads == 2


def test_upload_cache_ablation_skips_reupload():
    tb, stack = stack_env(OnServeConfig(upload_cache=True))
    upload(tb, stack)
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="a"))
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%", name="b"))
    assert stack.agent.uploads == 1


def test_status_ablation_uses_status_polling():
    tb, stack = stack_env(OnServeConfig(status_supported=True))
    payload = make_payload("fixed", size=int(KB(2)), runtime="60")
    upload(tb, stack, name="s.sh", payload=payload, params="")
    out = tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                               "S%"))
    assert out.startswith("fixed-profile")
    assert stack.agent.output_polls == 1  # only the final fetch


def test_double_write_flag_changes_disk_traffic():
    payload = make_payload("echo", size=int(MB(2)))

    def measure(double_write):
        tb, stack = stack_env(OnServeConfig(double_write=double_write))
        before = stack.appliance_host.disk.bytes_written()
        upload(tb, stack, name="big.bin", payload=payload, params="")
        return stack.appliance_host.disk.bytes_written() - before

    faithful = measure(True)
    improved = measure(False)
    assert faithful > improved + MB(1)  # the temp copy is gone


def test_reupload_replaces_executable_keeps_service():
    tb, stack = stack_env()
    upload(tb, stack, payload=make_payload("echo", size=1000))
    v2 = make_payload("echo", size=3000)
    service = upload(tb, stack, payload=v2)
    assert service.service_name == "HelloService"
    assert len(stack.onserve.list_services()) == 1
    sizes = stack.dbmanager.executable_sizes("hello.sh")
    assert sizes["size"] == 3000


def test_invoke_with_wrong_params_faults():
    tb, stack = stack_env()
    upload(tb, stack)
    client = stack.user_clients[0]
    with pytest.raises(Exception):  # stub validates locally -> WsError
        tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                             wrong_param="x"))


def test_discover_unknown_service():
    tb, stack = stack_env()
    with pytest.raises(ServiceNotFound):
        tb.sim.run(until=discover_service(stack, stack.user_clients[0],
                                          "Nothing%"))


def test_undeploy_removes_everywhere():
    tb, stack = stack_env()
    upload(tb, stack)
    tb.sim.run(until=stack.onserve.undeploy_service("HelloService"))
    assert "HelloService" not in stack.soap_server.services()
    assert stack.uddi.find_service("HelloService") == []
    assert not stack.dbmanager.has_executable("hello.sh")
    with pytest.raises(ServiceNotFound):
        stack.onserve.get_service("HelloService")


def test_grid_job_failure_surfaces_as_fault():
    # Executable sleeps longer than the walltime -> killed on the grid.
    config = OnServeConfig(default_walltime=30, poll_interval=5.0,
                           watchdog_timeout=120.0)
    tb, stack = stack_env(config)
    payload = make_payload("fixed", size=int(KB(1)), runtime="300")
    upload(tb, stack, name="runaway.sh", payload=payload, params="")
    with pytest.raises(SoapFault):
        tb.sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                             "Runaway%"))
    report = stack.onserve.runtimes["RunawayService"].reports[0]
    assert not report.ok
    assert report.error


def test_describe_operation():
    tb, stack = stack_env()
    upload(tb, stack, description="the hello service")
    client = stack.user_clients[0]
    result = tb.sim.run(until=client.call("soap://appliance/HelloService",
                                          "describe"))
    assert result == "the hello service"


def test_empty_upload_rejected():
    tb, stack = stack_env()
    with pytest.raises(Exception):
        tb.sim.run(until=stack.portal.upload_and_generate(
            tb.user_hosts[0], "empty.sh", b""))


def test_multiuser_concurrent_invocations():
    tb, stack = stack_env(n_users=3)
    upload(tb, stack)
    results = []

    def user_flow(client, name):
        out = yield discover_and_invoke(stack, client, "Hello%", name=name)
        results.append(out)

    for i, client in enumerate(stack.user_clients):
        tb.sim.process(user_flow(client, f"user{i}"))
    tb.sim.run()
    assert sorted(results) == ["user0\n", "user1\n", "user2\n"]
