"""Tests for the persisted invocation history and usage reporting."""

import pytest

from repro.core import OnServeConfig, deploy_onserve, discover_and_invoke
from repro.errors import SoapFault
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


@pytest.fixture()
def env():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(10))
    stack = tb.sim.run(until=deploy_onserve(tb))
    for name, profile in (("alpha.sh", "echo"), ("beta.sh", "echo")):
        payload = make_payload(profile, size=int(KB(2)))
        tb.sim.run(until=stack.portal.upload_and_generate(
            tb.user_hosts[0], name, payload, params_spec="x:string"))
    return tb, stack


def invoke(tb, stack, pattern, **params):
    return tb.sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], pattern, **params))


def test_history_rows_accumulate(env):
    tb, stack = env
    invoke(tb, stack, "Alpha%", x="1")
    invoke(tb, stack, "Alpha%", x="2")
    invoke(tb, stack, "Beta%", x="3")
    rows = stack.dbmanager.db.select("invocations")
    assert len(rows) == 3
    assert {r["service"] for r in rows} == {"AlphaService", "BetaService"}
    assert all(r["ok"] == 1 for r in rows)
    assert all(r["total"] > 0 for r in rows)
    assert stack.onserve.get_service("AlphaService").invocations == 2


def test_history_captures_failures(env):
    tb, stack = env
    payload = make_payload("fixed", size=int(KB(1)), runtime="500")
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "doomed.sh", payload, params_spec=""))
    stack.onserve.config.default_walltime = 30
    stack.onserve.config.watchdog_timeout = 200.0
    with pytest.raises(SoapFault):
        invoke(tb, stack, "Doomed%")
    row = stack.dbmanager.db.find_eq("invocations", "service",
                                     "DoomedService")[0]
    assert row["ok"] == 0
    assert row["error"]


def test_usage_report_aggregates(env):
    tb, stack = env
    invoke(tb, stack, "Alpha%", x="1")
    invoke(tb, stack, "Alpha%", x="2")
    report = stack.onserve.usage_report()
    by_service = {r["service"]: r for r in report}
    assert by_service["AlphaService"]["count(*)"] == 2
    assert by_service["AlphaService"]["sum(ok)"] == 2
    assert by_service["AlphaService"]["avg(total)"] > 0


def test_usage_report_over_soap(env):
    tb, stack = env
    invoke(tb, stack, "Beta%", x="9")
    client = stack.user_clients[0]
    raw = tb.sim.run(until=client.call(
        stack.soap_server.endpoint_for("OnServeManagement"), "usageReport"))
    lines = [l for l in raw.splitlines() if l]
    assert len(lines) == 1
    service, count, ok, total, overhead, polls = lines[0].split("|")
    assert service == "BetaService"
    assert count == "1" and ok == "1"
    assert float(total) > 0
    assert int(polls) >= 1


def test_history_survives_db_recovery(env):
    tb, stack = env
    invoke(tb, stack, "Alpha%", x="1")
    recovered = stack.dbmanager.recover_from_crash()
    rows = recovered.db.select("invocations")
    assert len(rows) == 1
    assert rows[0]["service"] == "AlphaService"
