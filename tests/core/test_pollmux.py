"""PollMux: adaptive batching, determinism, exactly-once detection."""

import pytest

from repro.core.watchdog import await_mux
from repro.errors import GridError, WatchdogTimeout
from repro.grid.poller import PollMux
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges


def make_mux(sim, finish_times, cost=0.25, **kw):
    """A mux whose batch op reports ready once sim.now >= finish time."""

    def batch_poll(batch):
        def op():
            yield sim.timeout(cost)  # the exchange takes simulated time
            return {key: {"ready": sim.now >= finish_times[key]}
                    for key, _token in batch}

        return sim.process(op(), name="test-batch")

    kw.setdefault("min_interval", 2.0)
    kw.setdefault("max_interval", 16.0)
    return PollMux(sim, "testsite", batch_poll,
                   accept=lambda r: r is not None and r["ready"], **kw)


def test_single_job_detected_with_poll_count():
    sim = Simulator()
    mux = make_mux(sim, {"j1": 5.0})

    def flow():
        result, polls = yield mux.register("j1")
        return result, polls, sim.now

    result, polls, at = sim.run(until=sim.process(flow()))
    assert result["ready"]
    assert polls >= 2  # first poll at ~0 is early, later one detects
    assert at >= 5.0
    assert mux.pending == 0


def test_interval_backs_off_then_resets_on_detection():
    sim = Simulator()
    mux = make_mux(sim, {"j1": 30.0})

    def flow():
        yield mux.register("j1")

    sim.run(until=sim.process(flow()))
    intervals = [ev.fields["interval"]
                 for ev in bus(sim).events(kind="poller.batch")]
    # Exponential backoff from the floor up to the cap, never past it.
    assert intervals[0] == 2.0
    assert max(intervals) == 16.0
    assert intervals == sorted(intervals)
    # The detection round snapped the next-interval back to the floor.
    assert mux.interval == 2.0


def test_same_seed_identical_event_trace():
    def trace(seed):
        sim = Simulator(seed=seed)
        mux = make_mux(sim, {"a": 7.0, "b": 19.0, "c": 11.0})

        def flow():
            yield sim.all_of([mux.register(k) for k in ("a", "b", "c")])

        sim.run(until=sim.process(flow()))
        return [(ev.ts, ev.kind, ev.fields.get("jobs"),
                 ev.fields.get("key"), ev.fields.get("interval"))
                for ev in bus(sim).events()
                if ev.kind.startswith("poller.")]

    first, second = trace(3), trace(3)
    assert first == second
    assert any(kind == "poller.detect" for _, kind, *_ in first)


def test_mixed_completion_order_detected_exactly_once():
    sim = Simulator()
    # Completion order b, c, a — registration order a, b, c; b and c
    # both finish inside one backed-off sleep window.
    mux = make_mux(sim, {"a": 40.0, "b": 5.0, "c": 6.0})
    detections = []

    def waiter(key):
        def op():
            result, polls = yield mux.register(key)
            detections.append((key, sim.now, polls))

        return sim.process(op(), name=f"wait:{key}")

    sim.run(until=sim.all_of([waiter(k) for k in ("a", "b", "c")]))
    assert sorted(k for k, _, _ in detections) == ["a", "b", "c"]
    # Exactly one detect event per job, regardless of finish order.
    detects = [ev.fields["key"]
               for ev in bus(sim).events(kind="poller.detect")]
    assert sorted(detects) == ["a", "b", "c"]
    by_key = {k: t for k, t, _ in detections}
    # b and c fell in the same sleep window: one round catches both.
    assert by_key["b"] == by_key["c"]
    assert by_key["c"] < by_key["a"]


def test_register_wakes_a_sleeping_loop():
    sim = Simulator()
    mux = make_mux(sim, {"slow": 100.0, "fast": 0.0})
    times = {}

    def first():
        yield sim.timeout(60.0)  # loop is deep into 16s sleeps by now
        result, _ = yield mux.register("fast")
        times["fast"] = sim.now

    def slow():
        yield mux.register("slow")

    slow_p = sim.process(slow(), name="slow")
    sim.run(until=sim.process(first(), name="first"))
    # Registration woke the loop: detection ~one batch cost later, not
    # after the remainder of a 16-second backoff sleep.
    assert times["fast"] - 60.0 < 2.0
    sim.run(until=slow_p)


def test_batch_failure_fails_every_waiter():
    sim = Simulator()

    def batch_poll(batch):
        def op():
            yield sim.timeout(0.1)
            raise GridError("gatekeeper exploded")

        return sim.process(op(), name="boom")

    mux = PollMux(sim, "site", batch_poll, accept=lambda r: True)
    outcomes = []

    def waiter(key):
        def op():
            try:
                yield mux.register(key)
            except GridError as exc:
                outcomes.append((key, str(exc)))

        return sim.process(op(), name=f"wait:{key}")

    sim.run(until=sim.all_of([waiter("a"), waiter("b")]))
    assert len(outcomes) == 2
    assert mux.pending == 0


def test_duplicate_registration_rejected():
    sim = Simulator()
    mux = make_mux(sim, {"j": 5.0})

    def flow():
        event = mux.register("j")
        with pytest.raises(ValueError):
            mux.register("j")
        yield event

    sim.run(until=sim.process(flow()))


def test_unregister_stops_polling_and_is_idempotent():
    sim = Simulator()
    mux = make_mux(sim, {"j": 1e9})

    def flow():
        mux.register("j")
        yield sim.timeout(5.0)
        mux.unregister("j")
        mux.unregister("j")  # idempotent
        yield sim.timeout(100.0)

    sim.run(until=sim.process(flow()))
    assert mux.pending == 0
    # The loop died once the last key left; no further rounds happened.
    rounds_after = mux.rounds
    sim.run(until=sim.timeout(100.0))
    assert mux.rounds == rounds_after


def test_pending_and_interval_gauges_track():
    sim = Simulator()
    mux = make_mux(sim, {"a": 4.0, "b": 4.0})

    def flow():
        yield sim.all_of([mux.register("a"), mux.register("b")])

    sim.run(until=sim.process(flow()))
    assert gauges(sim).gauge("poller.testsite.pending").peak() == 2
    assert gauges(sim).gauge("poller.testsite.pending").current == 0
    assert gauges(sim).gauge("poller.testsite.batch").current == 0


def test_constructed_mux_schedules_nothing():
    sim = Simulator()
    make_mux(sim, {})
    assert sim.run() is None  # no events at all: the heap starts empty
    assert sim.now == 0.0


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PollMux(sim, "x", lambda b: None, lambda r: True, min_interval=0.0)
    with pytest.raises(ValueError):
        PollMux(sim, "x", lambda b: None, lambda r: True,
                min_interval=5.0, max_interval=1.0)
    with pytest.raises(ValueError):
        PollMux(sim, "x", lambda b: None, lambda r: True, backoff=0.5)


# ------------------------------------------------------------- await_mux

def test_await_mux_returns_result_and_polls():
    sim = Simulator()
    mux = make_mux(sim, {"j": 9.0})

    def flow():
        result, polls = yield await_mux(sim, mux, "j", None, timeout=60.0)
        return result, polls

    result, polls = sim.run(until=sim.process(flow()))
    assert result["ready"] and polls >= 1


def test_await_mux_timeout_unregisters():
    sim = Simulator()
    mux = make_mux(sim, {"j": 1e9})

    def flow():
        yield await_mux(sim, mux, "j", None, timeout=30.0)

    with pytest.raises(WatchdogTimeout):
        sim.run(until=sim.process(flow()))
    assert mux.pending == 0


def test_await_mux_propagates_batch_failure():
    sim = Simulator()

    def batch_poll(batch):
        def op():
            yield sim.timeout(0.1)
            raise GridError("site melted")

        return sim.process(op(), name="boom")

    mux = PollMux(sim, "site", batch_poll, accept=lambda r: True)

    def flow():
        yield await_mux(sim, mux, "j", None, timeout=60.0)

    with pytest.raises(GridError, match="melted"):
        sim.run(until=sim.process(flow()))


def test_register_mid_batch_keeps_snap_to_floor():
    """Regression: a key registered while a quiet batch is in flight
    snaps the interval to the floor, and the quiet round's backoff must
    not immediately multiply it away (the "fresh job deserves a fast
    first look" contract)."""
    sim = Simulator()
    # Batch exchanges take 1s; "a" never finishes, "b" finishes at 3s.
    mux = make_mux(sim, {"a": 1e9, "b": 3.0}, cost=1.0)
    detected = {}

    def first():
        yield mux.register("a")

    def second():
        yield sim.timeout(0.5)  # the first batch poll is in flight
        result, polls = yield mux.register("b")
        detected["b"] = sim.now

    sim.process(first(), name="first")
    sim.run(until=sim.process(second(), name="second"))
    # Round 1 (quiet, b unseen) ends at t=1; the floor survives it, so
    # round 2 launches at t=3 and detects b at t=4.  With the backoff
    # bug the floor became min*backoff=4s and detection slipped to t=6.
    assert detected["b"] == 4.0
    intervals = [ev.fields["interval"]
                 for ev in bus(sim).events(kind="poller.batch")]
    assert intervals[:2] == [2.0, 2.0]


def test_mid_batch_registrant_survives_batch_failure():
    """Regression: a batch failure fails only the waiters that batch
    actually covered — a key registered while it was in flight was
    never polled, stays pending, and the restarted loop detects it."""
    sim = Simulator()
    calls = {"n": 0}

    def batch_poll(batch):
        def op():
            calls["n"] += 1
            attempt = calls["n"]
            yield sim.timeout(1.0)
            if attempt == 1:
                raise GridError("transient gatekeeper fault")
            return {key: {"ready": True} for key, _token in batch}

        return sim.process(op(), name="batch")

    mux = PollMux(sim, "site", batch_poll,
                  accept=lambda r: r is not None and r["ready"])
    outcomes = {}

    def first():
        try:
            yield mux.register("a")
        except GridError as exc:
            outcomes["a"] = exc

    def second():
        yield sim.timeout(0.5)  # the doomed batch is in flight
        result, polls = yield mux.register("b")
        outcomes["b"] = (result, polls, sim.now)

    sim.run(until=sim.all_of([sim.process(first(), name="first"),
                              sim.process(second(), name="second")]))
    # "a" was in the failed batch and got its error...
    assert isinstance(outcomes["a"], GridError)
    # ...but "b" was not: it survived, the loop restarted promptly, and
    # the very next round (t=1 -> t=2) detected it on its first poll.
    result, polls, at = outcomes["b"]
    assert result["ready"] and polls == 1
    assert at == 2.0
    assert mux.pending == 0


def test_await_mux_timeout_then_reregister_same_key():
    """Regression: after a waiter times out mid-batch, re-registering
    the same key must hand the *fresh* waiter a result from a poll made
    after its registration — never the in-flight batch's result for the
    abandoned predecessor."""
    sim = Simulator()
    # Slow exchanges (5s) so the deadline fires while a batch is out;
    # the job "finishes" at t=4, inside the first batch's flight.
    mux = make_mux(sim, {"j": 4.0}, cost=5.0)
    history = []

    def flow():
        try:
            yield await_mux(sim, mux, "j", None, timeout=2.0)
        except WatchdogTimeout:
            history.append(("timeout", sim.now))
        result, polls = yield await_mux(sim, mux, "j", None, timeout=60.0)
        history.append(("detected", sim.now, polls))
        return result

    result = sim.run(until=sim.process(flow(), name="flow"))
    assert result["ready"]
    # The first batch (t=0 -> t=5) must not satisfy the re-registered
    # waiter (registered at t=2): after one floor-interval sleep the
    # next round (t=7 -> t=12) detects it on its *own* first poll.
    assert history == [("timeout", 2.0), ("detected", 12.0, 1)]
    assert mux.pending == 0


def test_await_mux_rejects_bad_timeout():
    sim = Simulator()
    mux = make_mux(sim, {})
    with pytest.raises(ValueError):
        await_mux(sim, mux, "j", None, timeout=0.0)
