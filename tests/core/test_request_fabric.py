"""End-to-end request-fabric tests: traces, metrics, undeploy hygiene.

The fabric's promise: one :class:`RequestContext` per entry-point
request, nested sim-time spans across every layer the request crosses
(portal → build → UDDI → agent → GridFTP → GRAM), and per-operation
metrics queryable from the SOAP containers afterwards.
"""

from repro.core import deploy_onserve, discover_and_invoke
from repro.core.context import RequestContext
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def stack_env(**testbed_kw):
    testbed_kw.setdefault("n_sites", 3)
    testbed_kw.setdefault("nodes_per_site", 2)
    testbed_kw.setdefault("cores_per_node", 4)
    testbed_kw.setdefault("appliance_uplink", Mbps(8))
    tb = build_testbed(**testbed_kw)
    stack = tb.sim.run(until=deploy_onserve(tb))
    return tb, stack


def upload(tb, stack, ctx=None):
    return tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "hello.sh", make_payload("echo", size=int(KB(2))),
        description="demo", params_spec="name:string", ctx=ctx))


# -- undeploy hygiene (regression) ------------------------------------------

def test_direct_soap_undeploy_unpublishes_uddi_bindings():
    """Undeploying at the SOAP layer must not leave stale UDDI entries.

    Regression: a direct ``SoapServer.undeploy`` (bypassing
    ``OnServe.undeploy_service``) used to leave the bindingTemplate in
    the registry pointing at a dead endpoint.
    """
    tb, stack = stack_env()
    upload(tb, stack)
    assert stack.uddi.find_service("HelloService")

    stack.soap_server.undeploy("HelloService")

    assert stack.uddi.find_service("HelloService") == []
    assert "HelloService" not in stack.onserve.services
    assert "HelloService" not in stack.onserve.runtimes
    # the stored executable is untouched — only the service face is gone
    assert stack.dbmanager.has_executable("hello.sh")


def test_onserve_undeploy_service_still_cleans_everything():
    tb, stack = stack_env()
    upload(tb, stack)

    def op():
        yield stack.onserve.undeploy_service("HelloService")

    tb.sim.run(until=tb.sim.process(op()))
    assert stack.uddi.find_service("HelloService") == []
    assert "HelloService" not in stack.soap_server.services()
    assert not stack.dbmanager.has_executable("hello.sh")


# -- end-to-end traces -------------------------------------------------------

def test_portal_upload_produces_build_and_publish_trace():
    tb, stack = stack_env()
    upload(tb, stack)

    (ctx,) = stack.portal.recent_requests
    assert ctx.principal == tb.user_hosts[0].name
    root = ctx.root
    upload_span = root.find("portal:upload")
    assert upload_span is not None
    for name in ("portal:receive", "portal:handle", "onserve:store",
                 "onserve:build", "onserve:uddi-publish"):
        span = root.find(name)
        assert span is not None, f"missing span {name}"
        assert span.closed
    build = root.find("onserve:build")
    assert build.duration > 0  # wsgen/wsdeploy consumed simulated time
    assert ctx.request_id in ctx.waterfall()


def test_invocation_trace_covers_every_layer_down_to_gram():
    tb, stack = stack_env()
    upload(tb, stack)
    client = stack.user_clients[0]
    ctx = RequestContext.create(tb.sim, principal=client.host.name)

    out = tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                               ctx=ctx, name="world"))
    assert out == "world\n"

    root = ctx.root
    # one request id, nested spans across UDDI, SOAP, agent, grid layers
    layer_spans = [
        "uddi:discover",
        "client:HelloService.execute",
        "server:HelloService.execute",
        "service:retrieval", "service:auth", "service:upload",
        "service:submit", "service:polling",
        "agent:authenticate", "agent:listSites",
        "gridftp:put",
        "gram:submit",
        "gram:fetch-output",
    ]
    for name in layer_spans:
        span = root.find(name)
        assert span is not None, f"missing span {name}"
        assert span.closed

    # nesting: the grid work happens inside the server-side execute span
    server_span = root.find("server:HelloService.execute")
    assert server_span.find("gram:submit") is not None
    assert server_span.find("gridftp:put") is not None
    # the client span brackets the server span in sim time
    client_span = root.find("client:HelloService.execute")
    assert client_span.start <= server_span.start
    assert server_span.end <= client_span.end

    waterfall = ctx.waterfall()
    assert ctx.request_id in waterfall
    for name in ("gram:submit", "gridftp:put", "uddi:discover"):
        assert name in waterfall


def test_per_operation_metrics_queryable_after_run():
    tb, stack = stack_env()
    upload(tb, stack)
    client = stack.user_clients[0]
    tb.sim.run(until=discover_and_invoke(stack, client, "Hello%",
                                         name="world"))

    server_metrics = stack.soap_server.metrics
    execute = server_metrics.get("HelloService", "execute")
    assert execute.calls == 1
    assert execute.faults == 0
    assert execute.latency.mean > 0
    # agent operations the invocation crossed are accounted too
    agent_ops = {m.operation for m in server_metrics.all()
                 if m.service == "CyberaideAgent"}
    assert {"authenticate", "listSites", "uploadExecutable",
            "submitJob"} <= agent_ops
    # UDDI inquiry calls went through the same container
    assert server_metrics.get("UddiInquiry", "findService").calls >= 1
    assert "HelloService.execute" in server_metrics.table()
    # the client container kept its own view of the same traffic
    assert client.metrics.get("HelloService", "execute").calls == 1
