"""End-to-end datapath mode: batched polling + session reuse in situ."""

import pytest

from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServeConfig, deploy_onserve
from repro.errors import OnServeError
from repro.grid import build_testbed
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.units import KB, Mbps
from repro.workloads import make_payload


def deploy(n_users=3, datapath=True, **cfg_kw):
    sim = Simulator(seed=0)
    tb = build_testbed(sim=sim, n_sites=1, nodes_per_site=2,
                       cores_per_node=4, appliance_uplink=Mbps(10),
                       n_users=n_users)
    config = OnServeConfig(datapath=datapath, **cfg_kw)
    stack = sim.run(until=deploy_onserve(tb, config))
    return sim, tb, stack


def upload(sim, tb, stack):
    payload = make_payload("sleep", size=int(KB(32)))
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "sleeper.bin", payload,
        params_spec="seconds:double"))


def test_concurrent_invocations_share_batched_polls():
    sim, tb, stack = deploy(n_users=3)
    upload(sim, tb, stack)
    results = []

    def invoke(i):
        def op():
            out = yield discover_and_invoke(
                stack, stack.user_clients[i], "Sleeper%",
                seconds=5.0 + 4.0 * i)
            results.append(out)

        return sim.process(op(), name=f"invoke:{i}")

    sim.run(until=sim.all_of([invoke(i) for i in range(3)]))
    assert results == ["slept\n"] * 3
    agent = stack.agent
    # The polling ran through pollOutputs batches, not per-job loops...
    assert agent.batch_polls > 0
    counts = bus(sim).counts()
    assert counts.get("poller.batch", 0) == agent.batch_polls
    assert counts.get("poller.detect") == 3
    assert counts.get("core.output_detected") == 3
    # ...at least one of which actually multiplexed >1 job.
    batch_sizes = [ev.fields["jobs"]
                   for ev in bus(sim).events(kind="agent.poll_batch")]
    assert max(batch_sizes) > 1
    # Session reuse: three stagings, one GridFTP handshake.
    sessions = agent._ftp_sessions._sessions
    assert sum(s.handshakes for s in sessions.values()) == 1
    assert sum(s.ops for s in sessions.values()) == 3


def test_disabled_datapath_uses_per_job_polling():
    sim, tb, stack = deploy(n_users=1, datapath=False)
    upload(sim, tb, stack)
    out = sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=3.0))
    assert out == "slept\n"
    counts = bus(sim).counts()
    assert counts.get("poller.batch", 0) == 0
    assert stack.agent.batch_polls == 0
    # The observational detection marker exists on the faithful path too.
    assert counts.get("core.output_detected") == 1
    # No session objects were ever created by the disabled pool.
    assert stack.agent._ftp_sessions._sessions == {}


def test_datapath_reports_polls_and_records_invocation():
    sim, tb, stack = deploy(n_users=1)
    upload(sim, tb, stack)
    sim.run(until=discover_and_invoke(
        stack, stack.user_clients[0], "Sleeper%", seconds=4.0))
    runtime = next(iter(stack.onserve.runtimes.values()))
    report = runtime.reports[-1]
    assert report.ok
    assert report.polls >= 1
    assert report.job_id


def test_poll_mux_is_per_site_and_lazy():
    sim, tb, stack = deploy(n_users=1)
    site = next(iter(tb.gatekeepers))
    assert stack.onserve._poll_muxes == {}
    mux = stack.onserve.poll_mux(site)
    assert stack.onserve.poll_mux(site) is mux
    assert mux.pending == 0


def test_config_validation():
    with pytest.raises(OnServeError):
        OnServeConfig(poll_min_interval=0.0)
    with pytest.raises(OnServeError):
        OnServeConfig(poll_backoff=0.9)
    with pytest.raises(OnServeError):
        OnServeConfig(ftp_session_idle=0.0)
    with pytest.raises(OnServeError):
        OnServeConfig(poll_min_interval=10.0, poll_max_interval=5.0)
    # The adaptive cap defaults to the faithful fixed interval.
    assert OnServeConfig(poll_interval=9.0).poll_max_interval == 9.0
    assert OnServeConfig(poll_max_interval=42.0).poll_max_interval == 42.0
