"""Watchdog.guard exception routing + poll_until edge cases."""

import pytest

from repro.core.watchdog import Watchdog, poll_until
from repro.errors import WatchdogTimeout
from repro.simkernel import Simulator
from repro.simkernel.process import Interrupt


def drive(sim, proc):
    return sim.run(until=proc)


# ---------------------------------------------------------------- guard

def test_victim_finishing_in_time_returns_its_value():
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        yield sim.timeout(3.0)
        return "done"

    assert drive(sim, dog.guard(sim.process(victim()))) == "done"
    assert dog.timeouts_fired == 0


def test_slow_victim_times_out():
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        yield sim.timeout(100.0)

    with pytest.raises(WatchdogTimeout, match="exceeded 10s"):
        drive(sim, dog.guard(sim.process(victim()), label="slow job"))
    assert dog.timeouts_fired == 1
    assert sim.now == 10.0          # did not wait out the full sleep


def test_victim_genuine_error_propagates_not_timeout():
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        yield sim.timeout(2.0)
        raise ValueError("genuinely broken")

    with pytest.raises(ValueError, match="genuinely broken"):
        drive(sim, dog.guard(sim.process(victim())))
    assert dog.timeouts_fired == 0


def test_error_while_handling_interrupt_is_not_absorbed():
    """The regression: only the watchdog's own Interrupt may be defused.

    A victim whose cleanup *itself* fails must surface that failure —
    masking it as a plain WatchdogTimeout loses the real diagnosis.
    """
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            raise RuntimeError("cleanup failed") from None

    with pytest.raises(RuntimeError, match="cleanup failed"):
        drive(sim, dog.guard(sim.process(victim())))
    assert dog.timeouts_fired == 1


def test_victim_completing_on_interrupt_wins_over_timeout():
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            return "partial result"

    assert drive(sim, dog.guard(sim.process(victim()))) == "partial result"
    assert dog.timeouts_fired == 1


def test_error_racing_the_deadline_instant_propagates():
    sim = Simulator()
    dog = Watchdog(sim, timeout=10.0)

    def victim():
        # Fails at exactly the deadline instant (photo finish).
        yield sim.timeout(10.0)
        raise ValueError("same-instant failure")

    with pytest.raises(ValueError, match="same-instant"):
        drive(sim, dog.guard(sim.process(victim())))


# ---------------------------------------------------------------- poll_until

def test_accept_on_first_poll_takes_zero_time():
    sim = Simulator()
    result = drive(sim, poll_until(
        sim,
        poll_factory=lambda: sim.timeout(0.0, value="ready"),
        accept=lambda r: True,
        interval=5.0, timeout=60.0))
    assert result == ("ready", 1)
    assert sim.now == 0.0            # no interval sleep was taken


def test_accept_exactly_at_the_deadline_boundary_wins():
    sim = Simulator()
    result = drive(sim, poll_until(
        sim,
        poll_factory=lambda: sim.timeout(0.0, value=sim.now),
        accept=lambda t: t >= 10.0,
        interval=5.0, timeout=10.0))
    # Polls at t=0, 5, 10; the boundary poll is accepted, not timed out.
    assert result == (10.0, 3)


def test_timeout_exactly_at_poll_boundary_gives_up_after_that_poll():
    sim = Simulator()
    with pytest.raises(WatchdogTimeout, match="3 polls"):
        drive(sim, poll_until(
            sim,
            poll_factory=lambda: sim.timeout(0.0, value="no"),
            accept=lambda r: False,
            interval=5.0, timeout=10.0))
    assert sim.now == 10.0           # no extra interval past the deadline


def test_failing_on_result_side_effect_propagates():
    sim = Simulator()

    def bad_side_effect(result):
        def op():
            yield sim.timeout(0.5)
            raise OSError("disk full")

        return sim.process(op())

    with pytest.raises(OSError, match="disk full"):
        drive(sim, poll_until(
            sim,
            poll_factory=lambda: sim.timeout(0.0, value="x"),
            accept=lambda r: False,
            interval=5.0, timeout=60.0,
            on_result=bad_side_effect))


def test_failing_poll_itself_propagates():
    sim = Simulator()

    def broken_poll():
        def op():
            yield sim.timeout(1.0)
            raise ConnectionError("poll target gone")

        return sim.process(op())

    with pytest.raises(ConnectionError, match="target gone"):
        drive(sim, poll_until(
            sim,
            poll_factory=broken_poll,
            accept=lambda r: True,
            interval=5.0, timeout=60.0))


def test_interval_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError, match="interval"):
        poll_until(sim, poll_factory=lambda: sim.timeout(0.0),
                   accept=lambda r: True, interval=0.0, timeout=10.0)
