"""Re-entrancy: one generated service, many simultaneous callers."""

import pytest

from repro.core import deploy_onserve, discover_and_invoke
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload


def test_concurrent_executes_on_one_service():
    tb = build_testbed(n_sites=3, nodes_per_site=4, cores_per_node=8,
                       appliance_uplink=Mbps(20), n_users=4)
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("echo", size=int(KB(2)))
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "echo.sh", payload, params_spec="who:string"))
    results = {}

    def caller(i, client):
        out = yield discover_and_invoke(stack, client, "Echo%",
                                        who=f"caller-{i}")
        results[i] = out

    for i, client in enumerate(stack.user_clients):
        tb.sim.process(caller(i, client))
    tb.sim.run()

    assert results == {i: f"caller-{i}\n" for i in range(4)}
    runtime = stack.onserve.runtimes["EchoService"]
    # Four overlapping executes, four distinct grid jobs, no tag clashes.
    assert len(runtime.reports) == 4
    job_ids = {r.job_id for r in runtime.reports}
    assert len(job_ids) == 4
    assert all(r.ok for r in runtime.reports)
    # One shared agent session served all of them.
    assert tb.myproxy.logons_served == 1


def test_concurrent_executes_write_distinct_history_rows():
    tb = build_testbed(n_sites=2, nodes_per_site=2, cores_per_node=4,
                       appliance_uplink=Mbps(20), n_users=3)
    stack = tb.sim.run(until=deploy_onserve(tb))
    payload = make_payload("fixed", size=int(KB(2)), runtime="20")
    tb.sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "f.sh", payload))

    procs = [discover_and_invoke(stack, c, "F%")
             for c in stack.user_clients]
    tb.sim.run(until=tb.sim.all_of(procs))
    rows = stack.dbmanager.db.select("invocations")
    assert len(rows) == 3
    assert len({r["id"] for r in rows}) == 3
