"""Unit tests for GridSite, GridFTP, GRAM, MDS and the testbed factory."""

import pytest

from repro.errors import (
    AuthenticationFailed, GridError, JobNotFound, TransferError,
)
from repro.grid import JobDescription, JobState, build_testbed
from repro.grid.rsl import generate_rsl
from repro.simkernel import Simulator
from repro.units import KB, KBps, Mbps
from repro.workloads import make_payload


def quick_testbed(**kw):
    kw.setdefault("n_sites", 2)
    kw.setdefault("nodes_per_site", 2)
    kw.setdefault("cores_per_node", 4)
    kw.setdefault("appliance_uplink", Mbps(10))
    tb = build_testbed(**kw)
    return tb


def logon(tb, username="ada", passphrase="pw"):
    """Enrol + logon; returns (chain, client_host)."""
    tb.new_grid_identity(username, passphrase)
    client = tb.appliance_host

    def flow():
        key, proxy, ee = yield tb.myproxy.logon(client, username, passphrase,
                                                lifetime=3600.0)
        return [proxy, ee]

    chain = tb.sim.run(until=tb.sim.process(flow()))
    return chain, client


# ---------------------------------------------------------------- gridftp

def test_gridftp_put_get_roundtrip():
    tb = quick_testbed()
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(16)))
    ftp = tb.ftp("ncsa")

    def flow():
        yield ftp.put(client, chain, "/scratch/echo.bin", payload)
        data = yield ftp.get(client, chain, "/scratch/echo.bin")
        return data

    data = tb.sim.run(until=tb.sim.process(flow()))
    assert data == payload
    assert ftp.transfers_in == 1
    assert ftp.transfers_out == 1
    assert tb.site("ncsa").head.disk.bytes_written() >= len(payload)


def test_gridftp_requires_valid_chain():
    tb = quick_testbed()
    chain, client = logon(tb)
    stranger_tb = quick_testbed()  # different CA entirely
    other_chain, _ = logon(stranger_tb, "eve", "x")

    def flow():
        yield tb.ftp("ncsa").put(client, other_chain, "/f", b"data")

    with pytest.raises(Exception):  # CertificateInvalid (untrusted CA)
        tb.sim.run(until=tb.sim.process(flow()))


def test_gridftp_get_missing_file():
    tb = quick_testbed()
    chain, client = logon(tb)

    def flow():
        yield tb.ftp("ncsa").get(client, chain, "/nope")

    with pytest.raises(TransferError):
        tb.sim.run(until=tb.sim.process(flow()))


def test_gridftp_transfer_rate_limited_by_uplink():
    tb = quick_testbed(appliance_uplink=KBps(100))
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(500)))

    def flow():
        t0 = tb.sim.now
        yield tb.ftp("ncsa").put(client, chain, "/big", payload)
        return tb.sim.now - t0

    elapsed = tb.sim.run(until=tb.sim.process(flow()))
    assert elapsed >= 5.0  # ~500 KB at 100 KB/s, plus handshake


# ---------------------------------------------------------------- gram

def submit_job(tb, site="ncsa", runtime=10.0, walltime=3600,
               path="/scratch/exe"):
    chain, client = logon(tb)
    payload = make_payload("fixed", size=1024, runtime=str(runtime),
                           output_bytes="2048")
    gram = tb.gram(site)
    ftp = tb.ftp(site)
    rsl = generate_rsl(JobDescription(executable=path,
                                      max_wall_time=walltime,
                                      stdout="exe.out"))

    def flow():
        yield ftp.put(client, chain, path, payload)
        job_id = yield gram.submit(client, chain, rsl)
        return job_id

    job_id = tb.sim.run(until=tb.sim.process(flow()))
    return tb, gram, client, chain, job_id


def test_gram_submit_and_complete():
    tb, gram, client, chain, job_id = submit_job(quick_testbed())
    job = tb.sim.run(until=gram.completion_event(job_id))
    assert job.state is JobState.DONE
    assert job.output.startswith(b"fixed-profile output")
    assert gram.submissions == 1
    site = tb.site("ncsa")
    assert site.read_file("exe.out") == job.output


def test_gram_status_progression():
    tb, gram, client, chain, job_id = submit_job(quick_testbed(),
                                                 runtime=100.0)

    def flow():
        first = yield gram.status(client, job_id)
        yield tb.sim.timeout(200.0)
        second = yield gram.status(client, job_id)
        return first, second

    first, second = tb.sim.run(until=tb.sim.process(flow()))
    assert first in (JobState.PENDING, JobState.ACTIVE)
    assert second is JobState.DONE


def test_gram_cancel():
    tb, gram, client, chain, job_id = submit_job(quick_testbed(),
                                                 runtime=1000.0)

    def flow():
        yield tb.sim.timeout(5.0)
        yield gram.cancel(client, job_id)

    tb.sim.run(until=tb.sim.process(flow()))
    job = tb.site("ncsa").get_job(job_id)
    assert job.state is JobState.CANCELED


def test_gram_fetch_output_partial_then_full():
    tb, gram, client, chain, job_id = submit_job(quick_testbed(),
                                                 runtime=100.0)

    def flow():
        yield tb.sim.timeout(60.0)  # job is mid-run
        partial = yield gram.fetch_output(client, job_id)
        yield gram.completion_event(job_id)
        full = yield gram.fetch_output(client, job_id)
        return partial, full

    partial, full = tb.sim.run(until=tb.sim.process(flow()))
    assert 0 < len(partial) < 2048          # placeholder prefix
    assert set(partial) == {0}
    assert full.startswith(b"fixed-profile output")


def test_gram_submit_rejects_bad_rsl():
    tb = quick_testbed()
    chain, client = logon(tb)

    def flow():
        yield tb.gram("ncsa").submit(client, chain, "not rsl at all")

    with pytest.raises(Exception):
        tb.sim.run(until=tb.sim.process(flow()))
    assert tb.gram("ncsa").refusals == 1


def test_gram_unstaged_executable_fails_job():
    tb = quick_testbed()
    chain, client = logon(tb)
    rsl = generate_rsl(JobDescription(executable="/missing"))

    def flow():
        job_id = yield tb.gram("ncsa").submit(client, chain, rsl)
        job = yield tb.gram("ncsa").completion_event(job_id)
        return job

    job = tb.sim.run(until=tb.sim.process(flow()))
    assert job.state is JobState.FAILED
    assert "not staged" in job.failure_reason


def test_gram_garbage_payload_fails_job():
    tb = quick_testbed()
    chain, client = logon(tb)
    rsl = generate_rsl(JobDescription(executable="/junk"))

    def flow():
        yield tb.ftp("ncsa").put(client, chain, "/junk", b"\x7fELF not ours")
        job_id = yield tb.gram("ncsa").submit(client, chain, rsl)
        return (yield tb.gram("ncsa").completion_event(job_id))

    job = tb.sim.run(until=tb.sim.process(flow()))
    assert job.state is JobState.FAILED
    assert "magic" in job.failure_reason


# ---------------------------------------------------------------- mds / testbed

def test_mds_query_and_ranking():
    tb = quick_testbed()
    sites = tb.mds.query(min_free_cores=1)
    assert len(sites) == 2
    best = tb.mds.best_site()
    assert best.pool.free_cores == 8
    with pytest.raises(GridError):
        tb.mds.best_site(min_free_cores=10**6)
    snapshot = tb.mds.snapshot()
    assert {row["name"] for row in snapshot} == {"ncsa", "sdsc"}


def test_mds_reflects_load():
    tb, gram, client, chain, job_id = submit_job(quick_testbed(),
                                                 runtime=500.0)

    def flow():
        yield tb.sim.timeout(10.0)
        return tb.mds.best_site().name

    best = tb.sim.run(until=tb.sim.process(flow()))
    assert best == "sdsc"  # ncsa has a running job now


def test_testbed_shape():
    tb = build_testbed(n_sites=11, nodes_per_site=2, cores_per_node=2)
    assert len(tb.sites) == 11
    assert tb.appliance_host.name == "appliance"
    assert len(tb.user_hosts) == 1
    with pytest.raises(ValueError):
        build_testbed(n_sites=0)
    with pytest.raises(ValueError):
        build_testbed(n_sites=12)


def test_myproxy_logon_rejects_wrong_passphrase():
    tb = quick_testbed()
    tb.new_grid_identity("ada", "right")

    def flow():
        yield tb.myproxy.logon(tb.appliance_host, "ada", "wrong", 100.0)

    with pytest.raises(AuthenticationFailed):
        tb.sim.run(until=tb.sim.process(flow()))
