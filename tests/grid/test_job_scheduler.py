"""Unit tests for job state machine, node pool and batch scheduler."""

import pytest

from repro.errors import GridError, JobError, JobNotFound
from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.simkernel import Simulator


def make_job(sim, job_id="j1", cores=1, walltime=100):
    desc = JobDescription(executable="/x", count=cores,
                          max_wall_time=walltime)
    return GridJob(job_id, desc, owner="/CN=test", submitted_at=sim.now)


def pend(job, sim):
    job.transition(JobState.STAGE_IN, sim.now)
    job.transition(JobState.PENDING, sim.now)
    return job


# ---------------------------------------------------------------- state machine

def test_legal_lifecycle():
    sim = Simulator()
    job = make_job(sim)
    for state in (JobState.STAGE_IN, JobState.PENDING, JobState.ACTIVE,
                  JobState.STAGE_OUT, JobState.DONE):
        job.transition(state, sim.now)
    assert job.is_terminal
    assert job.history[JobState.DONE] == 0.0


def test_illegal_transition_rejected():
    sim = Simulator()
    job = make_job(sim)
    with pytest.raises(JobError, match="illegal transition"):
        job.transition(JobState.ACTIVE, sim.now)
    job.transition(JobState.PENDING, sim.now)
    job.transition(JobState.ACTIVE, sim.now)
    job.transition(JobState.DONE, sim.now)
    with pytest.raises(JobError):
        job.transition(JobState.ACTIVE, sim.now)


def test_progress_tracking():
    sim = Simulator()
    job = make_job(sim)
    assert job.progress(10.0) == 0.0
    job.transition(JobState.PENDING, 0.0)
    job.transition(JobState.ACTIVE, 10.0)
    job.runtime = 20.0
    job.output_size = 1000
    assert job.progress(15.0) == pytest.approx(0.25)
    assert job.output_available(15.0) == 250
    assert job.progress(100.0) == 1.0


# ---------------------------------------------------------------- node pool

def test_pool_allocation_spans_nodes():
    pool = NodePool([ComputeNode("a", 4), ComputeNode("b", 4)])
    placement = pool.allocate(6)
    assert pool.free_cores == 2
    assert sum(take for _, take in placement) == 6
    pool.release(placement)
    assert pool.free_cores == 8


def test_pool_over_allocation_rejected():
    pool = NodePool([ComputeNode("a", 4)])
    with pytest.raises(GridError):
        pool.allocate(5)
    assert pool.free_cores == 4  # nothing leaked


def test_node_validation():
    with pytest.raises(GridError):
        ComputeNode("x", 0)
    with pytest.raises(GridError):
        NodePool([])
    node = ComputeNode("x", 2)
    node.allocate(2)
    with pytest.raises(GridError):
        node.allocate(1)
    node.release(2)
    with pytest.raises(GridError):
        node.release(1)


# ---------------------------------------------------------------- scheduler

def sched(sim, cores=4):
    return BatchScheduler(sim, NodePool([ComputeNode("n0", cores)]))


def test_job_runs_for_runtime():
    sim = Simulator()
    s = sched(sim)
    job = pend(make_job(sim), sim)
    done = s.submit(job, runtime=25.0)
    finished = sim.run(until=done)
    assert finished.state is JobState.DONE
    assert sim.now == pytest.approx(25.0)
    assert s.jobs_completed == 1


def test_fifo_waits_for_cores():
    sim = Simulator()
    s = sched(sim, cores=1)
    j1 = pend(make_job(sim, "j1"), sim)
    j2 = pend(make_job(sim, "j2"), sim)
    s.submit(j1, runtime=10.0)
    done2 = s.submit(j2, runtime=5.0)
    sim.run(until=done2)
    assert j2.started_at == pytest.approx(10.0)
    assert sim.now == pytest.approx(15.0)
    assert j2.queue_wait() == pytest.approx(10.0)


def test_walltime_kill():
    sim = Simulator()
    s = sched(sim)
    job = pend(make_job(sim, walltime=30), sim)
    done = s.submit(job, runtime=100.0)
    finished = sim.run(until=done)
    assert finished.state is JobState.FAILED
    assert "walltime" in finished.failure_reason
    assert sim.now == pytest.approx(30.0)
    assert s.jobs_failed == 1


def test_backfill_small_job_jumps_queue():
    sim = Simulator()
    s = sched(sim, cores=4)
    # j1 occupies all 4 cores for 100 s.
    j1 = pend(make_job(sim, "j1", cores=4, walltime=100), sim)
    s.submit(j1, runtime=100.0)
    # j2 (head of queue) needs 4 cores -> must wait until t=100.
    j2 = pend(make_job(sim, "j2", cores=4, walltime=50), sim)
    s.submit(j2, runtime=50.0)
    # j3 needs 1 core for 100s -> cannot run (no free cores now).
    # After j1 finishes at t=100, j2 runs; j3 then backfills? No —
    # j3 should wait. But j4 with 0 free cores can't backfill either.
    # Instead: release happens at t=100; j2 takes all; j3 runs at 150.
    j3 = pend(make_job(sim, "j3", cores=1, walltime=100), sim)
    done3 = s.submit(j3, runtime=10.0)
    sim.run(until=done3)
    assert j3.started_at >= 150.0 - 1e-9


def test_backfill_uses_idle_cores_without_delaying_head():
    sim = Simulator()
    s = sched(sim, cores=4)
    # Running: 3 cores for 100 s (by walltime).
    j1 = pend(make_job(sim, "j1", cores=3, walltime=100), sim)
    s.submit(j1, runtime=100.0)
    # Head: needs 4 cores -> blocked until t=100 (shadow time).
    j2 = pend(make_job(sim, "j2", cores=4, walltime=10), sim)
    s.submit(j2, runtime=10.0)
    # Small short job: 1 core, walltime 50 -> ends before shadow, backfills.
    j3 = pend(make_job(sim, "j3", cores=1, walltime=50), sim)
    done3 = s.submit(j3, runtime=20.0)
    sim.run(until=done3)
    assert j3.started_at == pytest.approx(0.0)
    assert s.jobs_backfilled == 1
    # And the head was not delayed:
    sim.run()
    assert j2.started_at == pytest.approx(100.0)


def test_backfill_refuses_job_that_would_delay_head():
    sim = Simulator()
    s = sched(sim, cores=4)
    j1 = pend(make_job(sim, "j1", cores=3, walltime=100), sim)
    s.submit(j1, runtime=100.0)
    j2 = pend(make_job(sim, "j2", cores=4, walltime=10), sim)
    s.submit(j2, runtime=10.0)
    # 2-core job with walltime 200: ends after shadow AND needs more
    # than the spare core at shadow time -> must NOT backfill.
    j3 = pend(make_job(sim, "j3", cores=2, walltime=200), sim)
    s.submit(j3, runtime=5.0)
    sim.run()
    assert j3.started_at > 100.0 - 1e-9
    assert s.jobs_backfilled == 0


def test_backfill_disabled_is_pure_fifo():
    sim = Simulator()
    s = BatchScheduler(sim, NodePool([ComputeNode("n0", 4)]),
                       backfill=False)
    j1 = pend(make_job(sim, "j1", cores=3, walltime=100), sim)
    s.submit(j1, runtime=100.0)
    j2 = pend(make_job(sim, "j2", cores=4, walltime=10), sim)
    s.submit(j2, runtime=10.0)
    # This tiny job would backfill under EASY; pure FIFO makes it wait.
    j3 = pend(make_job(sim, "j3", cores=1, walltime=50), sim)
    s.submit(j3, runtime=20.0)
    sim.run()
    assert s.jobs_backfilled == 0
    assert j3.started_at >= 110.0 - 1e-9  # after j1 (100 s) and j2 (10 s)


def test_cancel_queued_job():
    sim = Simulator()
    s = sched(sim, cores=1)
    j1 = pend(make_job(sim, "j1"), sim)
    s.submit(j1, runtime=100.0)
    j2 = pend(make_job(sim, "j2"), sim)
    done2 = s.submit(j2, runtime=10.0)
    s.cancel("j2")
    finished = sim.run(until=done2)
    assert finished.state is JobState.CANCELED
    assert s.queued_jobs == 0


def test_cancel_running_job_frees_cores():
    sim = Simulator()
    s = sched(sim, cores=1)
    j1 = pend(make_job(sim, "j1"), sim)
    s.submit(j1, runtime=1000.0)

    def canceller():
        yield sim.timeout(5.0)
        s.cancel("j1")

    sim.process(canceller())
    j2 = pend(make_job(sim, "j2"), sim)
    done2 = s.submit(j2, runtime=10.0)
    sim.run(until=done2)
    assert j1.state is JobState.CANCELED
    assert j2.started_at == pytest.approx(5.0)


def test_cancel_unknown_job():
    sim = Simulator()
    s = sched(sim)
    with pytest.raises(JobNotFound):
        s.cancel("ghost")


def test_submit_validation():
    sim = Simulator()
    s = sched(sim, cores=2)
    job = make_job(sim)  # still UNSUBMITTED
    with pytest.raises(GridError, match="PENDING"):
        s.submit(job, runtime=1.0)
    big = pend(make_job(sim, "big", cores=99), sim)
    with pytest.raises(GridError, match="only has"):
        s.submit(big, runtime=1.0)
