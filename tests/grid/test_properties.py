"""Property-based tests: RSL round-trips and scheduler invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.grid.rsl import generate_rsl, parse_rsl
from repro.simkernel import Simulator

safe_str = st.from_regex(r'[A-Za-z0-9_./ -]{1,20}', fullmatch=True)


@st.composite
def descriptions(draw):
    return JobDescription(
        executable="/" + draw(st.from_regex(r"[A-Za-z0-9_/.-]{1,20}",
                                            fullmatch=True)).strip("/"),
        arguments=draw(st.lists(safe_str, max_size=5)),
        count=draw(st.integers(1, 64)),
        max_wall_time=draw(st.integers(1, 10**6)),
        queue=draw(st.sampled_from(["normal", "debug", "long"])),
        stdout=draw(safe_str),
        stderr=draw(st.one_of(st.just(""), safe_str)),
        directory=draw(st.one_of(st.just(""), safe_str)),
        job_type=draw(st.sampled_from(["single", "mpi", "multiple"])),
        project=draw(st.one_of(st.just(""), safe_str)),
        environment=draw(st.lists(safe_str, max_size=3)),
        max_memory=draw(st.integers(0, 10**6)),
    )


@settings(max_examples=80)
@given(descriptions())
def test_rsl_roundtrip_property(desc):
    assert parse_rsl(generate_rsl(desc)) == desc


jobspecs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100),   # arrival
        st.integers(1, 8),                       # cores
        st.floats(min_value=0.1, max_value=50),  # runtime
        st.integers(1, 100),                     # walltime
    ),
    min_size=1, max_size=15,
)


@settings(max_examples=30, deadline=None)
@given(jobspecs, st.integers(4, 16))
def test_scheduler_invariants(specs, total_cores):
    """All jobs terminate; cores never oversubscribed; walltime respected."""
    sim = Simulator()
    pool = NodePool([ComputeNode("n", total_cores)])
    scheduler = BatchScheduler(sim, pool)
    jobs = []

    def submit_later(i, arrival, cores, runtime, walltime):
        yield sim.timeout(arrival)
        desc = JobDescription(executable="/x", count=min(cores, total_cores),
                              max_wall_time=walltime)
        job = GridJob(f"j{i}", desc, "/CN=t", sim.now)
        job.transition(JobState.STAGE_IN, sim.now)
        job.transition(JobState.PENDING, sim.now)
        jobs.append(job)
        finished = yield scheduler.submit(job, runtime)
        # Walltime enforcement: actual occupancy never exceeds walltime.
        occupancy = finished.finished_at - finished.started_at
        assert occupancy <= walltime + 1e-6
        if runtime > walltime:
            assert finished.state is JobState.FAILED
        else:
            assert finished.state is JobState.DONE
            assert occupancy == pytest.approx(runtime)

    for i, (arrival, cores, runtime, walltime) in enumerate(specs):
        sim.process(submit_later(i, arrival, cores, runtime, walltime))
    sim.run()
    assert len(jobs) == len(specs)
    assert all(j.is_terminal for j in jobs)
    assert pool.free_cores == total_cores  # everything released
    assert scheduler.queued_jobs == 0
    assert scheduler.running_jobs == 0


@settings(max_examples=30, deadline=None)
@given(jobspecs)
def test_fifo_head_never_delayed_by_backfill(specs):
    """EASY invariant: with vs without backfill, the queue head's start
    time (per arrival order) never gets worse than walltime-reservation
    predicts.  We verify the weaker, directly-checkable form: every job
    eventually starts and the pool empties."""
    sim = Simulator()
    pool = NodePool([ComputeNode("n", 8)])
    scheduler = BatchScheduler(sim, pool)

    def submit_later(i, arrival, cores, runtime, walltime):
        yield sim.timeout(arrival)
        desc = JobDescription(executable="/x", count=min(cores, 8),
                              max_wall_time=walltime)
        job = GridJob(f"j{i}", desc, "/CN=t", sim.now)
        job.transition(JobState.STAGE_IN, sim.now)
        job.transition(JobState.PENDING, sim.now)
        yield scheduler.submit(job, min(runtime, walltime))

    for i, spec in enumerate(specs):
        sim.process(submit_later(i, *spec))
    sim.run()
    assert scheduler.jobs_completed == len(specs)
