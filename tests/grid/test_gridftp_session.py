"""GridFtpSession/pool: reuse, idle-close, clamping, 3pt parity."""

import pytest

from repro.core.context import RequestContext
from repro.errors import TransferError
from repro.faults import FaultSpec, fault_plane
from repro.grid import build_testbed
from repro.grid.gridftp import GridFtpServer, GridFtpSession, \
    GridFtpSessionPool
from repro.security.gsi import GsiAcceptor
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges
from repro.units import KB, Mbps
from repro.workloads import make_payload


def quick_testbed(**kw):
    kw.setdefault("n_sites", 2)
    kw.setdefault("nodes_per_site", 2)
    kw.setdefault("cores_per_node", 4)
    kw.setdefault("appliance_uplink", Mbps(10))
    return build_testbed(**kw)


def logon(tb, username="ada", passphrase="pw"):
    tb.new_grid_identity(username, passphrase)
    client = tb.appliance_host

    def flow():
        key, proxy, ee = yield tb.myproxy.logon(client, username, passphrase,
                                                lifetime=3600.0)
        return [proxy, ee]

    chain = tb.sim.run(until=tb.sim.process(flow()))
    return chain, client


# ------------------------------------------------------------- sessions

def test_session_reuse_handshakes_once():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")
    pool = GridFtpSessionPool(tb.sim, enabled=True)
    payload = make_payload("echo", size=int(KB(8)))

    def flow():
        yield pool.put(ftp, client, chain, "/a", payload)
        yield pool.put(ftp, client, chain, "/b", payload)
        data = yield pool.get(ftp, client, chain, "/a")
        return data

    data = tb.sim.run(until=tb.sim.process(flow()))
    assert data == payload
    session = pool.session(ftp, client, chain)
    assert session.handshakes == 1
    assert session.ops == 3
    assert pool.open_sessions == 1
    # Control cost: one handshake + per-op command bytes, not three
    # handshakes.
    handshake = GsiAcceptor.handshake_bytes(chain)
    assert ftp.control_bytes == (handshake + ftp.CONTROL_BYTES
                                 + 2 * GridFtpSession.SESSION_OP_BYTES)
    assert bus(tb.sim).counts().get("gridftp.session_open") == 1


def test_session_concurrent_first_ops_share_one_handshake():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")
    pool = GridFtpSessionPool(tb.sim, enabled=True)
    payload = make_payload("echo", size=int(KB(4)))

    def flow():
        a = pool.put(ftp, client, chain, "/a", payload)
        b = pool.put(ftp, client, chain, "/b", payload)
        yield tb.sim.all_of([a, b])

    tb.sim.run(until=tb.sim.process(flow()))
    assert pool.session(ftp, client, chain).handshakes == 1


def test_session_idle_timeout_rehandshakes():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")
    pool = GridFtpSessionPool(tb.sim, enabled=True, idle_timeout=60.0)
    payload = make_payload("echo", size=int(KB(4)))

    def flow():
        yield pool.put(ftp, client, chain, "/a", payload)
        yield tb.sim.timeout(120.0)  # idle past the timeout
        yield pool.put(ftp, client, chain, "/b", payload)

    tb.sim.run(until=tb.sim.process(flow()))
    session = pool.session(ftp, client, chain)
    assert session.handshakes == 2
    assert session.ops == 2


def test_disabled_pool_is_timing_identical_to_direct_ops():
    def run(via_pool: bool) -> float:
        tb = quick_testbed(sim=Simulator(seed=7))
        chain, client = logon(tb)
        ftp = tb.ftp("ncsa")
        payload = make_payload("echo", size=int(KB(16)))
        pool = GridFtpSessionPool(tb.sim, enabled=False)

        def flow():
            if via_pool:
                yield pool.put(ftp, client, chain, "/x", payload, streams=2)
                yield pool.get(ftp, client, chain, "/x")
            else:
                yield ftp.put(client, chain, "/x", payload, streams=2)
                yield ftp.get(client, chain, "/x")

        tb.sim.run(until=tb.sim.process(flow()))
        return tb.sim.now

    assert run(via_pool=True) == run(via_pool=False)


def test_session_invalidated_by_failure():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")
    pool = GridFtpSessionPool(tb.sim, enabled=True)
    payload = make_payload("echo", size=int(KB(4)))
    fault_plane(tb.sim).add(
        FaultSpec("site.outage", target="ncsa", window=(5.0, 1e9)))

    def flow():
        yield pool.put(ftp, client, chain, "/a", payload)
        yield tb.sim.timeout(10.0)  # into the outage window
        yield pool.put(ftp, client, chain, "/b", payload)

    with pytest.raises(TransferError):
        tb.sim.run(until=tb.sim.process(flow()))
    assert not pool.session(ftp, client, chain).open
    assert pool.open_sessions == 0


def test_new_credential_replaces_session():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")
    pool = GridFtpSessionPool(tb.sim, enabled=True)
    payload = make_payload("echo", size=int(KB(4)))

    def flow(use_chain):
        def op():
            yield pool.put(ftp, client, use_chain, "/a", payload)
        return tb.sim.process(op())

    tb.sim.run(until=flow(chain))
    first = pool.session(ftp, client, chain)
    chain2, _ = logon(tb, username="ada", passphrase="pw")  # fresh proxy
    tb.sim.run(until=flow(chain2))
    second = pool.session(ftp, client, chain2)
    assert second is not first
    assert not first.open


# ------------------------------------------------------- streams clamping

def test_put_clamps_streams_to_payload():
    tb = quick_testbed()
    chain, client = logon(tb)
    ftp = tb.ftp("ncsa")

    def flow():
        yield ftp.put(client, chain, "/tiny", b"abc", streams=8)

    tb.sim.run(until=tb.sim.process(flow()))
    # Only 3 data connections ever opened — no zero-byte streams.
    assert gauges(tb.sim).gauge("gridftp.ncsa.streams").peak() == 3
    put_events = bus(tb.sim).events(kind="gridftp.put")
    assert put_events[-1].fields["streams"] == 3
    assert tb.site("ncsa").read_file("/tiny") == b"abc"


def test_put_rejects_nonpositive_streams():
    tb = quick_testbed()
    chain, client = logon(tb)
    with pytest.raises(TransferError):
        tb.ftp("ncsa").put(client, chain, "/x", b"data", streams=0)


def test_effective_streams_floor_is_one():
    assert GridFtpServer.effective_streams(4, 0) == 1
    assert GridFtpServer.effective_streams(4, 2) == 2
    assert GridFtpServer.effective_streams(4, 100) == 4


# --------------------------------------------------- third-party transfer

def _stage_source(tb, chain, client, path, payload):
    def flow():
        yield tb.ftp("ncsa").put(client, chain, path, payload)

    tb.sim.run(until=tb.sim.process(flow()))


def test_third_party_transfer_traced_and_counted():
    tb = quick_testbed()
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(16)))
    _stage_source(tb, chain, client, "/src", payload)
    src, dst = tb.ftp("ncsa"), tb.ftp("sdsc")
    ctl_src0, ctl_dst0 = src.control_bytes, dst.control_bytes
    ctx = RequestContext.create(tb.sim)

    def flow():
        yield src.third_party_transfer(client, chain, "/src", dst, "/dst",
                                       ctx=ctx)

    tb.sim.run(until=tb.sim.process(flow()))
    assert tb.site("sdsc").read_file("/dst") == payload
    assert src.transfers_out == 1
    assert dst.transfers_in == 1
    # Control channels to both ends are accounted.
    assert src.control_bytes > ctl_src0
    assert dst.control_bytes > ctl_dst0
    # Span + telemetry parity with put/get.
    assert any(s.name == "gridftp:3pt" for s in ctx.spans())
    events = bus(tb.sim).events(kind="gridftp.third_party")
    assert len(events) == 1
    assert events[0].fields["nbytes"] == len(payload)
    # The head-to-head data connection showed up on both stream gauges.
    assert gauges(tb.sim).gauge("gridftp.sdsc.streams").peak() >= 1


def test_third_party_transfer_respects_site_outage():
    tb = quick_testbed()
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(4)))
    _stage_source(tb, chain, client, "/src", payload)
    fault_plane(tb.sim).add(
        FaultSpec("site.outage", target="sdsc", window=(0.0, 1e9)))

    def flow():
        yield tb.ftp("ncsa").third_party_transfer(
            client, chain, "/src", tb.ftp("sdsc"), "/dst")

    with pytest.raises(TransferError, match="outage"):
        tb.sim.run(until=tb.sim.process(flow()))


def test_third_party_transfer_abort_fault():
    tb = quick_testbed()
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(4)))
    _stage_source(tb, chain, client, "/src", payload)
    fault_plane(tb.sim).add(FaultSpec("gridftp.abort", target="ncsa"))

    def flow():
        yield tb.ftp("ncsa").third_party_transfer(
            client, chain, "/src", tb.ftp("sdsc"), "/dst")

    with pytest.raises(TransferError, match="aborted"):
        tb.sim.run(until=tb.sim.process(flow()))
    assert not tb.site("sdsc").has_file("/dst")
