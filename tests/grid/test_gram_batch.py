"""GRAM batch operations + status/cancel fault/trace parity."""

import pytest

from repro.core.context import RequestContext
from repro.errors import SubmissionRefused
from repro.faults import FaultSpec, fault_plane
from repro.grid import build_testbed
from repro.grid.job import JobState
from repro.grid.rsl import JobDescription, generate_rsl
from repro.telemetry.events import bus
from repro.units import Mbps
from repro.workloads import make_payload


def quick_testbed(**kw):
    kw.setdefault("n_sites", 2)
    kw.setdefault("nodes_per_site", 2)
    kw.setdefault("cores_per_node", 4)
    kw.setdefault("appliance_uplink", Mbps(10))
    return build_testbed(**kw)


def logon(tb, username="ada", passphrase="pw"):
    tb.new_grid_identity(username, passphrase)
    client = tb.appliance_host

    def flow():
        key, proxy, ee = yield tb.myproxy.logon(client, username, passphrase,
                                                lifetime=3600.0)
        return [proxy, ee]

    chain = tb.sim.run(until=tb.sim.process(flow()))
    return chain, client


def submit_sleepers(tb, chain, client, runtimes, site="ncsa"):
    """Stage a sleep payload and submit one job per runtime; ids."""
    payload = make_payload("sleep")
    gram = tb.gatekeepers[site]

    def flow():
        yield tb.ftp(site).put(client, chain, "/scratch/sleep.bin", payload)
        ids = []
        for i, runtime in enumerate(runtimes):
            rsl = generate_rsl(JobDescription(
                executable="/scratch/sleep.bin",
                arguments=[str(runtime)],
                stdout=f"/scratch/out{i}.txt"))
            ids.append((yield gram.submit(client, chain, rsl)))
        return ids

    return tb.sim.run(until=tb.sim.process(flow()))


# ------------------------------------------------------------ batch ops

def test_status_many_matches_individual_status():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [5.0, 50.0])
    gram = tb.gatekeepers["ncsa"]

    def flow():
        yield tb.sim.timeout(20.0)  # first done, second still running
        batch = yield gram.status_many(client, ids)
        singles = {}
        for job_id in ids:
            singles[job_id] = (yield gram.status(client, job_id))
        return batch, singles

    batch, singles = tb.sim.run(until=tb.sim.process(flow()))
    assert batch == singles
    assert batch[ids[0]] is JobState.DONE
    assert batch[ids[1]] is JobState.ACTIVE


def test_status_many_unknown_job_maps_to_none():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [1.0])
    gram = tb.gatekeepers["ncsa"]

    def flow():
        return (yield gram.status_many(client, ids + ["job-bogus"]))

    states = tb.sim.run(until=tb.sim.process(flow()))
    assert states["job-bogus"] is None
    assert states[ids[0]] is not None


def test_fetch_output_many_matches_individual_fetches():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [2.0, 3.0])
    gram = tb.gatekeepers["ncsa"]

    def flow():
        yield tb.sim.timeout(30.0)  # both done
        batch = yield gram.fetch_output_many(client, ids + ["job-lost"])
        singles = {}
        for job_id in ids:
            singles[job_id] = (yield gram.fetch_output(client, job_id))
        return batch, singles

    batch, singles = tb.sim.run(until=tb.sim.process(flow()))
    assert batch["job-lost"] is None
    for job_id in ids:
        assert batch[job_id] == singles[job_id]
    assert bus(tb.sim).counts().get("gram.fetch_output_many") == 1


def test_batch_control_bytes_amortize():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [1.0] * 8)
    gram = tb.gatekeepers["ncsa"]

    def measure(op_factory):
        before_bytes = gram.control_bytes
        before_cpu = gram.head_cpu_modeled
        tb.sim.run(until=tb.sim.process(op_factory()))
        return (gram.control_bytes - before_bytes,
                gram.head_cpu_modeled - before_cpu)

    def batched():
        yield gram.fetch_output_many(client, ids)

    def individual():
        for job_id in ids:
            yield gram.fetch_output(client, job_id)

    batch_bytes, batch_cpu = measure(batched)
    single_bytes, single_cpu = measure(individual)
    # One envelope + marginal per-item bytes beats 8 full envelopes.
    assert batch_bytes < single_bytes / 2
    assert batch_cpu < single_cpu / 2
    assert gram.exchanges >= 9  # 1 batch + 8 singles (plus submits)


def test_empty_batch_is_free():
    tb = quick_testbed()
    chain, client = logon(tb)
    gram = tb.gatekeepers["ncsa"]
    before = (gram.control_bytes, gram.exchanges)

    def flow():
        states = yield gram.status_many(client, [])
        outputs = yield gram.fetch_output_many(client, [])
        return states, outputs

    states, outputs = tb.sim.run(until=tb.sim.process(flow()))
    assert states == {} and outputs == {}
    assert (gram.control_bytes, gram.exchanges) == before


# ----------------------------------------- status/cancel fault + traces

def test_status_and_cancel_fail_during_outage():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [300.0])
    gram = tb.gatekeepers["ncsa"]
    fault_plane(tb.sim).add(
        FaultSpec("site.outage", target="ncsa", window=(0.0, 1e9)))

    def status_flow():
        yield gram.status(client, ids[0])

    def cancel_flow():
        yield gram.cancel(client, ids[0])

    def batch_flow():
        yield gram.status_many(client, ids)

    for flow in (status_flow, cancel_flow, batch_flow):
        with pytest.raises(SubmissionRefused, match="outage"):
            tb.sim.run(until=tb.sim.process(flow()))


def test_status_and_cancel_record_spans():
    tb = quick_testbed()
    chain, client = logon(tb)
    ids = submit_sleepers(tb, chain, client, [300.0])
    gram = tb.gatekeepers["ncsa"]
    ctx = RequestContext.create(tb.sim)

    def flow():
        yield gram.status(client, ids[0], ctx=ctx)
        yield gram.cancel(client, ids[0], ctx=ctx)

    tb.sim.run(until=tb.sim.process(flow()))
    names = [s.name for s in ctx.spans()]
    assert "gram:status" in names
    assert "gram:cancel" in names
