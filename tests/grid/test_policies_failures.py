"""Tests for queue policies, node failure injection, third-party FTP,
and certificate revocation."""

import pytest

from repro.errors import CertificateInvalid, GridError, JobError
from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid import build_testbed
from repro.grid.node import ComputeNode, NodePool
from repro.grid.rsl import generate_rsl
from repro.grid.site import QueuePolicy
from repro.simkernel import Simulator
from repro.units import KB, Mbps
from repro.workloads import make_payload


def quick_testbed(**kw):
    kw.setdefault("n_sites", 2)
    kw.setdefault("nodes_per_site", 2)
    kw.setdefault("cores_per_node", 4)
    kw.setdefault("appliance_uplink", Mbps(10))
    return build_testbed(**kw)


def logon(tb, username="ada"):
    tb.new_grid_identity(username, "pw")
    client = tb.appliance_host

    def flow():
        key, proxy, ee = yield tb.myproxy.logon(client, username, "pw",
                                                lifetime=3600.0)
        return [proxy, ee]

    return tb.sim.run(until=tb.sim.process(flow())), client


# ---------------------------------------------------------------- queue policy

def test_queue_walltime_cap_enforced():
    tb = quick_testbed()
    site = tb.site("ncsa")
    with pytest.raises(GridError, match="caps walltime"):
        site.create_job(JobDescription(executable="/x", queue="debug",
                                       max_wall_time=7200), owner="/CN=a")
    # Inside the cap it goes through.
    job = site.create_job(JobDescription(executable="/x", queue="debug",
                                         max_wall_time=600), owner="/CN=a")
    assert job.description.queue == "debug"


def test_debug_queue_jumps_ahead():
    """Debug-queue jobs are served before queued normal jobs."""
    sim = Simulator()
    pool = NodePool([ComputeNode("n", 1)])
    sched = BatchScheduler(sim, pool)

    def pend(jid, walltime=100):
        j = GridJob(jid, JobDescription(executable="/x",
                                        max_wall_time=walltime),
                    "/CN=t", sim.now)
        j.transition(JobState.STAGE_IN, sim.now)
        j.transition(JobState.PENDING, sim.now)
        return j

    sched.submit(pend("running"), runtime=50.0, priority=10)
    sched.submit(pend("normal"), runtime=10.0, priority=10)
    debug = pend("debug")
    done = sched.submit(debug, runtime=10.0, priority=0)
    sim.run(until=done)
    # Debug started right after the running job, before "normal".
    assert debug.started_at == pytest.approx(50.0)


def test_custom_queue_policy():
    tb = quick_testbed()
    site = tb.site("ncsa")
    site.queues["gpu"] = QueuePolicy("gpu", max_walltime=600, priority=5)
    job = site.create_job(JobDescription(executable="/x", queue="gpu",
                                         max_wall_time=300), owner="/CN=a")
    assert job.description.queue == "gpu"
    assert "gpu" in site.info()["queues"]


# ---------------------------------------------------------------- node failure

def test_node_failure_kills_running_jobs():
    tb = quick_testbed()
    chain, client = logon(tb)
    site = tb.site("ncsa")
    payload = make_payload("fixed", size=1024, runtime="500")
    gram, ftp = tb.gram("ncsa"), tb.ftp("ncsa")
    rsl = generate_rsl(JobDescription(executable="/exe", count=8,
                                      max_wall_time=3600))

    def flow():
        yield ftp.put(client, chain, "/exe", payload)
        job_id = yield gram.submit(client, chain, rsl)
        yield tb.sim.timeout(10.0)
        killed = site.fail_node(site.pool.nodes[0].name)
        job = yield gram.completion_event(job_id)
        return killed, job

    killed, job = tb.sim.run(until=tb.sim.process(flow()))
    assert job.job_id in killed
    assert job.state is JobState.FAILED
    assert "failed" in job.failure_reason
    # The pool shrank but stayed consistent.
    assert site.pool.total_cores == 4
    assert site.pool.free_cores == 4


def test_node_failure_spares_other_nodes_jobs():
    sim = Simulator()
    pool = NodePool([ComputeNode("a", 2), ComputeNode("b", 2)])
    sched = BatchScheduler(sim, pool)

    def pend(jid, cores):
        j = GridJob(jid, JobDescription(executable="/x", count=cores,
                                        max_wall_time=100),
                    "/CN=t", sim.now)
        j.transition(JobState.STAGE_IN, sim.now)
        j.transition(JobState.PENDING, sim.now)
        return j

    j1 = pend("on-a", 2)   # fills node a
    j2 = pend("on-b", 2)   # fills node b
    d1 = sched.submit(j1, runtime=50.0)
    d2 = sched.submit(j2, runtime=50.0)

    def failer():
        yield sim.timeout(10.0)
        killed = sched.fail_node("a")
        assert killed == ["on-a"]

    sim.process(failer())
    sim.run()
    assert j1.state is JobState.FAILED
    assert j2.state is JobState.DONE


def test_node_failure_fails_now_unsatisfiable_queue():
    sim = Simulator()
    pool = NodePool([ComputeNode("a", 4), ComputeNode("b", 4)])
    sched = BatchScheduler(sim, pool)

    def pend(jid, cores):
        j = GridJob(jid, JobDescription(executable="/x", count=cores,
                                        max_wall_time=100), "/CN=t", sim.now)
        j.transition(JobState.STAGE_IN, sim.now)
        j.transition(JobState.PENDING, sim.now)
        return j

    blocker = pend("blocker", 8)
    sched.submit(blocker, runtime=50.0)
    wide = pend("wide", 8)   # queued behind blocker
    done = sched.submit(wide, runtime=10.0)

    def failer():
        yield sim.timeout(5.0)
        sched.fail_node("a")  # total capacity falls to 4 < 8

    sim.process(failer())
    job = sim.run(until=done)
    assert job.state is JobState.FAILED
    assert "capacity lost" in job.failure_reason


def test_remove_node_validation():
    pool = NodePool([ComputeNode("only", 2)])
    with pytest.raises(GridError, match="last node"):
        pool.remove_node(pool.nodes[0])
    pool2 = NodePool([ComputeNode("a", 2), ComputeNode("b", 2)])
    pool2.allocate(3)
    with pytest.raises(GridError, match="allocations"):
        pool2.remove_node(pool2.nodes[0])
    with pytest.raises(GridError, match="no node named"):
        pool2.find_node("ghost")


# ---------------------------------------------------------------- third-party ftp

def test_third_party_transfer_moves_site_to_site():
    tb = quick_testbed()
    chain, client = logon(tb)
    src, dst = tb.ftp("ncsa"), tb.ftp("sdsc")
    payload = make_payload("echo", size=int(KB(64)))

    def flow():
        yield src.put(client, chain, "/data", payload)
        out_before = client.net_bytes_out()
        n = yield src.third_party_transfer(client, chain, "/data", dst,
                                           "/staged")
        return n, client.net_bytes_out() - out_before

    n, client_bytes = tb.sim.run(until=tb.sim.process(flow()))
    assert n == len(payload)
    assert dst.site.read_file("/staged") == payload
    # The data never flows through the client: only control traffic.
    assert client_bytes < KB(32)


def test_third_party_missing_source():
    tb = quick_testbed()
    chain, client = logon(tb)

    def flow():
        yield tb.ftp("ncsa").third_party_transfer(
            client, chain, "/ghost", tb.ftp("sdsc"), "/x")

    from repro.errors import TransferError
    with pytest.raises(TransferError):
        tb.sim.run(until=tb.sim.process(flow()))


# ---------------------------------------------------------------- revocation

def test_revoked_certificate_rejected_after_crl_refresh():
    tb = quick_testbed()
    chain, client = logon(tb)
    site = tb.site("ncsa")

    def use():
        yield tb.ftp("ncsa").put(client, chain, "/f", b"x" * 100)

    tb.sim.run(until=tb.sim.process(use()))  # works before revocation

    ee = chain[-1]
    tb.ca.revoke(ee)
    assert tb.ca.is_revoked(ee)
    # Until the site refreshes its CRL, the credential still works.
    tb.sim.run(until=tb.sim.process(use()))
    site.acceptor.update_crl(tb.ca)
    with pytest.raises(CertificateInvalid, match="revoked"):
        tb.sim.run(until=tb.sim.process(use()))


def test_crl_only_affects_revoked_serials():
    tb = quick_testbed()
    chain_a, client = logon(tb, "ada")
    chain_b, _ = logon(tb, "bob")
    tb.ca.revoke(chain_a[-1])
    site = tb.site("ncsa")
    site.acceptor.update_crl(tb.ca)

    def use(chain, path):
        yield tb.ftp("ncsa").put(client, chain, path, b"x")

    with pytest.raises(CertificateInvalid):
        tb.sim.run(until=tb.sim.process(use(chain_a, "/a")))
    tb.sim.run(until=tb.sim.process(use(chain_b, "/b")))  # bob unaffected
