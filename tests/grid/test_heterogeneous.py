"""Tests for heterogeneous node speeds."""

import pytest

from repro.grid import BatchScheduler, GridJob, JobDescription, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.grid.site import GridSite
from repro.hardware import Network
from repro.simkernel import Simulator


def pend(sim, jid="j", cores=1, walltime=1000):
    job = GridJob(jid, JobDescription(executable="/x", count=cores,
                                      max_wall_time=walltime),
                  "/CN=t", sim.now)
    job.transition(JobState.STAGE_IN, sim.now)
    job.transition(JobState.PENDING, sim.now)
    return job


def test_fast_node_shortens_runtime():
    sim = Simulator()
    pool = NodePool([ComputeNode("fast", 4, speed_factor=2.0)])
    sched = BatchScheduler(sim, pool)
    job = pend(sim)
    done = sched.submit(job, runtime=100.0)
    finished = sim.run(until=done)
    assert finished.state is JobState.DONE
    assert sim.now == pytest.approx(50.0)  # 100 s of work at 2x speed


def test_spanning_job_paced_by_slowest_node():
    sim = Simulator()
    pool = NodePool([ComputeNode("fast", 2, speed_factor=2.0),
                     ComputeNode("slow", 2, speed_factor=0.5)])
    sched = BatchScheduler(sim, pool)
    job = pend(sim, cores=4)  # spans both nodes
    done = sched.submit(job, runtime=100.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(200.0)  # slow node sets the pace


def test_slow_node_can_cause_walltime_kill():
    sim = Simulator()
    pool = NodePool([ComputeNode("slow", 4, speed_factor=0.5)])
    sched = BatchScheduler(sim, pool)
    job = pend(sim, walltime=150)
    done = sched.submit(job, runtime=100.0)  # effectively 200 s > 150
    finished = sim.run(until=done)
    assert finished.state is JobState.FAILED
    assert "walltime" in finished.failure_reason
    assert sim.now == pytest.approx(150.0)


def test_site_node_speed_parameter():
    sim = Simulator()
    net = Network(sim)
    site = GridSite(sim, "fastsite", net, nodes=2, cores_per_node=4,
                    node_speed=2.0)
    assert all(n.speed_factor == 2.0 for n in site.pool.nodes)
