"""NotifyQueue: durable state rows, delivery timing, replay, waiters."""

import pytest

from repro.core.watchdog import await_notification
from repro.db.engine import Database
from repro.errors import WatchdogTimeout
from repro.grid.notify import (
    JOB_STATES_TABLE, NOTIFY_QUEUE_TABLE, NotifyQueue,
)
from repro.simkernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges


def make_queue(sim, propagation=0.5):
    return NotifyQueue(sim, Database(), propagation=propagation)


def test_publish_delivers_after_one_propagation_delay():
    sim = Simulator()
    queue = make_queue(sim, propagation=0.5)

    def flow():
        yield sim.timeout(3.0)
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)

    sim.run(until=sim.process(flow()))
    sim.run()  # drain the delivery timeout
    assert queue.published == 1 and queue.delivered == 1
    assert queue.depth == 0
    deliver = bus(sim).first("notify.deliver", job_id="ncsa-job-00001")
    assert deliver.ts == pytest.approx(3.5)
    assert deliver.fields["lag"] == pytest.approx(0.5)
    # The durable queue row records both timestamps.
    row, = queue.db.select(NOTIFY_QUEUE_TABLE, lambda r: r["seq"] == 1)
    assert row["published_at"] == pytest.approx(3.0)
    assert row["delivered_at"] == pytest.approx(3.5)
    assert gauges(sim).gauge("notify.queue.depth").current == 0


def test_state_row_written_in_the_publish_frame():
    sim = Simulator()
    queue = make_queue(sim)

    def flow():
        queue.publish("ncsa", "ncsa-job-00001", "pending")
        # Same frame: the durable row already says so, pre-delivery.
        row = queue.job_state("ncsa-job-00001")
        assert row["state"] == "pending" and not row["terminal"]
        yield sim.timeout(4.0)
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)
        row = queue.job_state("ncsa-job-00001")
        assert row["state"] == "done" and row["terminal"]

    sim.run(until=sim.process(flow()))
    # Upsert, not append: one job_states row per job.
    rows = queue.db.select(JOB_STATES_TABLE, lambda r: True)
    assert len(rows) == 1
    assert rows[0]["updated_at"] == pytest.approx(4.0)


def test_subscriber_before_publish_gets_terminal_payload():
    sim = Simulator()
    queue = make_queue(sim, propagation=0.5)
    got = {}

    def subscriber():
        payload = yield queue.subscribe("ncsa", "ncsa-job-00001")
        got.update(payload, at=sim.now)

    def publisher():
        yield sim.timeout(2.0)
        queue.publish("ncsa", "ncsa-job-00001", "active")
        yield sim.timeout(8.0)
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)

    sim.process(publisher(), name="pub")
    sim.run(until=sim.process(subscriber(), name="sub"))
    # Only the terminal message fires the waiter, one delay after it.
    assert got["at"] == pytest.approx(10.5)
    assert got["state"] == "done" and not got["error"]
    assert got["delivered_at"] == pytest.approx(10.5)


def test_late_subscriber_replays_from_durable_table():
    sim = Simulator()
    queue = make_queue(sim)
    got = {}

    def flow():
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)
        yield sim.timeout(30.0)  # delivery long past
        payload = yield queue.subscribe("ncsa", "ncsa-job-00001")
        got.update(payload, at=sim.now)

    sim.run(until=sim.process(flow()))
    # Completed straight from the table — no extra delivery wait.
    assert got["at"] == pytest.approx(30.0)
    assert got["state"] == "done"
    assert queue.replayed == 1
    assert bus(sim).first("notify.replay", job_id="ncsa-job-00001")


def test_replay_of_lost_job_carries_the_error_flag():
    sim = Simulator()
    queue = make_queue(sim)
    got = {}

    def flow():
        queue.publish("ncsa", "ncsa-job-00001", "lost",
                      terminal=True, error=True)
        yield sim.timeout(5.0)
        payload = yield queue.subscribe("ncsa", "ncsa-job-00001")
        got.update(payload)

    sim.run(until=sim.process(flow()))
    assert got["state"] == "lost" and got["error"]


def test_unsubscribe_is_idempotent_and_detaches_the_waiter():
    sim = Simulator()
    queue = make_queue(sim)

    def flow():
        waiter = queue.subscribe("ncsa", "ncsa-job-00001")
        queue.unsubscribe("ncsa-job-00001", waiter)
        queue.unsubscribe("ncsa-job-00001", waiter)  # idempotent
        queue.unsubscribe("never-seen", waiter)      # unknown key too
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)
        yield sim.timeout(2.0)
        assert not waiter.triggered  # detached: delivery skipped it

    sim.run(until=sim.process(flow()))


def test_capability_registry():
    sim = Simulator()
    queue = make_queue(sim)
    assert not queue.site_capable("ncsa")
    queue.attach_site("ncsa")
    queue.attach_site("anl")
    assert queue.site_capable("ncsa") and not queue.site_capable("sdsc")
    assert queue.capable_sites == ["anl", "ncsa"]


def test_attached_idle_queue_schedules_nothing():
    sim = Simulator()
    queue = make_queue(sim)
    queue.attach_site("ncsa")
    assert sim.run() is None  # heap empty: zero events created
    assert sim.now == 0.0
    assert queue.db.select(JOB_STATES_TABLE, lambda r: True) == []
    assert queue.db.select(NOTIFY_QUEUE_TABLE, lambda r: True) == []
    assert bus(sim).events() == []


def test_validation_rejects_nonpositive_propagation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NotifyQueue(sim, Database(), propagation=0.0)


# ----------------------------------------------------- await_notification

def test_await_notification_returns_payload():
    sim = Simulator()
    queue = make_queue(sim, propagation=0.5)

    def publisher():
        yield sim.timeout(4.0)
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)

    def flow():
        note = yield await_notification(sim, queue, "ncsa",
                                        "ncsa-job-00001", timeout=60.0)
        return note, sim.now

    sim.process(publisher(), name="pub")
    note, at = sim.run(until=sim.process(flow(), name="flow"))
    assert note["state"] == "done" and not note["error"]
    assert at == pytest.approx(4.5)


def test_await_notification_timeout_detaches_then_fresh_waiter_wins():
    sim = Simulator()
    queue = make_queue(sim, propagation=0.5)
    history = []

    def flow():
        try:
            yield await_notification(sim, queue, "ncsa",
                                     "ncsa-job-00001", timeout=2.0)
        except WatchdogTimeout:
            history.append(("timeout", sim.now))
        # Re-subscribe the same job: the fresh waiter must get the
        # payload even though an abandoned one timed out earlier.
        note = yield await_notification(sim, queue, "ncsa",
                                        "ncsa-job-00001", timeout=60.0)
        history.append(("done", sim.now, note["state"]))

    def publisher():
        yield sim.timeout(6.0)
        queue.publish("ncsa", "ncsa-job-00001", "done", terminal=True)

    sim.process(publisher(), name="pub")
    sim.run(until=sim.process(flow(), name="flow"))
    assert history == [("timeout", 2.0), ("done", 6.5, "done")]
    # The abandoned waiter left no parked subscription behind.
    assert queue._waiters == {}


def test_await_notification_rejects_bad_timeout():
    sim = Simulator()
    queue = make_queue(sim)
    with pytest.raises(ValueError):
        await_notification(sim, queue, "ncsa", "j", timeout=0.0)
