"""Unit tests for the RSL job description language."""

import pytest

from repro.errors import RslError
from repro.grid import JobDescription, generate_rsl, parse_rsl


def test_minimal_description_defaults():
    d = JobDescription(executable="/bin/app")
    assert d.count == 1
    assert d.max_wall_time == 3600
    assert d.queue == "normal"
    assert d.stdout == "app.out"
    assert d.job_type == "single"


def test_roundtrip_full():
    d = JobDescription(
        executable="/scratch/hello.sh",
        arguments=["alice", "3", "with space"],
        count=4,
        max_wall_time=900,
        queue="debug",
        stdout="hello.out",
        stderr="hello.err",
        directory="/scratch",
        job_type="mpi",
        project="TG-ABC123",
        environment=["PATH=/bin", "LANG=C"],
        max_memory=2048,
    )
    assert parse_rsl(generate_rsl(d)) == d


def test_parse_example_text():
    text = ('&(executable="/bin/echo")(arguments="hi" "there")'
            '(count=2)(maxWallTime=60)(queue="normal")(stdout="e.out")')
    d = parse_rsl(text)
    assert d.executable == "/bin/echo"
    assert d.arguments == ["hi", "there"]
    assert d.count == 2
    assert d.max_wall_time == 60


def test_parse_tolerates_whitespace():
    text = '&  (executable = "/bin/x")\n  (count = 3)'
    d = parse_rsl(text)
    assert d.count == 3


def test_parse_bare_tokens():
    d = parse_rsl("&(executable=/bin/x)(count=2)")
    assert d.executable == "/bin/x"


def test_validation_errors():
    with pytest.raises(RslError):
        JobDescription(executable="")
    with pytest.raises(RslError):
        JobDescription(executable="/x", count=0)
    with pytest.raises(RslError):
        JobDescription(executable="/x", max_wall_time=0)
    with pytest.raises(RslError):
        JobDescription(executable="/x", max_memory=-1)
    with pytest.raises(RslError):
        JobDescription(executable="/x", arguments=[3])


def test_parse_errors():
    for bad in [
        "(executable=/x)",              # no '&'
        "&executable=/x",               # no parens
        "&(=5)",                        # no name
        "&(executable)",                # no '='
        '&(executable="/x"',            # unterminated clause
        '&(executable="/x)',            # unterminated string
        "&(count=1)",                   # missing executable
        "&(executable=/x)(count=a)",    # non-integer
        "&(executable=/x)(count=1)(count=2)",  # duplicate
        "&(executable=/x)(nonsense=1)",  # unknown attribute
        '&(executable="/a" "/b")',      # multi-valued single attr
        "&(executable=)",               # empty value list
    ]:
        with pytest.raises(RslError):
            parse_rsl(bad)


def test_quotes_in_strings_rejected():
    d = JobDescription(executable='/bin/x')
    d.arguments = ['say "hi"']
    with pytest.raises(RslError):
        generate_rsl(d)
