"""Tests for grid accounting and GridFTP parallel streams."""

import pytest

from repro.errors import GridError, TransferError
from repro.grid import JobDescription, build_testbed
from repro.grid.accounting import AccountingService
from repro.grid.rsl import generate_rsl
from repro.simkernel import Simulator
from repro.units import KB, KBps, MB, Mbps
from repro.workloads import make_payload


def quick_testbed(**kw):
    kw.setdefault("n_sites", 2)
    kw.setdefault("nodes_per_site", 2)
    kw.setdefault("cores_per_node", 4)
    kw.setdefault("appliance_uplink", Mbps(10))
    return build_testbed(**kw)


def logon(tb, username="ada"):
    tb.new_grid_identity(username, "pw")
    client = tb.appliance_host

    def flow():
        key, proxy, ee = yield tb.myproxy.logon(client, username, "pw",
                                                lifetime=3600.0)
        return [proxy, ee]

    return tb.sim.run(until=tb.sim.process(flow())), client


def run_job(tb, chain, client, site="ncsa", runtime=10.0, cores=2,
            name="/exe", walltime=3600):
    payload = make_payload("fixed", size=1024, runtime=str(runtime))
    rsl = generate_rsl(JobDescription(executable=name, count=cores,
                                      max_wall_time=walltime))

    def flow():
        yield tb.ftp(site).put(client, chain, name, payload)
        job_id = yield tb.gram(site).submit(client, chain, rsl)
        job = yield tb.gram(site).completion_event(job_id)
        return job

    return tb.sim.run(until=tb.sim.process(flow()))


# ---------------------------------------------------------------- accounting

def test_accounting_records_completed_jobs():
    tb = quick_testbed()
    acct = AccountingService()
    for site in tb.sites:
        acct.attach(site)
    chain, client = logon(tb)
    job = run_job(tb, chain, client, runtime=10.0, cores=2)
    assert acct.total_jobs() == 1
    usage = acct.core_seconds_by_owner()
    assert usage["/O=ReproGrid/CN=ada"] == pytest.approx(20.0)
    assert acct.jobs_by_state() == {"done": 1}


def test_accounting_aggregates_across_owners_and_sites():
    tb = quick_testbed()
    acct = AccountingService()
    for site in tb.sites:
        acct.attach(site)
    chain_a, client = logon(tb, "ada")
    chain_b, _ = logon(tb, "bob")
    run_job(tb, chain_a, client, site="ncsa", runtime=10.0, cores=1,
            name="/a")
    run_job(tb, chain_b, client, site="ncsa", runtime=20.0, cores=2,
            name="/b")
    run_job(tb, chain_b, client, site="sdsc", runtime=5.0, cores=4,
            name="/c")
    usage = acct.core_seconds_by_owner()
    assert usage["/O=ReproGrid/CN=ada"] == pytest.approx(10.0)
    assert usage["/O=ReproGrid/CN=bob"] == pytest.approx(60.0)
    ncsa = acct.site_report("ncsa")
    assert ncsa["jobs"] == 2
    assert ncsa["core_seconds"] == pytest.approx(50.0)
    assert ncsa["widest_job"] == 2
    assert len(acct.records_for("/O=ReproGrid/CN=bob")) == 2


def test_accounting_records_failures_too():
    tb = quick_testbed()
    acct = AccountingService()
    acct.attach(tb.site("ncsa"))
    chain, client = logon(tb)
    job = run_job(tb, chain, client, runtime=500.0, walltime=60)
    assert job.state.value == "failed"
    states = acct.jobs_by_state()
    assert states == {"failed": 1}
    # Walltime kills still bill the occupied cores.
    usage = acct.core_seconds_by_owner()
    assert usage["/O=ReproGrid/CN=ada"] == pytest.approx(120.0)  # 2 x 60 s


def test_accounting_double_attach_rejected():
    tb = quick_testbed()
    acct = AccountingService()
    acct.attach(tb.site("ncsa"))
    with pytest.raises(GridError, match="already attached"):
        acct.attach(tb.site("ncsa"))


def test_record_requires_terminal_job():
    tb = quick_testbed()
    acct = AccountingService()
    site = tb.site("ncsa")
    job = site.create_job(JobDescription(executable="/x"), owner="/CN=a")
    with pytest.raises(GridError, match="not terminal"):
        acct.record("ncsa", job)


# ---------------------------------------------------------------- streams

def test_single_vs_multi_stream_alone_is_equal():
    results = {}
    for streams in (1, 4):
        tb = quick_testbed(appliance_uplink=KBps(100))
        chain, client = logon(tb)
        payload = make_payload("echo", size=int(KB(400)))

        def flow():
            t0 = tb.sim.now
            yield tb.ftp("ncsa").put(client, chain, "/f", payload,
                                     streams=streams)
            return tb.sim.now - t0

        results[streams] = tb.sim.run(until=tb.sim.process(flow()))
    # Alone on the link, stream count barely matters.
    assert results[4] == pytest.approx(results[1], rel=0.05)


def test_multi_stream_wins_under_contention():
    tb = quick_testbed(appliance_uplink=KBps(100))
    chain, client = logon(tb)
    payload = make_payload("echo", size=int(KB(300)))
    durations = {}

    def competitor():
        # A long single-stream background transfer hogging the uplink.
        yield tb.ftp("sdsc").put(client, chain, "/bg",
                                 make_payload("echo", size=int(KB(2000))))

    def contender(streams, path):
        yield tb.sim.timeout(1.0)  # let the competitor start
        t0 = tb.sim.now
        yield tb.ftp("ncsa").put(client, chain, path, payload,
                                 streams=streams)
        durations[streams] = tb.sim.now - t0

    tb.sim.process(competitor())
    tb.sim.process(contender(4, "/multi"))
    tb.sim.run()

    tb2 = quick_testbed(appliance_uplink=KBps(100))
    chain2, client2 = logon(tb2)

    def competitor2():
        yield tb2.ftp("sdsc").put(client2, chain2, "/bg",
                                  make_payload("echo", size=int(KB(2000))))

    def contender2():
        yield tb2.sim.timeout(1.0)
        t0 = tb2.sim.now
        yield tb2.ftp("ncsa").put(client2, chain2, "/single", payload,
                                  streams=1)
        durations[1] = tb2.sim.now - t0

    tb2.sim.process(competitor2())
    tb2.sim.process(contender2())
    tb2.sim.run()
    # Four streams claim 4/5 of the contended link vs 1/2 for one stream.
    assert durations[4] < durations[1] * 0.75


def test_stream_validation_and_integrity():
    tb = quick_testbed()
    chain, client = logon(tb)
    with pytest.raises(TransferError):
        tb.ftp("ncsa").put(client, chain, "/f", b"x", streams=0)
    payload = make_payload("echo", size=12345)  # not stream-divisible

    def flow():
        yield tb.ftp("ncsa").put(client, chain, "/f", payload, streams=4)
        return tb.site("ncsa").read_file("/f")

    assert tb.sim.run(until=tb.sim.process(flow())) == payload


# ---------------------------------------------------------------- percentiles

def test_timeseries_percentiles():
    from repro.telemetry import TimeSeries

    s = TimeSeries("s")
    for i, v in enumerate(range(1, 11)):  # 1..10
        s.append(float(i), float(v))
    assert s.percentile(0) == 1.0
    assert s.percentile(100) == 10.0
    assert s.percentile(50) == pytest.approx(5.5)
    summary = s.summary()
    assert summary["p95"] == pytest.approx(9.55)
    assert summary["mean"] == pytest.approx(5.5)
    empty = TimeSeries("e")
    assert empty.percentile(50) == 0.0
    with pytest.raises(ValueError):
        s.percentile(101)
