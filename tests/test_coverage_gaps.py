"""Targeted tests for otherwise-uncovered edges across subsystems."""

import pytest

from repro.errors import GridError, HardwareError
from repro.grid import InformationService, JobDescription
from repro.grid.job import GridJob, JobState
from repro.grid.site import GridSite
from repro.hardware import Network
from repro.hardware.fairshare import FairShareServer
from repro.simkernel import Simulator
from repro.telemetry import TimeSeries, series_table, to_csv


def test_mds_deregister():
    sim = Simulator()
    net = Network(sim)
    mds = InformationService()
    site = GridSite(sim, "solo", net, nodes=1, cores_per_node=2)
    mds.register(site)
    with pytest.raises(GridError, match="already registered"):
        mds.register(site)
    mds.deregister("solo")
    with pytest.raises(GridError, match="not registered"):
        mds.deregister("solo")
    with pytest.raises(GridError):
        mds.get_site("solo")


def test_site_storage_helpers():
    sim = Simulator()
    net = Network(sim)
    site = GridSite(sim, "s", net, nodes=1, cores_per_node=2)
    site.store_file("/a", b"data")
    assert site.has_file("/a")
    site.delete_file("/a")
    site.delete_file("/a")  # idempotent
    with pytest.raises(GridError, match="no file"):
        site.read_file("/a")


def test_job_queue_wait_before_start():
    sim = Simulator()
    job = GridJob("j", JobDescription(executable="/x"), "/CN=a", 0.0)
    assert job.queue_wait() is None
    job.transition(JobState.PENDING, 1.0)
    assert job.queue_wait() is None  # not started yet


def test_fairshare_cumulative_rejects_other_times():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    srv.submit(5.0, tags=("t",))
    with pytest.raises(HardwareError, match="current time"):
        srv.cumulative("t", at=99.0)
    assert srv.cumulative("t", at=sim.now) == 0.0


def test_find_eq_without_index_scans():
    from repro.db import Database
    from repro.db.table import Column

    db = Database()
    db.create_table("t", [Column("a", "INT"), Column("b", "TEXT")])
    db.insert("t", [1, "x"])
    db.insert("t", [2, "x"])
    db.insert("t", [3, "y"])
    assert len(db.find_eq("t", "b", "x")) == 2  # full scan path


def test_mediator_wait_all_with_no_tasks():
    from repro.cyberaide import Mediator

    sim = Simulator()
    med = Mediator(sim)
    done = med.wait_all()
    sim.run(until=done)  # fires immediately, empty condition
    assert med.stats()["submitted"] == 0


def test_report_rendering_edges():
    assert series_table([]) == "(no series)"
    assert to_csv([]) == ""
    s = TimeSeries("only")
    s.append(0.0, 1.0)
    assert "only" in series_table([s])


def test_store_capacity_validation():
    from repro.errors import SimulationError
    from repro.simkernel import Store

    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_network_hosts_and_links_listing():
    sim = Simulator()
    net = Network(sim)
    net.connect("a", "b", bandwidth=10.0)
    net.connect("b", "c", bandwidth=10.0)
    assert net.hosts() == ["a", "b", "c"]
    assert len(net.links()) == 2
    assert net.route("a", "a") == []
