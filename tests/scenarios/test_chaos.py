"""The chaos drill: invariants, shape, determinism (smoke-sized)."""

import pytest

from repro.scenarios import ChaosResult, run_chaos
from repro.scenarios.chaos import CRASH_WINDOWS


@pytest.fixture(scope="module")
def result():
    return run_chaos(smoke=True)


def test_smoke_drill_holds_every_invariant(result):
    assert result.ok, result.render()
    assert result.lost == 0
    assert result.dedup_duplicates == 0
    assert result.detection_ok
    assert result.rejoined
    assert not result.slo_violated


def test_smoke_drill_shape(result):
    assert result.smoke
    assert result.kill == 1 and result.restart == 1
    assert len(result.crashed) == 1
    assert result.restarted == result.crashed[:1]
    assert result.invocations == result.clients * result.rounds
    assert result.completed == result.invocations
    assert result.availability == 1.0
    assert result.elapsed > 0 and result.calibration_elapsed > 0
    assert len(result.latencies) == result.invocations
    # The crash actually bit: something was in flight or failed over.
    assert result.max_detection_lag <= result.detection_bound


def test_smoke_drill_is_deterministic():
    a = run_chaos(smoke=True)
    b = run_chaos(smoke=True)
    assert a.crashed == b.crashed
    assert a.detection_lags == b.detection_lags
    assert a.elapsed == b.elapsed
    assert a.latencies == b.latencies
    assert a.failovers == b.failovers


def test_render_mentions_the_gates(result):
    text = result.render()
    assert "Chaos drill" in text
    assert "zero lost requests" in text
    assert "no double execution" in text
    assert "detection lag bounded" in text
    assert "availability SLO held" in text
    assert "ALL INVARIANTS HOLD" in text


def test_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        run_chaos(kill=0)
    with pytest.raises(ValueError):
        run_chaos(replicas=2, kill=2)        # must leave a survivor
    with pytest.raises(ValueError):
        run_chaos(kill=2, restart=3)         # can't restart the living
    with pytest.raises(ValueError):
        run_chaos(kill=len(CRASH_WINDOWS) + 1)


def test_failed_gate_renders_fail(result):
    broken = ChaosResult(
        replicas=result.replicas, clients=result.clients,
        services=result.services, rounds=result.rounds,
        kill=result.kill, restart=result.restart,
        invocations=result.invocations, losses=[(0, "ReplicaDown")],
        latencies=result.latencies, elapsed=result.elapsed,
        calibration_elapsed=result.calibration_elapsed,
        crashed=result.crashed, restarted=result.restarted,
        rejoined=result.rejoined, detection_lags=result.detection_lags,
        detection_bound=result.detection_bound,
        slo_violated=result.slo_violated, failovers=result.failovers,
        dedup_hits=result.dedup_hits,
        dedup_duplicates=result.dedup_duplicates,
        inflight_killed=result.inflight_killed,
        requests_routed=result.requests_routed,
        seed=result.seed, smoke=result.smoke)
    assert not broken.ok
    assert broken.availability < 1.0
    assert "FAIL" in broken.render()
