"""Render coverage: every result object produces a complete report."""

import pytest

from repro.scenarios import run_fig6, run_fig7


@pytest.fixture(scope="module")
def fig6():
    return run_fig6()


def test_fig6_render_mentions_key_facts(fig6):
    text = fig6.render()
    assert "Figure 6" in text
    assert "security-traffic share" in text
    assert "tentative output polls" in text
    assert "appliance.cpu" in text
    # The sparklines are present (unicode bars or blanks).
    assert any(ch in text for ch in "▁▂▃▄▅▆▇█")


def test_fig7_render_mentions_paper_comparisons():
    result = run_fig7()
    text = result.render()
    assert "paper: ~60 s" in text
    assert "paper: 80-90" in text
    assert "appliance.net_out" in text


def test_fig6_series_share_time_base(fig6):
    times = [s.times for s in fig6.series]
    assert all(t == times[0] for t in times[1:])
    assert len(times[0]) >= 10  # the run spans many sample intervals
