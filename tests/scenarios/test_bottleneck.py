"""Tests for the bottleneck-analysis scenario (§VIII.D, quantitative)."""

import json

import pytest

from repro.scenarios import run_bottleneck
from repro.telemetry.export import parse_prometheus_text


@pytest.fixture(scope="module")
def result():
    return run_bottleneck(smoke=True)


def test_attribution_reconciles_within_one_percent(result):
    att = result.attribution
    assert att.total > 0.0
    assert att.reconciles(tol=0.01)
    assert abs(att.unattributed) <= 0.01 * att.total


def test_attribution_covers_the_expected_buckets(result):
    att = result.attribution
    # A smoke-sized job still exercises transfer, grid compute and
    # middleware work; the ranking must be dominated by the grid side
    # (the job runs ~10 s against sub-second middleware steps).
    assert att.buckets["grid/transfer"] > 0.0
    assert att.buckets["grid/compute"] > 0.0
    assert att.buckets["core/compute"] > 0.0
    assert att.ranked()[0][0].startswith("grid/")


def test_event_bus_saw_every_layer(result):
    counts = result.env.sim._telemetry_bus.counts()
    for kind in ("ws.request", "core.invocation", "agent.submit",
                 "gram.submit", "gridftp.put", "sched.submit",
                 "sched.start", "sched.finish", "wal.append",
                 "core.service_generated", "agent.poll", "mds.snapshot"):
        assert counts.get(kind, 0) > 0, f"no {kind} events on the bus"


def test_events_correlate_by_request_id(result):
    b = result.env.sim._telemetry_bus
    rid = result.ctx.request_id
    correlated = b.events(request_id=rid)
    kinds = {ev.kind for ev in correlated}
    assert "gridftp.put" in kinds
    assert "gram.submit" in kinds


def test_queue_gauges_recorded_levels(result):
    peaks = result.attribution.queue_peaks
    assert any(name.startswith("gridftp.") and peak >= 1.0
               for name, peak in peaks.items())
    assert any(name.startswith("sched.") and peak >= 1.0
               for name, peak in peaks.items())
    assert peaks.get("db.wal_bytes", 0.0) > 0.0


def test_mds_snapshot_history_is_time_stamped(result):
    history = result.env.testbed.mds.history
    assert history
    ts, table = history[-1]
    assert ts == pytest.approx(result.env.sim.now)
    assert any("free_cores" in row for row in table)
    series = result.env.testbed.mds.history_series(table[0]["name"])
    assert len(series) == len(history)


def test_prometheus_export_parses(result):
    samples = parse_prometheus_text(result.prometheus())
    assert samples  # non-empty and every line well-formed
    assert any(k.startswith("repro_request_latency_seconds_bucket")
               for k in samples)
    assert any(k.startswith("repro_events_total") for k in samples)


def test_chrome_trace_export_loads(result):
    doc = json.loads(result.trace_json())
    events = doc["traceEvents"]
    assert events
    begins = sum(1 for e in events if e.get("ph") == "B")
    ends = sum(1 for e in events if e.get("ph") == "E")
    completes = [e for e in events if e.get("ph") == "X"]
    assert begins == ends  # trivially 0/0: the exporter emits X events
    assert completes
    assert all("ts" in e and "dur" in e for e in completes)


def test_render_prints_the_attribution_table(result):
    text = result.render()
    assert "layer/category" in text
    assert "bottleneck ranking" in text
    assert "reconciles to 1%   : True" in text
