"""Golden-file determinism: figure series must be byte-identical.

The committed CSVs under ``tests/scenarios/golden/`` were produced from
the figure scenarios at seed 0.  Any change to event ordering anywhere
in the stack — kernel, network, SOAP dispatch, the interceptor pipeline
— shows up here as a byte diff, which is exactly the property the
request fabric promises not to break.
"""

from pathlib import Path

import pytest

from repro.scenarios import run_fig6, run_fig7, run_fig8
from repro.telemetry.report import to_csv

GOLDEN_DIR = Path(__file__).parent / "golden"

FIGURES = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
}


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_series_match_committed_goldens(name):
    golden_path = GOLDEN_DIR / f"{name}.csv"
    golden = golden_path.read_text()
    result = FIGURES[name](seed=0)
    actual = to_csv(result.series) + "\n"
    assert actual == golden, (
        f"{name} series drifted from {golden_path} — determinism broke "
        f"(or the scenario changed; regenerate the golden deliberately)")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_inert_cache_layer(name, monkeypatch):
    """Attached-but-disabled client caches must not perturb a run.

    The cache layer's determinism contract: disabled caches store and
    serve nothing, and the coalescing plane (always attached, enabled
    only by ``config.coalesce``) creates zero events on the default
    path.  Re-running each figure with inert caches on every client
    must therefore reproduce the committed goldens byte-for-byte.
    """
    import repro.scenarios.common as common

    real_deploy = common.deploy_onserve

    def caching_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)
        proc.add_callback(
            lambda ev: ev._value.enable_client_caches(enabled=False)
            if ev._ok else None)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", caching_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with inert client caches attached — the "
        f"disabled cache layer perturbed the simulation")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_idle_router_attached(name, monkeypatch):
    """An attached-but-disabled request router must not perturb a run.

    The replica-fabric determinism contract (DESIGN.md §11): a disabled
    :class:`~repro.ws.router.RequestRouter` is constructed, ringed and
    wired to the OnServe — exactly what ``deploy_fabric(replicas=1)``
    does — but owns no fabric endpoint and creates zero simulation
    events.  Re-running each figure with one attached must therefore
    reproduce the committed goldens byte-for-byte.
    """
    import repro.scenarios.common as common
    from repro.ws.router import RequestRouter

    real_deploy = common.deploy_onserve

    def attach_idle_router(ev):
        if not ev._ok:
            return
        stack = ev._value
        idle = RequestRouter(stack.appliance_host, stack.fabric,
                             enabled=False)
        idle.add_replica(stack.appliance_host.name, stack.soap_server,
                         stack.onserve)
        stack.onserve.router = idle

    def routed_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)
        proc.add_callback(attach_idle_router)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", routed_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with a disabled router attached — the idle "
        f"routing layer perturbed the simulation")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_idle_healing_plane_attached(
        name, monkeypatch):
    """A self-healing-*configured* but disabled router must stay inert.

    The self-healing determinism contract (DESIGN.md §13): leases,
    failover dedup and the overload ladder all hang off a router that
    is ``self_healing=True`` and holds a state store — but none of it
    runs until ``start_membership_watch`` / heartbeats start.  A
    disabled router with the full healing configuration attached must
    not cost one event, and its membership/dedup tables must stay
    empty for the whole run.
    """
    import repro.scenarios.common as common
    from repro.core.registry import ServiceStateStore
    from repro.ws.router import RequestRouter

    real_deploy = common.deploy_onserve
    stores = []

    def attach_healing_router(ev):
        if not ev._ok:
            return
        stack = ev._value
        store = ServiceStateStore(stack.dbmanager.db)
        stores.append(store)
        idle = RequestRouter(stack.appliance_host, stack.fabric,
                             enabled=False, store=store,
                             self_healing=True, lease_ttl=15.0,
                             lease_check_interval=5.0, fault_threshold=2,
                             shed_limit=8, backpressure_threshold=16)
        idle.add_replica(stack.appliance_host.name, stack.soap_server,
                         stack.onserve)
        stack.onserve.router = idle

    def healing_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)
        proc.add_callback(attach_healing_router)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", healing_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with the idle self-healing plane attached — "
        f"the disabled lease/dedup machinery perturbed the simulation")
    # Nothing leased, nothing deduped: the plane never woke up.
    assert stores
    assert stores[-1].members() == []
    assert stores[-1].dedup_count() == 0


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_idle_notify_queue_attached(
        name, monkeypatch):
    """An attached durable queue with no capable site must stay inert.

    The notification-plane determinism contract (DESIGN.md §14): a
    :class:`~repro.grid.notify.NotifyQueue` wired to the stack — every
    gatekeeper attached as *incapable* — publishes nothing, schedules
    nothing and leaves both durable tables empty, because the only
    event source is ``publish`` and only capable gatekeepers call it.
    Re-running each figure with one attached must reproduce the
    committed goldens byte-for-byte.
    """
    import repro.scenarios.common as common
    from repro.grid.notify import (
        JOB_STATES_TABLE, NOTIFY_QUEUE_TABLE, NotifyQueue,
    )

    real_deploy = common.deploy_onserve
    queues = []

    def notify_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)

        def attach_idle_queue(ev):
            if not ev._ok:
                return
            stack = ev._value
            queue = NotifyQueue(stack.sim, stack.dbmanager.db)
            queues.append(queue)
            for gatekeeper in testbed.gatekeepers.values():
                gatekeeper.attach_notify(queue, capable=False)
            stack.onserve.notify_queue = queue

        proc.add_callback(attach_idle_queue)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", notify_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with an idle notify queue attached — the "
        f"incapable notification plane perturbed the simulation")
    # Provably idle: nothing published, both durable tables empty.
    assert queues
    queue = queues[-1]
    assert queue.published == 0 and queue.capable_sites == []
    assert queue.db.select(JOB_STATES_TABLE, lambda r: True) == []
    assert queue.db.select(NOTIFY_QUEUE_TABLE, lambda r: True) == []


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_mvcc_and_idle_replica(name, monkeypatch):
    """MVCC on + an attached-but-disabled read replica must stay inert.

    The DB-scale determinism contract (DESIGN.md §15): MVCC is pure
    bookkeeping — version chains are saved and pruned in the writer's
    stack frame, no simulation event is ever created — and a disabled
    :class:`~repro.db.replica.ReadReplica` taps nothing, so its tables
    stay provably empty.  Re-running each figure with the engine in
    MVCC mode and a disabled replica attached to the appliance database
    must reproduce the committed goldens byte-for-byte.
    """
    import repro.scenarios.common as common
    from repro.db.replica import ReadReplica

    real_deploy = common.deploy_onserve
    replicas = []

    def attach_db_tier(ev):
        if not ev._ok:
            return
        stack = ev._value
        stack.dbmanager.db.mvcc = True
        replicas.append(ReadReplica(
            stack.sim, stack.dbmanager.db, lag=0.5, enabled=False))

    def tiered_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)
        proc.add_callback(attach_db_tier)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", tiered_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with MVCC + a disabled replica attached — the "
        f"DB-scale plane perturbed the simulation")
    # Provably inert: the disabled replica shipped and applied nothing.
    assert replicas
    replica = replicas[-1]
    assert replica.db.tables == {}
    assert replica.backlog() == 0
    assert replica.records_applied == 0


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_goldens_unchanged_with_control_tower_attached(name, monkeypatch):
    """An attached-but-observing control tower must not perturb a run.

    The observability-plane determinism contract (DESIGN.md §12): the
    SLO tracker, fleet rollup and kernel profiler record in emitter
    stack frames and measure wall-clock only — zero simulation events,
    zero simulated time.  Re-running each figure with a full tower
    (SLO specs live, profiler hooks installed) must reproduce the
    committed goldens byte-for-byte.
    """
    import repro.scenarios.common as common
    from repro.telemetry.fleet import ControlTower
    from repro.telemetry.profiler import KernelProfiler
    from repro.telemetry.slo import BurnRule, SloSpec

    real_deploy = common.deploy_onserve
    towers = []

    def attach_tower(ev):
        if not ev._ok:
            return
        sim = ev._value.sim
        specs = [SloSpec("golden-availability", availability=0.99,
                         compliance_window=600.0, min_samples=1),
                 SloSpec("golden-latency", latency_target=30.0,
                         compliance_window=600.0, min_samples=1)]
        towers.append(ControlTower(
            sim, specs=specs, rules=(BurnRule(30.0, 120.0, 2.0),),
            profiler=KernelProfiler(sim)))

    def towered_deploy(testbed, config=None, **kw):
        proc = real_deploy(testbed, config, **kw)
        proc.add_callback(attach_tower)
        return proc

    monkeypatch.setattr(common, "deploy_onserve", towered_deploy)
    golden = (GOLDEN_DIR / f"{name}.csv").read_text()
    actual = to_csv(FIGURES[name](seed=0).series) + "\n"
    assert actual == golden, (
        f"{name} drifted with the control tower attached — the "
        f"observability plane perturbed the simulation")
    # The tower actually observed the run (not vacuously pure).  fig8
    # is upload+generate — no client-side ws.request stream — so the
    # SLO sample check only applies where that stream exists.
    from repro.telemetry.events import bus as telemetry_bus
    assert towers
    tower = towers[-1]
    assert tower.profiler.events_dispatched > 0
    requests = telemetry_bus(tower.sim).events("ws.request")
    if any(ev.get("side") == "client" for ev in requests):
        assert tower.slo.samples_recorded > 0
    tower.close()
