"""Golden-file determinism: figure series must be byte-identical.

The committed CSVs under ``tests/scenarios/golden/`` were produced from
the figure scenarios at seed 0.  Any change to event ordering anywhere
in the stack — kernel, network, SOAP dispatch, the interceptor pipeline
— shows up here as a byte diff, which is exactly the property the
request fabric promises not to break.
"""

from pathlib import Path

import pytest

from repro.scenarios import run_fig6, run_fig7, run_fig8
from repro.telemetry.report import to_csv

GOLDEN_DIR = Path(__file__).parent / "golden"

FIGURES = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
}


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_series_match_committed_goldens(name):
    golden_path = GOLDEN_DIR / f"{name}.csv"
    golden = golden_path.read_text()
    result = FIGURES[name](seed=0)
    actual = to_csv(result.series) + "\n"
    assert actual == golden, (
        f"{name} series drifted from {golden_path} — determinism broke "
        f"(or the scenario changed; regenerate the golden deliberately)")
