"""Reproducibility: identical runs yield bit-identical telemetry."""

import pytest

from repro.scenarios import run_fig6
from repro.scenarios.common import standard_env
from repro.core.invocation import discover_and_invoke
from repro.units import KB, Mbps
from repro.workloads import make_payload


def _full_run(seed):
    env = standard_env(appliance_uplink=Mbps(8), seed=seed)
    tb, stack, sim = env.testbed, env.stack, env.sim
    payload = make_payload("fixed", size=int(KB(32)), runtime="40",
                           output_bytes="2048")
    sim.run(until=stack.portal.upload_and_generate(
        tb.user_hosts[0], "d.bin", payload))
    sim.run(until=discover_and_invoke(stack, stack.user_clients[0], "D%"))
    sampler = env.sampler
    return {
        "end_time": sim.now,
        "events": sim.events_processed,
        "series": {name: (s.times, s.values)
                   for name, s in sampler.series.items()},
        "report": stack.onserve.runtimes["DService"].reports[0].as_dict(),
    }


def test_same_seed_bit_identical():
    a = _full_run(seed=42)
    b = _full_run(seed=42)
    assert a["end_time"] == b["end_time"]
    assert a["events"] == b["events"]
    assert a["series"] == b["series"]
    assert a["report"] == b["report"]


def test_figure_harness_deterministic():
    r1 = run_fig6(seed=7)
    r2 = run_fig6(seed=7)
    assert r1.net_out_total == r2.net_out_total
    assert r1.invocation_total == r2.invocation_total
    assert [s.values for s in r1.series] == [s.values for s in r2.series]
