"""Shape tests for the replica scale-out sweep (smoke-sized)."""

import pytest

from repro.scenarios.scaleout import run_scaleout


@pytest.fixture(scope="module")
def result():
    return run_scaleout(smoke=True)


def test_smoke_sweep_shape(result):
    assert [int(r["replicas"]) for r in result.rows] == [1, 2]
    for row in result.rows:
        assert row["elapsed"] > 0
        assert row["throughput"] > 0
        assert row["p95"] >= row["mean"] > 0
    assert result.baseline_elapsed > 0
    assert result.routed_elapsed > 0


def test_adding_a_replica_helps_even_at_smoke_scale(result):
    assert result.speedup_at(2) > 1.0
    # The second replica actually took work: the router deviated from
    # the single hash owner and replicas materialized services.
    assert result.row_at(2)["rebalances"] > 0
    assert result.row_at(2)["materialized"] > 0


def test_router_overhead_is_small(result):
    assert result.router_overhead() < 0.05


def test_render_mentions_the_gates(result):
    text = result.render()
    assert "Replica scale-out" in text
    assert "router overhead" in text
    assert "speedup" in text


def test_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        run_scaleout(clients=0)
