"""The fault-matrix scenario: invariants, determinism, golden immunity."""

from pathlib import Path
from types import SimpleNamespace

import pytest

import repro.scenarios.common as common
from repro.faults import FAULT_KINDS
from repro.faults.injector import fault_plane
from repro.scenarios import run_faults, run_fig6
from repro.scenarios.faults import FAULT_CASES, SMOKE_CASES
from repro.telemetry.report import to_csv

GOLDEN_DIR = Path(__file__).parent / "golden"


def test_smoke_matrix_invariants_hold():
    result = run_faults(smoke=True)
    assert result.ok, result.render()
    assert len(result.outcomes) == len(SMOKE_CASES)
    for outcome in result.outcomes:
        assert outcome.deterministic
        assert outcome.drained and not outcome.orphans
        assert outcome.injected >= 1


def test_smoke_subset_is_a_subset_of_the_matrix():
    names = {case.name for case in FAULT_CASES}
    assert set(SMOKE_CASES) <= names
    assert len(names) == len(FAULT_CASES)  # no duplicate case names


def test_matrix_covers_every_fault_kind():
    probe = SimpleNamespace(sim=SimpleNamespace(now=0.0))
    covered = {spec.kind
               for case in FAULT_CASES
               for spec in case.specs(probe)}
    # replica.crash needs a routed multi-replica fabric, which the
    # single-appliance matrix cannot host — the chaos drill
    # (scenarios/chaos.py) owns that kind's invariants.
    assert covered == FAULT_KINDS - {"replica.crash"}


def test_failover_case_re_stages_on_a_second_site():
    result = run_faults(cases=("site-outage-failover",))
    outcome = result.outcome("site-outage-failover")
    assert result.ok, result.render()
    assert outcome.recovered
    assert outcome.counts.get("core.failover", 0) >= 1
    assert outcome.counts.get("retry.attempt", 0) >= 1


def test_typed_failure_case_reports_root_cause():
    result = run_faults(cases=("gram-refuse-permanent",))
    outcome = result.outcome("gram-refuse-permanent")
    assert result.ok, result.render()
    assert not outcome.recovered
    assert outcome.root_cause == "SubmissionRefused"
    assert outcome.verdict == "failed:SubmissionRefused"


def test_matrix_holds_under_a_different_seed():
    result = run_faults(cases=("gram-refuse-retry",), seed=7)
    assert result.ok, result.render()


def test_render_shape():
    result = run_faults(cases=("gridftp-abort-recovers",))
    text = result.render()
    assert "Fault matrix" in text
    assert "gridftp-abort-recovers" in text
    assert "PASS" in text
    assert "1/1 invariants hold" in text


def test_unknown_case_name_raises():
    with pytest.raises(KeyError):
        run_faults(cases=("no-such-case",))


def test_fig6_golden_immune_to_attached_but_disabled_fault_plane(
        monkeypatch):
    """The determinism contract of the whole PR, end to end.

    With the fault plane *attached* to the scenario's simulator but no
    specs configured, the Figure 6 series must stay byte-identical to
    the committed golden: a disabled injector may not cost one event,
    one RNG draw, or one telemetry emission.
    """

    class FaultAwareSimulator(common.Simulator):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            fault_plane(self)

    monkeypatch.setattr(common, "Simulator", FaultAwareSimulator)
    result = run_fig6(seed=0)
    golden = (GOLDEN_DIR / "fig6.csv").read_text()
    assert to_csv(result.series) + "\n" == golden
