"""DB-tier scale-out ablation: smoke-mode gates and rendering."""

import pytest

from repro.scenarios.dbscale import REPLICA_LAG, _percentile, run_dbscale


@pytest.fixture(scope="module")
def smoke():
    return run_dbscale(seed=0, smoke=True)


def test_smoke_gates_pass(smoke):
    assert smoke.ok
    # The problem is real with the tier off, gone with it on.
    assert smoke.spike_factor > 1.10
    assert smoke.locked.lock_wait_total > 0
    assert smoke.scaled_factor <= 1.10


def test_every_invocation_succeeds(smoke):
    for arm in (smoke.baseline, smoke.locked, smoke.scaled):
        assert arm.n_ok == arm.n == 4


def test_chunking_bounds_residency(smoke):
    assert smoke.scaled.peak_resident <= 2 * smoke.chunk_bytes
    assert smoke.locked.peak_resident >= smoke.blob_bytes
    assert smoke.scaled.fetches
    assert all(f["mode"] == "chunked" for f in smoke.scaled.fetches)
    assert all(f["mode"] == "whole" for f in smoke.locked.fetches)


def test_replicas_serve_within_staleness_bound(smoke):
    assert smoke.scaled.replica_reads > 0
    assert smoke.scaled.replica_rows > 0
    assert smoke.scaled.behind_ok
    assert smoke.scaled.max_behind <= REPLICA_LAG
    # With the tier off, no replica exists to serve anything.
    assert smoke.baseline.replica_reads == 0
    assert smoke.locked.replica_reads == 0


def test_render_shape(smoke):
    text = smoke.render()
    assert "DB tier scale-out" in text
    assert "baseline" in text and "storm/locked" in text \
        and "storm/scaled" in text
    assert "gate: PASS" in text


def test_percentile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert _percentile(values, 50.0) == 3.0
    assert _percentile(values, 95.0) == 5.0
    assert _percentile([7.0], 95.0) == 7.0
