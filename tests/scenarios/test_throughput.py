"""The throughput ablation: determinism, the headline win, the render."""

import pytest

from repro.scenarios.throughput import run_throughput


def test_same_seed_is_run_to_run_deterministic():
    a = run_throughput(levels=(1, 4), rounds=2, seed=0)
    b = run_throughput(levels=(1, 4), rounds=2, seed=0)
    assert a.rows == b.rows  # every float, transfer and hit count


def test_cached_mode_cuts_mean_latency_at_eight_clients():
    result = run_throughput(levels=(8,))
    assert result.reduction_at(8) >= 0.20
    (row,) = result.rows
    # Single-flight staging: one GridFTP transfer for the whole level,
    # against two waves of eight in the baseline.
    assert row["cached_transfers"] == 1.0
    assert row["base_transfers"] == 16.0
    assert row["cache_hits"] > 0


def test_reduction_grows_with_concurrency():
    result = run_throughput(levels=(1, 8))
    assert result.reduction_at(8) > result.reduction_at(1)


def test_smoke_mode_shrinks_the_sweep():
    result = run_throughput(smoke=True)
    assert len(result.rows) <= 2
    text = result.render()
    assert "Invocation throughput ablation" in text
    assert text.count("\n") >= 2 + len(result.rows)


def test_rejects_bad_rounds_and_unknown_level():
    with pytest.raises(ValueError):
        run_throughput(rounds=0)
    result = run_throughput(levels=(1,), smoke=True)
    with pytest.raises(KeyError):
        result.reduction_at(99)
