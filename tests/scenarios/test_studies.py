"""Shape-regression tests for the §VIII.B/§VIII.D studies."""

import pytest

from repro.scenarios import run_overhead, run_scalability, run_smallfiles
from repro.units import MB


@pytest.fixture(scope="module")
def upload_sweep():
    return run_scalability(workload="upload", network="fast",
                           levels=(1, 4), file_bytes=int(5 * MB(1)))


@pytest.fixture(scope="module")
def invoke_sweep():
    return run_scalability(workload="invoke", network="slow", levels=(1, 4))


def test_fast_net_uploads_bottleneck_on_disk(upload_sweep):
    """§VIII.D.3: with a good network, disk I/O limits uploads (the
    double write makes it worse)."""
    loaded = upload_sweep.rows[-1]
    assert upload_sweep.bottleneck(loaded) == "disk"


def test_slow_net_invocations_bottleneck_on_network(invoke_sweep):
    """§VIII.D.2: a slow connection makes the network the bottleneck."""
    loaded = invoke_sweep.rows[-1]
    assert invoke_sweep.bottleneck(loaded) == "network"
    assert loaded["net_load"] > 0.5


def test_cpu_and_memory_never_saturate(upload_sweep, invoke_sweep):
    """§VIII.D.1: 'The solution doesn't need a lot of CPU time nor a lot
    of memory ... neither of them should hence be the bottleneck.'"""
    for sweep in (upload_sweep, invoke_sweep):
        for row in sweep.rows:
            assert row["cpu_load"] < 0.85
            assert row["mem_load"] < 0.50
            assert sweep.bottleneck(row) not in ("cpu", "memory")


def test_concurrency_degrades_gracefully(invoke_sweep):
    """More simultaneous requests stretch the makespan (the §VIII.D.2
    'system's performance might suffer significantly' effect) while
    total throughput still rises."""
    first, last = invoke_sweep.rows[0], invoke_sweep.rows[-1]
    assert last["makespan"] > first["makespan"]
    assert last["throughput"] > first["throughput"]


def test_scalability_validation():
    with pytest.raises(ValueError):
        run_scalability(workload="nonsense")
    with pytest.raises(ValueError):
        run_scalability(network="carrier-pigeon")


def test_render_tables():
    sweep = run_scalability(workload="invoke", network="slow", levels=(1,))
    text = sweep.render()
    assert "bottleneck" in text and "network" in text


# ---------------------------------------------------------------- overhead

@pytest.fixture(scope="module")
def overhead():
    return run_overhead(runtimes=(10.0, 60.0, 300.0))


def test_overhead_shrinks_relative_to_runtime(overhead):
    """§VIII.B: overhead 'should be quite small compared to the runtime
    of a typical executable'."""
    rels = [row["relative"] for row in overhead.rows]
    assert rels == sorted(rels, reverse=True)  # monotonically shrinking
    assert rels[-1] < 0.05  # under 5% for a 5-minute job


def test_overhead_absolute_is_bounded(overhead):
    for row in overhead.rows:
        assert 0.0 < row["added"] < 30.0


def test_overhead_render(overhead):
    assert "onServe" in overhead.render()


# ---------------------------------------------------------------- small files

@pytest.fixture(scope="module")
def smallfiles():
    return run_smallfiles(levels=(4, 8), runtime=20.0)


def test_small_files_per_job_cost_flat_or_improving(smallfiles):
    """§VIII.B: 'quite good in a scenario using a lot of relatively
    small files' — per-job cost must not grow with the job count."""
    per_job = [row["per_job"] for row in smallfiles.rows]
    assert per_job[-1] <= per_job[0] * 1.15


def test_small_files_beat_large_file_per_job(smallfiles):
    """The network limitation 'doesn't play a huge role' for small
    files, unlike the 5 MB case."""
    assert (smallfiles.large_file_row["makespan"]
            > 3 * smallfiles.rows[-1]["per_job"])


def test_small_files_render(smallfiles):
    assert "small files" in smallfiles.render()
