"""Shape tests for the control-tower scenario (smoke-sized)."""

import json

import pytest

from repro.scenarios.controltower import run_controltower
from repro.telemetry.export import parse_prometheus_text


@pytest.fixture(scope="module")
def result():
    return run_controltower(smoke=True)


def test_alert_precedes_hard_breach(result):
    assert result.alert_at is not None
    assert result.breach_at is not None
    assert result.alert_at < result.breach_at
    assert result.alert_lead > 0
    # Both fire after the warm phase — faults cause them, not cold start.
    assert result.alert_at >= result.warm_until
    rows = {(r["slo"], r["objective"]): r for r in result.lead_time_rows()}
    assert rows[("fleet-availability", "availability")]["lead"] == \
        result.alert_lead


def test_hot_shard_detector_localizes_the_skewed_replica(result):
    assert result.hot_shard_localized
    assert result.detected_hot == result.hot_owner
    assert result.detected_at is not None
    # The ring owner of the hot service is what the detector must name.
    assert result.router.ring.owner(result.hot_service) == result.hot_owner
    imbalance = result.bus.events("fleet.imbalance")
    assert imbalance and imbalance[0].get("replica") == result.hot_owner


def test_fleet_rollup_sees_the_skew(result):
    shares = result.tower.fleet.load_shares()
    ownership = result.router.ring.ownership()
    hot = result.hot_owner
    # The hot replica serves far more than its ring arc.
    assert shares[hot] > 2.0 * ownership[hot]
    assert sum(shares.values()) == pytest.approx(1.0)
    assert result.tower.fleet.merged_latency().count > 0


def test_prometheus_export_round_trips_with_replica_labels(result):
    samples = parse_prometheus_text(result.prometheus())
    inflight = [k for k in samples
                if k.startswith("repro_router_inflight{replica=")]
    assert inflight  # per-replica gauge children exist
    budget = [k for k in samples if k.startswith("repro_slo_budget{")]
    assert any('slo="fleet-availability"' in k for k in budget)


def test_chrome_trace_nests_replica_spans_under_router_hop(result):
    doc = json.loads(result.trace_json())
    hops = [e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "router:hop"]
    assert hops
    replicas = {e["args"].get("replica") for e in hops}
    assert replicas - {None}  # hops name the replica that served them
    # Replica-side spans below a hop inherit its replica without any
    # layer past the router knowing about sharding.
    inherited = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"].startswith(("server:",
                                                            "service:",
                                                            "gram:"))
                 and "replica" in e["args"]]
    assert inherited
    assert all(e["args"]["principal"] for e in inherited)


def test_profiler_reports_throughput_and_split(result):
    prof = result.tower.profiler
    assert prof.events_dispatched > 10_000
    assert prof.events_per_second() > 0
    assert 0.0 < prof.telemetry_fraction() < 0.5
    assert prof.simulation_seconds() > 0


def test_render_contains_the_dashboard_sections(result):
    text = result.render()
    assert "hot shard: detected=" in text
    assert "alert lead times" in text
    assert "slo_budget" in text
    assert "kernel profile:" in text
    assert "events/second" in text


def test_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        run_controltower(replicas=1)
    with pytest.raises(ValueError):
        run_controltower(workers=1)
