"""Datapath ablation scenario: determinism, criteria, rendering."""

import pytest

from repro.scenarios.datapath import _percentile, run_datapath


def test_acceptance_criteria_at_16_jobs():
    result = run_datapath(levels=(16,))
    assert result.control_reduction_at(16) >= 0.40
    assert result.cpu_reduction_at(16) >= 0.40
    assert result.lag_improved_at(16)


def test_sweep_is_deterministic():
    a = run_datapath(levels=(1, 4), smoke=False, seed=0)
    b = run_datapath(levels=(1, 4), smoke=False, seed=0)
    assert a.rows == b.rows


def test_savings_grow_with_concurrency():
    result = run_datapath(levels=(2, 8, 16))
    reductions = [result.control_reduction_at(n) for n in (2, 8, 16)]
    assert reductions == sorted(reductions)
    # Batched p95 lag is bounded by the adaptive cap everywhere.
    for row in result.rows:
        assert row["batch_lag_p95"] <= 9.0 + 1.0


def test_smoke_levels_and_render():
    result = run_datapath(smoke=True)
    assert [int(r["n"]) for r in result.rows] == [1, 4]
    text = result.render()
    assert "data-path" in text
    assert text.count("\n") >= 3
    with pytest.raises(KeyError):
        result.control_reduction_at(99)


def test_percentile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert _percentile(values, 50.0) == 3.0
    assert _percentile(values, 95.0) == 5.0
    assert _percentile(values, 1.0) == 1.0
    assert _percentile([7.0], 95.0) == 7.0
