"""Unit tests for appliance images and deployment."""

import pytest

from repro.appliance import ApplianceImage, ImageBuilder, Package, deploy_image
from repro.appliance.image import ONSERVE_PACKAGES
from repro.errors import ApplianceError
from repro.hardware import Host, Network
from repro.hardware.host import HostSpec
from repro.simkernel import Simulator
from repro.units import MB, MBps, Mbps


def builder_with(*packages):
    b = ImageBuilder()
    for p in packages:
        b.provide(p)
    return b


def test_package_validation():
    with pytest.raises(ApplianceError):
        Package("x", "1", size_bytes=-1)
    with pytest.raises(ApplianceError):
        Package("x", "1", size_bytes=1, boot_seconds=-1)


def test_build_orders_dependencies():
    a = Package("a", "1", MB(1))
    b = Package("b", "1", MB(1), depends_on=("a",))
    c = Package("c", "1", MB(1), depends_on=("b", "a"))
    image = builder_with(a, b, c).build("img", ["c"])
    assert [p.name for p in image.packages] == ["a", "b", "c"]


def test_build_detects_cycles():
    a = Package("a", "1", MB(1), depends_on=("b",))
    b = Package("b", "1", MB(1), depends_on=("a",))
    with pytest.raises(ApplianceError, match="cycle"):
        builder_with(a, b).build("img", ["a"])


def test_build_unknown_package():
    with pytest.raises(ApplianceError, match="no such package"):
        ImageBuilder().build("img", ["ghost"])
    with pytest.raises(ApplianceError, match="at least one"):
        ImageBuilder().build("img", [])


def test_image_identity_stable():
    a = Package("a", "1", MB(1))
    img1 = builder_with(a).build("img", ["a"])
    img2 = builder_with(a).build("img", ["a"])
    assert img1.image_id == img2.image_id
    b = Package("a", "2", MB(1))
    img3 = builder_with(b).build("img", ["a"])
    assert img3.image_id != img1.image_id


def test_onserve_package_set_builds():
    builder = ImageBuilder()
    for p in ONSERVE_PACKAGES():
        builder.provide(p)
    image = builder.build("onserve", ["cyberaide-onserve"])
    names = [p.name for p in image.packages]
    assert names[-1] == "cyberaide-onserve"
    assert names.index("tomcat") < names.index("axis2")
    assert names.index("mysql") < names.index("juddi")
    assert image.size_bytes > MB(150)
    assert image.boot_seconds > 10


def _deploy_env():
    sim = Simulator()
    net = Network(sim)
    target = Host(sim, "target", net, HostSpec(disk_bandwidth=MBps(100)))
    repo = Host(sim, "repo", net, HostSpec())
    net.connect("target", "repo", bandwidth=Mbps(100))
    return sim, target, repo


def test_deploy_local_takes_boot_time():
    sim, target, repo = _deploy_env()
    image = builder_with(Package("a", "1", MB(10), boot_seconds=4.0,
                                 boot_cpu_seconds=1.0)).build("img", ["a"])
    appliance = sim.run(until=deploy_image(image, target))
    assert appliance.startup_seconds >= 4.0 + 1.0 + 5.0
    assert appliance.boot_log[0][0] == "a"
    assert target.disk.bytes_written() >= image.size_bytes


def test_deploy_from_repository_transfers_image():
    sim, target, repo = _deploy_env()
    image = builder_with(Package("a", "1", MB(10))).build("img", ["a"])
    sim.run(until=deploy_image(image, target, repository=repo))
    assert target.net_bytes_in() >= image.size_bytes


def test_shutdown_frees_disk():
    sim, target, repo = _deploy_env()
    image = builder_with(Package("a", "1", MB(10))).build("img", ["a"])
    appliance = sim.run(until=deploy_image(image, target))
    used = target.disk.used_bytes
    appliance.shutdown()
    assert target.disk.used_bytes < used
    with pytest.raises(ApplianceError):
        appliance.shutdown()
