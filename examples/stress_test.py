#!/usr/bin/env python
"""The §VIII.D stress test: simultaneous requests and the bottleneck.

"In a stress-test-scenario, when multiple up- and downloads from and to
the system have to be performed, a poor network connection might become
a bottleneck slowing down the treatment of the requests."

Eight users hammer the appliance at once — half uploading new 2 MB
executables through the portal, half invoking already-published
services — on a slow-uplink testbed.  The appliance host is instrumented
with the paper's 3-second sampler; the run ends with the utilization
figure and the per-request latency table.
"""

from repro.core import deploy_onserve, OnServeConfig
from repro.core.invocation import discover_and_invoke
from repro.grid import build_testbed
from repro.telemetry import HostSampler, render_figure
from repro.units import KB, KBps, MB, Mbps, fmt_duration
from repro.workloads import make_payload


def main() -> None:
    n_users = 8
    testbed = build_testbed(n_sites=4, nodes_per_site=4, cores_per_node=8,
                            appliance_uplink=KBps(300),
                            lan_bandwidth=Mbps(100), n_users=n_users)
    sim = testbed.sim
    stack = sim.run(until=deploy_onserve(
        testbed, OnServeConfig(poll_interval=9.0)))

    # Pre-publish services for the invokers.
    for i in range(n_users // 2, n_users):
        payload = make_payload("fixed", size=int(KB(256)), runtime="40",
                               output_bytes=str(int(KB(4))))
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[i], f"svc-{i:02d}.bin", payload))

    sampler = HostSampler(testbed.appliance_host, interval=3.0)
    t0 = sim.now
    latencies = []

    def uploader(i):
        payload = make_payload("fixed", size=int(2 * MB(1)), runtime="40")
        start = sim.now
        yield stack.portal.upload_and_generate(
            testbed.user_hosts[i], f"up-{i:02d}.bin", payload)
        latencies.append((f"upload-{i}", sim.now - start))

    def invoker(i):
        start = sim.now
        yield discover_and_invoke(stack, stack.user_clients[i],
                                  f"Svc{i:02d}%")
        latencies.append((f"invoke-{i}", sim.now - start))

    procs = []
    for i in range(n_users // 2):
        procs.append(sim.process(uploader(i)))
    for i in range(n_users // 2, n_users):
        procs.append(sim.process(invoker(i)))
    sim.run(until=sim.all_of(procs))
    makespan = sim.now - t0
    sim.run(until=sim.now + 3.0)  # close the last sample interval

    print(render_figure(
        f"Stress test — {n_users} simultaneous requests "
        f"(makespan {fmt_duration(makespan)})",
        [sampler.cpu, sampler.disk_write, sampler.net_in, sampler.net_out]))
    print("\nper-request latency:")
    for label, latency in sorted(latencies):
        print(f"  {label:12s} {fmt_duration(latency)}")
    slowest = max(latency for _, latency in latencies)
    print(f"\nslowest request: {fmt_duration(slowest)} — the thin "
          f"{KBps(300) / KB(1):.0f} KB/s uplink is the bottleneck, as "
          f"§VIII.D predicts")


if __name__ == "__main__":
    main()
