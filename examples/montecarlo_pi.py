#!/usr/bin/env python
"""Monte-Carlo pi on the grid: a real computation through the SaaS layer.

The motivating workload class of the paper's introduction: a scientist
with an embarrassingly-parallel code who does not want to learn RSL,
GSI or GRAM.  They upload one executable once; afterwards every run is a
plain web-service call.

This example uploads a Monte-Carlo pi estimator, fans out several
invocations with different seeds (each becoming an independent grid
job), and aggregates the *actual computed* estimates.

Run:  python examples/montecarlo_pi.py
"""

from repro.core import deploy_onserve
from repro.core.invocation import discover_and_invoke
from repro.grid import build_testbed
from repro.units import KB, Mbps, fmt_duration
from repro.workloads import make_payload


def main() -> None:
    testbed = build_testbed(n_sites=6, nodes_per_site=4, cores_per_node=8,
                            appliance_uplink=Mbps(20))
    sim = testbed.sim
    stack = sim.run(until=deploy_onserve(testbed))

    payload = make_payload("mcpi", size=int(KB(16)), sec_per_sample="1e-4")
    sim.run(until=stack.portal.upload_and_generate(
        testbed.user_hosts[0], "mcpi.bin", payload,
        description="Monte-Carlo pi estimator",
        params_spec="samples:int, seed:int"))
    print("uploaded mcpi.bin -> McpiService published in UDDI")

    client = stack.user_clients[0]
    n_jobs, samples = 8, 120_000
    print(f"fanning out {n_jobs} invocations x {samples} samples ...")

    estimates = []
    t0 = sim.now

    def one_run(seed):
        output = yield discover_and_invoke(stack, client, "Mcpi%",
                                           samples=samples, seed=seed)
        value = float(output.splitlines()[-1].split("=")[1])
        estimates.append((seed, value))

    procs = [sim.process(one_run(seed)) for seed in range(n_jobs)]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - t0

    print(f"all {n_jobs} grid jobs done in {fmt_duration(elapsed)} "
          f"(simulated)")
    for seed, value in sorted(estimates):
        print(f"  seed {seed}: pi ~ {value:.6f}")
    mean = sum(v for _, v in estimates) / len(estimates)
    print(f"aggregate over {n_jobs} jobs: pi ~ {mean:.6f} "
          f"(error {abs(mean - 3.1415926535):.6f})")

    lrm = testbed.sites[0].scheduler
    print(f"grid view: {sum(s.scheduler.jobs_completed for s in testbed.sites)}"
          f" jobs completed across {len(testbed.sites)} sites")


if __name__ == "__main__":
    main()
