#!/usr/bin/env python
"""A shared appliance: multiple users, UDDI discovery, and the shell.

Paper §V: "The access layer can be deployed locally by a user, or
deployed in a shared remote location and used by multiple users."

Three users share one onServe appliance:

* user00 publishes a word-count service,
* user01 publishes an echo service,
* user02 publishes nothing — they *discover* both services in the UDDI
  registry and invoke them.

The example closes with the Cyberaide Shell, the toolkit's command-line
face, driving the agent directly (the power-user path that bypasses the
generated services).
"""

from repro.core import deploy_onserve
from repro.core.invocation import discover_and_invoke
from repro.cyberaide import CyberaideShell
from repro.grid import build_testbed
from repro.units import KB, Mbps
from repro.workloads import make_payload
from repro.ws import WsClient


def main() -> None:
    testbed = build_testbed(n_sites=4, nodes_per_site=4, cores_per_node=8,
                            appliance_uplink=Mbps(16), n_users=3)
    sim = testbed.sim
    stack = sim.run(until=deploy_onserve(testbed))
    u0, u1, u2 = testbed.user_hosts

    # -- two publishers ---------------------------------------------------
    text = ("the grid runs the job and the job feeds the grid "
            "while the cloud watches the grid")
    wc = make_payload("wordcount", size=int(KB(8)), text=text)
    sim.run(until=stack.portal.upload_and_generate(
        u0, "word-count.sh", wc, description="counts words in its corpus"))
    echo = make_payload("echo", size=int(KB(2)))
    sim.run(until=stack.portal.upload_and_generate(
        u1, "echo.sh", echo, description="echoes its arguments",
        params_spec="a:string, b:string"))
    print("published services:",
          [s.service_name for s in stack.onserve.list_services()])

    # -- the consumer discovers everything through UDDI --------------------
    consumer = stack.user_clients[2]
    for pattern in ("%Service",):
        hits = stack.uddi.find_service(pattern)
        print(f"UDDI find_service({pattern!r}):",
              [f"{h.name} ({h.description})" for h in hits])

    out = sim.run(until=discover_and_invoke(stack, consumer, "WordCount%"))
    print("word counts from the grid:")
    for line in out.splitlines()[:5]:
        print(f"  {line}")

    out = sim.run(until=discover_and_invoke(stack, consumer, "Echo%",
                                            a="shared", b="appliance"))
    print(f"echo service says: {out.split()}")

    # -- the shell path ----------------------------------------------------
    print("\n--- Cyberaide Shell session (power user, no generated WS) ---")
    testbed.new_grid_identity("poweruser", "pw")
    shell = CyberaideShell(
        WsClient(u2, stack.fabric),
        stack.soap_server.endpoint_for("CyberaideAgent"))
    shell.add_file("probe.sh", make_payload("echo", size=256))
    for line in ("auth poweruser pw", "sites", "run ncsa probe.sh ping"):
        result = sim.run(until=shell.execute(line))
        print(f"cyberaide> {line}\n{result}")
    job_id = result.split(": ")[1]
    sim.run(until=sim.timeout(30.0))
    result = sim.run(until=shell.execute(f"output ncsa {job_id}"))
    print(f"cyberaide> output ncsa {job_id}\n{result}")


if __name__ == "__main__":
    main()
