#!/usr/bin/env python
"""Quickstart: SaaS on a production grid, end to end.

This walks the paper's two use scenarios (§VII) on a simulated TeraGrid:

1. deploy the onServe virtual appliance on demand,
2. upload an executable through the portal — onServe stores it, builds a
   web service for it, and publishes it in UDDI,
3. act as a service consumer: discover the service in UDDI, generate a
   client stub from its WSDL, and invoke ``execute`` — which transparently
   turns into a grid job (GridFTP staging, RSL, GRAM submission,
   tentative output polling) and returns the job's output.

Run:  python examples/quickstart.py
"""

from repro.core import deploy_onserve, OnServeConfig
from repro.core.invocation import discover_and_invoke, discover_service
from repro.grid import build_testbed
from repro.units import KB, Mbps, fmt_duration
from repro.workloads import make_payload


def main() -> None:
    # ---- a production grid: 11 sites, rigid JSE interfaces ------------
    testbed = build_testbed(n_sites=11, nodes_per_site=4, cores_per_node=8,
                            appliance_uplink=Mbps(8))
    sim = testbed.sim
    print(f"testbed up: {len(testbed.sites)} sites, "
          f"{sum(s.pool.total_cores for s in testbed.sites)} cores total")

    # ---- 1. deploy the appliance on demand -----------------------------
    stack = sim.run(until=deploy_onserve(testbed, OnServeConfig()))
    print(f"appliance deployed and booted in "
          f"{fmt_duration(stack.appliance.startup_seconds)} "
          f"(image {stack.appliance.image.image_id})")

    # ---- 2. upload an executable, get a web service --------------------
    payload = make_payload("echo", size=int(KB(4)))
    service = sim.run(until=stack.portal.upload_and_generate(
        testbed.user_hosts[0], "hello.sh", payload,
        description="prints its arguments, one per line",
        params_spec="greeting:string, name:string"))
    print(f"uploaded hello.sh -> generated {service.service_name}")
    print(f"  endpoint : {service.endpoint}")
    print(f"  WSDL     : {service.wsdl_location}")
    print(f"  UDDI key : {service.uddi_service_key}")

    # ---- 3. discover and invoke like any web-service client ------------
    client = stack.user_clients[0]
    name, endpoint, _ = sim.run(until=discover_service(stack, client,
                                                       "Hello%"))
    print(f"UDDI inquiry found {name!r} at {endpoint}")

    t0 = sim.now
    output = sim.run(until=discover_and_invoke(
        stack, client, "Hello%", greeting="hello", name="grid"))
    print(f"execute(greeting='hello', name='grid') returned in "
          f"{fmt_duration(sim.now - t0)}:")
    for line in output.splitlines():
        print(f"  | {line}")

    report = stack.onserve.runtimes[service.service_name].reports[-1]
    print("behind the scenes:")
    print(f"  grid job        : {report.job_id}")
    print(f"  DB retrieval    : {fmt_duration(report.retrieval)}")
    print(f"  authentication  : {fmt_duration(report.auth)}")
    print(f"  grid upload     : {fmt_duration(report.upload)}")
    print(f"  submit          : {fmt_duration(report.submit)}")
    print(f"  output polling  : {fmt_duration(report.polling)} "
          f"({report.polls} tentative polls — the paper's workaround)")


if __name__ == "__main__":
    main()
