#!/usr/bin/env python
"""Appliance crash and recovery: the virtual-appliance lifecycle.

Virtual appliances get killed — the host reboots, the VM is migrated,
the spot instance disappears.  This example shows what survives:

1. deploy onServe, publish two services, invoke one,
2. crash the appliance (every in-memory component is lost; only the
   database's write-ahead log survives on disk),
3. redeploy on demand — WAL recovery restores the executables and the
   invocation history, and the service build replays automatically, so
   both services are discoverable and invocable again with no
   re-upload.

Run:  python examples/appliance_restart.py
"""

from repro.core import deploy_onserve, discover_and_invoke
from repro.grid import build_testbed
from repro.units import KB, Mbps, fmt_duration
from repro.workloads import make_payload


def main() -> None:
    testbed = build_testbed(n_sites=3, nodes_per_site=4, cores_per_node=8,
                            appliance_uplink=Mbps(16))
    sim = testbed.sim

    # ---- first life ----------------------------------------------------
    stack = sim.run(until=deploy_onserve(testbed))
    for name, profile, params in (("hello.sh", "echo", "name:string"),
                                  ("pi.sh", "mcpi", "samples:int, seed:int")):
        payload = make_payload(profile, size=int(KB(4)))
        sim.run(until=stack.portal.upload_and_generate(
            testbed.user_hosts[0], name, payload, params_spec=params))
    print("first life: services =",
          [s.service_name for s in stack.onserve.list_services()])
    out = sim.run(until=discover_and_invoke(stack, stack.user_clients[0],
                                            "Hello%", name="world"))
    print(f"  invoked HelloService -> {out.strip()!r}")

    # ---- the crash ------------------------------------------------------
    print("\n*** appliance crash at "
          f"t={fmt_duration(sim.now)} — only the WAL survives ***\n")
    recovered_db = stack.dbmanager.recover_from_crash()
    stack.fabric.unregister(stack.soap_server)  # the old container is gone

    # ---- second life -----------------------------------------------------
    t0 = sim.now
    stack2 = sim.run(until=deploy_onserve(testbed, dbmanager=recovered_db))
    print(f"redeployed in {fmt_duration(sim.now - t0)}; restored services =",
          stack2.soap_server.services())
    hits = stack2.uddi.find_service("%Service")
    print("UDDI after recovery:", [h.name for h in hits])

    out = sim.run(until=discover_and_invoke(stack2, stack2.user_clients[0],
                                            "Pi%", samples=50000, seed=7))
    print(f"invoked PiService after recovery -> "
          f"{out.splitlines()[-1]}")

    history = stack2.dbmanager.db.select("invocations")
    print(f"invocation history spans both lives: {len(history)} rows "
          f"({sum(r['ok'] for r in history)} ok)")


if __name__ == "__main__":
    main()
