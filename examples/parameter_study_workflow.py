#!/usr/bin/env python
"""A parameter study as a Cyberaide workflow DAG.

The classic e-science experiment shape (paper ref [36], "Experiment and
Workflow Management Using Cyberaide Shell"):

    prepare ──> run(seed=0..5) ──> (client-side aggregation)

A preparation job runs first; six Monte-Carlo arms then run in parallel
on the grid; the script aggregates whatever arms survived.  One arm is
deliberately sabotaged with an impossible walltime to show failure
isolation: its descendants are poisoned, the rest of the study is
unaffected.

Run:  python examples/parameter_study_workflow.py
"""

from repro.cyberaide import (
    AgentConfig, CyberaideAgent, CyberaideJobSpec, NodeState, Workflow,
    WorkflowNode, WorkflowRunner,
)
from repro.grid import build_testbed
from repro.units import KB, Mbps, fmt_duration
from repro.workloads import make_payload
from repro.ws import SoapFabric, SoapServer, WsClient, generate_stub


def main() -> None:
    testbed = build_testbed(n_sites=2, nodes_per_site=8, cores_per_node=8,
                            appliance_uplink=Mbps(20))
    sim = testbed.sim
    testbed.new_grid_identity("scientist", "pw")

    # Stand up the agent as a web service (the toolkit layer only —
    # workflows do not need the full onServe SaaS stack).
    fabric = SoapFabric()
    server = SoapServer(testbed.appliance_host, fabric)
    agent = CyberaideAgent(testbed.appliance_host, testbed, AgentConfig())
    server.deploy(agent.service_description(), agent.handler)
    stub = generate_stub(server.wsdl(agent.SERVICE_NAME))(
        WsClient(testbed.appliance_host, fabric))

    # ---- build the DAG ---------------------------------------------------
    wf = Workflow("pi-study")
    prepare = make_payload("fixed", size=int(KB(4)), runtime="8",
                           output_bytes="128")
    wf.add(WorkflowNode("prepare", CyberaideJobSpec("prepare.bin"), prepare))
    arm_payload = make_payload("mcpi", size=int(KB(4)),
                               sec_per_sample="2e-4")
    for seed in range(6):
        spec = CyberaideJobSpec("mcpi.bin",
                                arguments=["80000", str(seed)])
        wf.add(WorkflowNode(f"run-{seed}", spec, arm_payload,
                            depends_on=("prepare",)))
    # Sabotage one arm: a walltime its runtime cannot fit.
    doomed = CyberaideJobSpec("slow.bin", max_wall_time=30)
    wf.add(WorkflowNode("run-doomed", doomed,
                        make_payload("fixed", size=int(KB(1)),
                                     runtime="500"),
                        depends_on=("prepare",)))
    wf.add(WorkflowNode("post-doomed",
                        CyberaideJobSpec("post.bin"),
                        make_payload("echo", size=int(KB(1))),
                        depends_on=("run-doomed",)))

    # ---- run it ------------------------------------------------------------
    runner = WorkflowRunner(sim, stub, site="ncsa", poll_interval=5.0,
                            max_node_seconds=120.0)
    t0 = sim.now
    sim.run(until=runner.run(wf, "scientist", "pw"))
    print(f"workflow finished in {fmt_duration(sim.now - t0)} (simulated)")
    print("node states:", wf.summary())

    estimates = []
    for name, node in sorted(wf.nodes.items()):
        if name.startswith("run-") and node.state is NodeState.DONE:
            value = float(node.output.decode().splitlines()[-1].split("=")[1])
            estimates.append(value)
            print(f"  {name}: pi ~ {value:.5f} "
                  f"(job {node.job_id}, {fmt_duration(node.finished_at - node.started_at)})")
        elif node.state is not NodeState.DONE:
            print(f"  {name}: {node.state.value} — {node.error}")
    mean = sum(estimates) / len(estimates)
    print(f"surviving arms: {len(estimates)}; aggregate pi ~ {mean:.5f}")


if __name__ == "__main__":
    main()
