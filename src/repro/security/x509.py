"""Simulated X.509 certificates and certificate authorities."""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import CertificateInvalid, CredentialExpired
from repro.security.keys import KeyPair, PublicKey

__all__ = ["Certificate", "CertificateAuthority"]


class Certificate:
    """A signed binding of a subject name to a public key.

    Validity is expressed in *simulated seconds* (the simulator clock is
    the only clock in this library).
    """

    __slots__ = ("subject", "issuer", "public_key", "not_before", "not_after",
                 "is_proxy", "serial", "signature")

    def __init__(self, subject: str, issuer: str, public_key: PublicKey,
                 not_before: float, not_after: float, serial: int,
                 is_proxy: bool = False, signature: bytes = b""):
        if not_after <= not_before:
            raise CertificateInvalid(
                f"certificate {subject!r}: empty validity interval")
        self.subject = subject
        self.issuer = issuer
        self.public_key = public_key
        self.not_before = not_before
        self.not_after = not_after
        self.is_proxy = is_proxy
        self.serial = serial
        self.signature = signature

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding."""
        return "|".join([
            self.subject, self.issuer, self.public_key.key_id,
            f"{self.not_before:.6f}", f"{self.not_after:.6f}",
            str(int(self.is_proxy)), str(self.serial),
        ]).encode()

    def check_validity(self, now: float) -> None:
        """Raise :class:`CredentialExpired` outside the validity window."""
        if now < self.not_before:
            raise CredentialExpired(
                f"{self.subject!r} not yet valid (now={now}, "
                f"not_before={self.not_before})")
        if now > self.not_after:
            raise CredentialExpired(
                f"{self.subject!r} expired (now={now}, "
                f"not_after={self.not_after})")

    def verify_signature(self, signer: PublicKey) -> None:
        """Raise :class:`CertificateInvalid` unless *signer* signed this."""
        if not signer.verify(self.tbs_bytes(), self.signature):
            raise CertificateInvalid(
                f"bad signature on certificate {self.subject!r}")

    def remaining_lifetime(self, now: float) -> float:
        return max(0.0, self.not_after - now)

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes (for traffic modelling).

        Real PEM certificates run 1-2 KB; we use the canonical encoding
        plus signature plus base64-ish framing overhead.
        """
        return len(self.tbs_bytes()) + len(self.signature) + 1200

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        kind = "proxy" if self.is_proxy else "cert"
        return f"<{kind} {self.subject!r} by {self.issuer!r}>"


class CertificateAuthority:
    """Issues end-entity certificates under its own name."""

    def __init__(self, name: str, rng: Optional[random.Random] = None):
        self.name = name
        self.keypair = KeyPair.generate(rng)
        self._serial = 0
        self._revoked: set[int] = set()

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    def issue(self, subject: str, public_key: PublicKey,
              not_before: float, lifetime: float) -> Certificate:
        """Issue a certificate for *subject* valid for *lifetime* seconds."""
        self._serial += 1
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            not_before=not_before,
            not_after=not_before + lifetime,
            serial=self._serial,
            is_proxy=False,
        )
        cert.signature = self.keypair.sign(cert.tbs_bytes())
        return cert

    def issue_identity(self, subject: str, not_before: float,
                       lifetime: float,
                       rng: Optional[random.Random] = None):
        """Convenience: generate a keypair and certify it.

        Returns ``(keypair, certificate)`` — a complete grid identity.
        """
        keypair = KeyPair.generate(rng)
        cert = self.issue(subject, keypair.public, not_before, lifetime)
        return keypair, cert

    # -- revocation -----------------------------------------------------------

    def revoke(self, certificate_or_serial) -> None:
        """Revoke a certificate (or a raw serial number)."""
        serial = (certificate_or_serial.serial
                  if isinstance(certificate_or_serial, Certificate)
                  else int(certificate_or_serial))
        self._revoked.add(serial)

    def crl(self) -> frozenset:
        """The CA's current certificate revocation list (serials)."""
        return frozenset(self._revoked)

    def is_revoked(self, certificate: Certificate) -> bool:
        return (certificate.issuer == self.name
                and certificate.serial in self._revoked)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<CertificateAuthority {self.name!r}>"
