"""Proxy certificates and delegation-chain validation (RFC 3820 style).

A proxy certificate is signed by the *holder* of the parent certificate's
key (not by a CA), carries a subject extending the parent's, and must not
outlive its parent.  Chains are validated leaf-first up to a trusted CA.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import CertificateInvalid, CredentialExpired
from repro.security.keys import KeyPair, PublicKey
from repro.security.x509 import Certificate

__all__ = ["ProxyCertificate", "delegate_proxy", "validate_chain"]

#: Maximum delegation depth accepted by :func:`validate_chain`.
MAX_PROXY_DEPTH = 8


class ProxyCertificate(Certificate):
    """A certificate issued by another certificate's key holder."""

    __slots__ = ()


def delegate_proxy(parent_cert: Certificate, parent_key: KeyPair,
                   not_before: float, lifetime: float,
                   serial: int = 0) -> tuple[KeyPair, ProxyCertificate]:
    """Create a proxy under *parent_cert*, signed with *parent_key*.

    Returns ``(proxy_keypair, proxy_certificate)``.  The proxy's validity
    is clipped to its parent's (a proxy can never outlive its parent).
    """
    if parent_key.public != parent_cert.public_key:
        raise CertificateInvalid(
            "delegation key does not match the parent certificate")
    not_after = min(not_before + lifetime, parent_cert.not_after)
    if not_after <= not_before:
        raise CredentialExpired(
            f"parent {parent_cert.subject!r} leaves no lifetime to delegate")
    proxy_key = KeyPair(
        # Deterministic derivation from the parent secret and serial keeps
        # repeated delegations reproducible without threading RNGs around.
        __import__("hashlib").sha256(
            parent_key.sign(f"proxy:{serial}:{not_before}".encode())
        ).digest()
    )
    proxy = ProxyCertificate(
        subject=parent_cert.subject + "/CN=proxy",
        issuer=parent_cert.subject,
        public_key=proxy_key.public,
        not_before=not_before,
        not_after=not_after,
        serial=serial,
        is_proxy=True,
    )
    proxy.signature = parent_key.sign(proxy.tbs_bytes())
    return proxy_key, proxy


def validate_chain(chain: Sequence[Certificate],
                   trusted_cas: Dict[str, PublicKey],
                   now: float,
                   crls: Dict[str, frozenset] = None) -> str:
    """Validate a leaf-first certificate chain.

    *chain* is ``[leaf proxy, ..., end-entity certificate]``; the
    end-entity certificate's issuer must be one of *trusted_cas*.
    *crls* optionally maps CA name -> revoked serials; a revoked EE
    certificate fails the chain even inside its validity window.
    Returns the authenticated end-entity subject.

    Raises :class:`CertificateInvalid` for structural/signature problems
    and :class:`CredentialExpired` for lifetime problems.
    """
    if not chain:
        raise CertificateInvalid("empty certificate chain")
    if len(chain) - 1 > MAX_PROXY_DEPTH:
        raise CertificateInvalid(
            f"delegation depth {len(chain) - 1} exceeds {MAX_PROXY_DEPTH}")

    end_entity = chain[-1]
    if end_entity.is_proxy:
        raise CertificateInvalid("chain does not terminate in an EE certificate")
    ca_key = trusted_cas.get(end_entity.issuer)
    if ca_key is None:
        raise CertificateInvalid(f"untrusted CA {end_entity.issuer!r}")
    end_entity.verify_signature(ca_key)
    end_entity.check_validity(now)
    if crls and end_entity.serial in crls.get(end_entity.issuer, ()):
        raise CertificateInvalid(
            f"certificate {end_entity.subject!r} (serial "
            f"{end_entity.serial}) has been revoked")

    # Walk from the EE certificate down to the leaf proxy.
    parent = end_entity
    for cert in reversed(chain[:-1]):
        if not cert.is_proxy:
            raise CertificateInvalid(
                f"non-proxy certificate {cert.subject!r} inside the chain")
        if cert.issuer != parent.subject:
            raise CertificateInvalid(
                f"broken chain: {cert.subject!r} issued by {cert.issuer!r}, "
                f"expected {parent.subject!r}")
        if not cert.subject.startswith(parent.subject + "/"):
            raise CertificateInvalid(
                f"proxy subject {cert.subject!r} does not extend its parent")
        cert.verify_signature(parent.public_key)
        cert.check_validity(now)
        if cert.not_after > parent.not_after + 1e-9:
            raise CertificateInvalid(
                f"proxy {cert.subject!r} outlives its parent")
        parent = cert
    return end_entity.subject


def chain_wire_size(chain: Sequence[Certificate]) -> int:
    """Total on-the-wire size of a chain (for traffic modelling)."""
    return sum(cert.wire_size() for cert in chain)
