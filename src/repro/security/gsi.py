"""GSI-style authentication contexts.

A :class:`GsiAcceptor` belongs to a service (e.g. the GRAM gatekeeper);
it holds the set of trusted CAs and an optional authorization list
(gridmap).  Clients present a proxy chain; the acceptor validates it and
returns an :class:`AuthContext` naming the authenticated subject, which
downstream calls carry as proof.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Set

from repro.errors import AuthenticationFailed
from repro.security.keys import PublicKey
from repro.security.proxy import chain_wire_size, validate_chain
from repro.security.x509 import Certificate, CertificateAuthority

__all__ = ["AuthContext", "GsiAcceptor"]


class AuthContext:
    """Proof of a completed authentication."""

    __slots__ = ("subject", "acceptor_name", "established_at", "context_id")

    def __init__(self, subject: str, acceptor_name: str,
                 established_at: float, context_id: int):
        self.subject = subject
        self.acceptor_name = acceptor_name
        self.established_at = established_at
        self.context_id = context_id

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<AuthContext {self.subject!r}@{self.acceptor_name}>"


class GsiAcceptor:
    """Service-side GSI endpoint: trusted CAs + gridmap authorization."""

    def __init__(self, name: str,
                 trusted_cas: Sequence[CertificateAuthority] = (),
                 gridmap: Optional[Set[str]] = None):
        self.name = name
        self._trusted: Dict[str, PublicKey] = {
            ca.name: ca.public_key for ca in trusted_cas}
        #: Authorized end-entity subjects; ``None`` means "any valid chain".
        self.gridmap = gridmap
        #: CA name -> revoked serials (refreshed via update_crl).
        self._crls: Dict[str, frozenset] = {}
        self._context_counter = itertools.count(1)
        self.handshakes_ok = 0
        self.handshakes_failed = 0

    def trust(self, ca: CertificateAuthority) -> None:
        """Add a CA to the trust store."""
        self._trusted[ca.name] = ca.public_key

    def update_crl(self, ca: CertificateAuthority) -> None:
        """Fetch the CA's current revocation list (a CRL refresh)."""
        self._crls[ca.name] = ca.crl()

    def authorize(self, subject: str) -> None:
        """Add *subject* to the gridmap (creating one if absent)."""
        if self.gridmap is None:
            self.gridmap = set()
        self.gridmap.add(subject)

    def accept(self, chain: Sequence[Certificate], now: float) -> AuthContext:
        """Validate *chain* and authorize its subject.

        Raises the specific :mod:`repro.errors` security exception on
        failure; returns an :class:`AuthContext` on success.
        """
        try:
            subject = validate_chain(chain, self._trusted, now,
                                     crls=self._crls)
        except Exception:
            self.handshakes_failed += 1
            raise
        if self.gridmap is not None and subject not in self.gridmap:
            self.handshakes_failed += 1
            raise AuthenticationFailed(
                f"{self.name}: subject {subject!r} not in gridmap")
        self.handshakes_ok += 1
        return AuthContext(subject, self.name, now,
                           next(self._context_counter))

    @staticmethod
    def handshake_bytes(chain: Sequence[Certificate]) -> int:
        """Bytes exchanged by a mutual-auth handshake presenting *chain*.

        The chain travels once, plus hello/finish framing both ways —
        this feeds the network traffic model for the credential exchange
        visible in Figure 6.
        """
        return chain_wire_size(chain) + 2 * 1024
