"""Simulated grid security infrastructure (GSI stand-in).

Production grids are "accessed with strict secure interface, for example,
with x.509 Certificates and Proxies" (paper, §II.B).  This package
reproduces the *structure* of that infrastructure — certificate
authorities, end-entity certificates, proxy-certificate delegation
chains, a MyProxy credential repository, and GSI-style mutual
authentication — with toy HMAC-based signatures.

.. warning::
   None of this is real cryptography.  Signatures are SHA-256 MACs whose
   verification works because the in-process public key object holds the
   verifying closure.  The point is to model the message flows, byte
   volumes and expiry semantics the paper's evaluation exercises, not to
   provide security.
"""

from repro.security.keys import KeyPair, PublicKey
from repro.security.myproxy import MyProxyServer
from repro.security.proxy import ProxyCertificate, delegate_proxy, validate_chain
from repro.security.x509 import Certificate, CertificateAuthority

__all__ = [
    "KeyPair",
    "PublicKey",
    "Certificate",
    "CertificateAuthority",
    "ProxyCertificate",
    "delegate_proxy",
    "validate_chain",
    "MyProxyServer",
]
