"""Simulated keypairs and signatures.

A :class:`KeyPair` signs data with an HMAC over its private secret; the
derived :class:`PublicKey` can verify those signatures (it carries the
verifying closure — see the package docstring for why this is an
acceptable simulation).  Key material is deterministic given an RNG
stream, so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Optional

__all__ = ["KeyPair", "PublicKey"]

_KEY_BYTES = 32


class PublicKey:
    """The public half: an identifier plus signature verification."""

    __slots__ = ("key_id", "_secret")

    def __init__(self, key_id: str, secret: bytes):
        self.key_id = key_id
        self._secret = secret

    def verify(self, data: bytes, signature: bytes) -> bool:
        """True iff *signature* was produced by the matching private key."""
        expected = hmac.new(self._secret, data, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

    def fingerprint(self) -> str:
        """Short stable identifier (for UI/diagnostics)."""
        return self.key_id[:16]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PublicKey) and other.key_id == self.key_id

    def __hash__(self) -> int:
        return hash(self.key_id)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<PublicKey {self.fingerprint()}>"


class KeyPair:
    """A private key with its derived public key."""

    __slots__ = ("_secret", "public")

    def __init__(self, secret: bytes):
        if len(secret) != _KEY_BYTES:
            raise ValueError(f"key secret must be {_KEY_BYTES} bytes")
        self._secret = secret
        key_id = hashlib.sha256(b"public:" + secret).hexdigest()
        self.public = PublicKey(key_id, secret)

    @classmethod
    def generate(cls, rng: Optional[random.Random] = None) -> "KeyPair":
        """Create a keypair from *rng* (deterministic if the stream is)."""
        rng = rng or random.Random()
        secret = bytes(rng.getrandbits(8) for _ in range(_KEY_BYTES))
        return cls(secret)

    def sign(self, data: bytes) -> bytes:
        """Sign *data* (32-byte MAC)."""
        return hmac.new(self._secret, data, hashlib.sha256).digest()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<KeyPair {self.public.fingerprint()}>"
