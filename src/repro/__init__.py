"""repro — a complete reproduction of "Cyberaide onServe: Software as a
Service on Production Grids" (ICPP 2010).

The package rebuilds the paper's middleware *and* every substrate it ran
on, over a deterministic discrete-event simulator.  The three entry
points most users want:

>>> from repro.grid import build_testbed          # a TeraGrid lookalike
>>> from repro.core import deploy_onserve         # the virtual appliance
>>> from repro.core.invocation import discover_and_invoke

See README.md for the quickstart, DESIGN.md for the system inventory,
and EXPERIMENTS.md for the paper-vs-measured record.

Subpackages
-----------
``simkernel``
    The discrete-event engine everything runs on.
``hardware`` / ``telemetry``
    Simulated hosts, disks, networks — and the 3-second sampler that
    reproduces the paper's monitoring figures.
``db`` / ``security`` / ``ws`` / ``grid`` / ``appliance`` / ``cyberaide``
    The substrates: embedded database, simulated GSI, SOAP/WSDL/UDDI
    stack, the production grid, appliance images, the Cyberaide toolkit.
``core``
    The paper's contribution: onServe.
``workloads`` / ``scenarios``
    Synthetic executables and the experiment harnesses.
"""

__version__ = "1.0.0"

__all__ = [
    "simkernel", "hardware", "telemetry", "db", "security", "ws", "grid",
    "appliance", "cyberaide", "core", "workloads", "scenarios",
    "errors", "units",
]
