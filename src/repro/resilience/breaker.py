"""Per-site circuit breakers.

The DIRAC-style site-banning idea in its classic three-state form: a
breaker starts *closed* (traffic flows, consecutive failures counted),
*opens* after ``failure_threshold`` consecutive failures (the site is
skipped entirely), and after ``reset_timeout`` simulated seconds lets
one probe through (*half-open*) — success closes it, another failure
re-opens it for a full timeout.

Pure bookkeeping: breakers never create simulation events; state is
driven entirely by the ``allow``/``record_*`` calls of the failover
logic.  Transitions emit ``breaker.transition`` telemetry events and
keep a ``breaker.<name>.state`` gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["CircuitBreaker", "BreakerBoard",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the states.
_STATE_LEVEL = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Closed / open / half-open failure gate for one target."""

    __slots__ = ("sim", "name", "failure_threshold", "reset_timeout",
                 "state", "failures", "opened_until", "transitions",
                 "_bus", "_gauge")

    def __init__(self, sim: "Simulator", name: str,
                 failure_threshold: int = 3,
                 reset_timeout: float = 900.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = CLOSED
        #: Consecutive failures while closed.
        self.failures = 0
        #: Sim time at which an open breaker admits a half-open probe.
        self.opened_until = 0.0
        #: (ts, from, to) transition history.
        self.transitions: List[Tuple[float, str, str]] = []
        self._bus = bus(sim)
        #: Created on first transition: a breaker that never trips
        #: leaves no trace in the gauge board.
        self._gauge = None

    def allow(self) -> bool:
        """May a request go to this target right now?

        An open breaker whose reset timeout elapsed moves to half-open
        and admits exactly the probe that asked.
        """
        if self.state == OPEN and self.sim.now >= self.opened_until:
            self._transition(HALF_OPEN)
        return self.state != OPEN

    def record_success(self) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.failures >= self.failure_threshold):
            self.opened_until = self.sim.now + self.reset_timeout
            self._transition(OPEN)

    def reset(self) -> None:
        """Force the breaker closed (an operator replaced the target).

        Used when a dead replica is restarted: the revived process is a
        fresh one, so the failure history of its predecessor should not
        keep it banned for a reset timeout it no longer deserves.
        """
        self.failures = 0
        self.opened_until = 0.0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def _transition(self, to: str) -> None:
        frm, self.state = self.state, to
        if to == CLOSED:
            self.failures = 0
        self.transitions.append((self.sim.now, frm, to))
        if self._gauge is None:
            self._gauge = gauges(self.sim).gauge(
                f"breaker.{self.name}.state", unit="level")
        self._gauge.set(_STATE_LEVEL[to])
        self._bus.emit("breaker.transition", layer="resilience",
                       breaker=self.name, frm=frm, to=to,
                       failures=self.failures)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<CircuitBreaker {self.name!r} {self.state} "
                f"failures={self.failures}>")


class BreakerBoard:
    """One breaker per grid site, created on first use."""

    def __init__(self, sim: "Simulator", failure_threshold: int = 3,
                 reset_timeout: float = 900.0):
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        cell = self._breakers.get(key)
        if cell is None:
            cell = self._breakers[key] = CircuitBreaker(
                self.sim, key, failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout)
        return cell

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def failure(self, key: str) -> None:
        self.breaker(key).record_failure()

    def success(self, key: str) -> None:
        self.breaker(key).record_success()

    def reset(self, key: str) -> None:
        """Force *key*'s breaker closed; no-op for a never-used key."""
        cell = self._breakers.get(key)
        if cell is not None:
            cell.reset()

    def states(self) -> Dict[str, str]:
        return {key: brk.state for key, brk in sorted(self._breakers.items())}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<BreakerBoard {self.states()}>"
