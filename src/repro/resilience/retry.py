"""Retry with exponential backoff and deterministic jitter.

:func:`retry_call` is the one retry loop the middleware uses: it drives
an *attempt factory* (returning a fresh process/event or generator per
attempt), classifies failures through
:func:`~repro.errors.is_retryable`, and sleeps an exponentially growing,
budget-capped backoff between attempts.  Jitter draws from a named RNG
stream, so identical seeds retry at identical instants.

Determinism contract: the first attempt is driven exactly as the
un-wrapped call would be (``yield`` the event / ``yield from`` the
generator — no extra process, no extra simulation events), so wrapping
a call site in :func:`retry_call` cannot perturb a fault-free run.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.core.context import RequestContext
from repro.errors import is_retryable, root_cause_name
from repro.simkernel.events import Event
from repro.telemetry.events import bus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["RetryPolicy", "retry_call"]


class RetryPolicy:
    """How often and how patiently to retry a transient failure."""

    __slots__ = ("max_attempts", "base_delay", "multiplier", "max_delay",
                 "jitter", "budget")

    def __init__(self, max_attempts: int = 3, base_delay: float = 2.0,
                 multiplier: float = 2.0, max_delay: float = 30.0,
                 jitter: float = 0.0, budget: Optional[float] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if budget is not None and budget < 0:
            raise ValueError("budget must be >= 0")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        #: Fractional jitter: the delay is scaled by 1 ± jitter.
        self.jitter = jitter
        #: Total seconds of backoff sleep allowed across all attempts.
        self.budget = budget

    def backoff(self, attempt: int, rng=None) -> float:
        """The sleep before retry number *attempt* (1-based failures)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"base={self.base_delay:g}s x{self.multiplier:g} "
                f"cap={self.max_delay:g}s>")


def retry_call(sim: "Simulator", policy: RetryPolicy,
               attempt_factory: Callable[[], Any],
               ctx: Optional[RequestContext] = None,
               label: str = "",
               classify: Callable[[BaseException], bool] = is_retryable,
               on_retry: Optional[Callable[[BaseException, int], None]] = None
               ) -> Generator[Event, None, Any]:
    """Drive *attempt_factory* under *policy* (delegate with ``yield from``).

    Each attempt the factory returns either an :class:`Event`/process to
    wait on or a generator to delegate to.  Failures that *classify*
    marks transient are retried after the policy's backoff — unless the
    attempt budget, the sleep budget, or the context deadline would be
    exceeded, in which case the last failure propagates unchanged.
    ``on_retry(exc, attempt)`` runs before each backoff sleep (session
    recovery hooks live there).  Every retry emits a ``retry.attempt``
    telemetry event.
    """
    attempt = 0
    slept = 0.0
    rng = None
    while True:
        attempt += 1
        try:
            trial = attempt_factory()
            if isinstance(trial, Event):
                return (yield trial)
            return (yield from trial)
        except Exception as exc:
            if attempt >= policy.max_attempts or not classify(exc):
                raise
            if rng is None and policy.jitter:
                rng = sim.rng.stream(f"retry:{label or 'anonymous'}")
            delay = policy.backoff(attempt, rng)
            if policy.budget is not None and slept + delay > policy.budget:
                raise
            if (ctx is not None and ctx.deadline is not None
                    and sim.now + delay > ctx.deadline):
                raise
            bus(sim).emit("retry.attempt", layer="resilience",
                          request_id=ctx.request_id if ctx else None,
                          label=label, attempt=attempt,
                          delay=round(delay, 6),
                          error=root_cause_name(exc))
            if on_retry is not None:
                on_retry(exc, attempt)
            slept += delay
            if delay > 0:
                yield sim.timeout(delay, name=f"retry:{label}")
