"""Resilience policies: retry/backoff, circuit breakers, failover glue.

The counterpart of :mod:`repro.faults`: where the fault plane breaks
the stack on purpose, this package is how the middleware recovers —
:func:`retry_call` under a :class:`RetryPolicy` for transient call
failures, a per-site :class:`CircuitBreaker` board for repeat
offenders, and the transient-vs-permanent classification from
:mod:`repro.errors` deciding what is worth retrying at all.  Site
failover itself lives in
:class:`~repro.core.grid_service.GridServiceRuntime`, built on these
pieces.
"""

from repro.resilience.breaker import (
    BreakerBoard, CircuitBreaker, CLOSED, HALF_OPEN, OPEN,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "RetryPolicy", "retry_call",
    "CircuitBreaker", "BreakerBoard", "CLOSED", "OPEN", "HALF_OPEN",
]
