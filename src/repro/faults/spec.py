"""Declarative fault specifications.

A :class:`FaultSpec` names one failure mode to inject: *what* breaks
(``kind``), *where* (``target`` — a site name, or ``"*"`` for
everywhere), and *when* — either probabilistically (``rate`` per
opportunity, drawn from a named RNG stream) or on a schedule (``at`` a
sim-time instant for one-shot faults such as a node crash, or a
``window`` during which a site is down).  ``max_fires`` caps how often a
probabilistic spec triggers, which is how "fail the first attempt, then
recover" cases are written deterministically.

The spec is pure data; the :class:`~repro.faults.injector.FaultInjector`
interprets it.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec"]

#: Every failure mode the injector knows how to arm, by layer:
#: GridFTP data channels, the GRAM gatekeeper, the compute plant,
#: the security session, and the embedded database.
FAULT_KINDS = frozenset({
    "gridftp.abort",        # mid-transfer TransferError
    "gridftp.degrade",      # transfer stalls for `duration` seconds
    "gram.refuse",          # SubmissionRefused at the gatekeeper
    "gram.lost_job",        # accepted, then dropped by the LRM
    "site.outage",          # site-wide down window (needs `window`)
    "node.crash",           # kill one node at `at` (needs `at`)
    "replica.crash",        # kill a fabric replica inside `window`
                            # (the instant is drawn seeded within it)
    "security.credential_expired",  # session proxy invalidated
    "db.stall",             # transient write stall for `duration`
    "db.txn_error",         # TransactionError on commit
})


class FaultSpec:
    """One declarative fault to inject (see module docstring)."""

    __slots__ = ("kind", "target", "rate", "at", "window", "duration",
                 "node", "max_fires", "fires")

    def __init__(self, kind: str, target: str = "*", rate: float = 1.0,
                 at: Optional[float] = None,
                 window: Optional[Tuple[float, float]] = None,
                 duration: float = 0.0,
                 node: Optional[str] = None,
                 max_fires: Optional[int] = None):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} "
                             f"(have {sorted(FAULT_KINDS)})")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")
        if window is not None:
            start, end = window
            if end <= start:
                raise ValueError(f"fault window must run forward, "
                                 f"got {window!r}")
        if kind == "site.outage" and window is None:
            raise ValueError("site.outage needs a (start, end) window")
        if kind == "node.crash" and at is None:
            raise ValueError("node.crash needs an `at` instant")
        if kind == "replica.crash" and window is None:
            raise ValueError("replica.crash needs a (start, end) window "
                             "(the crash instant is drawn inside it)")
        if duration < 0:
            raise ValueError("fault duration must be >= 0")
        if max_fires is not None and max_fires < 1:
            raise ValueError("max_fires must be >= 1")
        self.kind = kind
        self.target = target
        self.rate = rate
        self.at = at
        self.window = window
        self.duration = duration
        self.node = node
        self.max_fires = max_fires
        #: How often this spec has actually triggered.
        self.fires = 0

    # -- predicates ---------------------------------------------------------

    def matches(self, target: str) -> bool:
        """Does this spec apply to *target* (a site name or ``""``)?"""
        return self.target == "*" or self.target == target

    def active_at(self, now: float) -> bool:
        """Is *now* inside this spec's window (always True without one)?"""
        if self.window is None:
            return True
        start, end = self.window
        return start <= now < end

    @property
    def exhausted(self) -> bool:
        """Has this spec hit its ``max_fires`` cap?"""
        return self.max_fires is not None and self.fires >= self.max_fires

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        bits = [self.kind, f"target={self.target!r}"]
        if self.rate != 1.0:
            bits.append(f"rate={self.rate:g}")
        if self.at is not None:
            bits.append(f"at={self.at:g}")
        if self.window is not None:
            bits.append(f"window={self.window!r}")
        if self.max_fires is not None:
            bits.append(f"max_fires={self.max_fires}")
        return f"<FaultSpec {' '.join(bits)}>"
