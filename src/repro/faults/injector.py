"""The deterministic fault injector.

One :class:`FaultInjector` hangs off a simulator (the same lazy-attach
pattern the telemetry bus uses) and interprets the configured
:class:`~repro.faults.spec.FaultSpec` list.  The layers that can fail
call the hooks at their injection points:

* ``fire(kind, target)`` — probabilistic / capped faults: returns the
  spec that triggered (caller raises the matching typed error) or
  ``None``.
* ``down(site)`` — passive site-outage window check.
* ``install(testbed)`` — arms scheduled faults (node crashes) as
  simulation timers.

Determinism contract
--------------------
Injection randomness draws exclusively from named
:class:`~repro.simkernel.rng.RngRegistry` streams
(``fault:<kind>:<target>``), so identical seeds produce identical fault
schedules.  When *no* specs are configured, :func:`get_injector` returns
``None`` and every hook is a single attribute lookup: no simulation
events, no RNG draws, no bus traffic — which is what keeps the golden
series byte-identical with the fault plane imported but disabled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.faults.spec import FaultSpec
from repro.telemetry.events import bus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.testbed import Testbed
    from repro.simkernel.kernel import Simulator

__all__ = ["FaultInjector", "fault_plane", "get_injector"]


class FaultInjector:
    """Interprets fault specs for one simulator run."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._specs: Dict[str, List[FaultSpec]] = {}
        self._armed: List[FaultSpec] = []
        self._bus = bus(sim)
        #: Total faults actually injected (all kinds).
        self.injected = 0

    # -- configuration ------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultInjector":
        self._specs.setdefault(spec.kind, []).append(spec)
        return self

    def configure(self, specs: Iterable[FaultSpec]) -> "FaultInjector":
        for spec in specs:
            self.add(spec)
        return self

    def clear(self) -> None:
        self._specs.clear()

    @property
    def active(self) -> bool:
        """True when any fault spec is configured."""
        return bool(self._specs)

    def specs(self, kind: Optional[str] = None) -> List[FaultSpec]:
        if kind is not None:
            return list(self._specs.get(kind, ()))
        return [s for specs in self._specs.values() for s in specs]

    # -- hooks --------------------------------------------------------------

    def fire(self, kind: str, target: str = "") -> Optional[FaultSpec]:
        """Should fault *kind* trigger against *target* right now?

        Returns the triggering spec (the caller raises the typed error
        and may read ``spec.duration`` etc.) or ``None``.  Probabilistic
        specs draw from the ``fault:<kind>:<target>`` RNG stream.
        """
        specs = self._specs.get(kind)
        if not specs:
            return None
        for spec in specs:
            if (spec.exhausted or not spec.matches(target)
                    or not spec.active_at(self.sim.now)):
                continue
            if spec.rate < 1.0:
                rng = self.sim.rng.stream(f"fault:{spec.kind}:{spec.target}")
                if rng.random() >= spec.rate:
                    continue
            return self._trigger(spec, target)
        return None

    def down(self, site: str) -> Optional[FaultSpec]:
        """Is *site* inside a configured outage window right now?"""
        specs = self._specs.get("site.outage")
        if not specs:
            return None
        for spec in specs:
            if spec.matches(site) and spec.active_at(self.sim.now):
                return self._trigger(spec, site)
        return None

    def install(self, testbed: "Testbed") -> "FaultInjector":
        """Arm scheduled faults (node crashes) as simulation timers.

        Idempotent per spec: re-installing (e.g. after adding specs)
        only arms the new ones.
        """
        for spec in self.specs("node.crash"):
            if spec in self._armed:
                continue
            self._armed.append(spec)

            def crash(spec: FaultSpec = spec):
                if spec.at > self.sim.now:
                    yield self.sim.timeout(spec.at - self.sim.now,
                                           name="fault:node-crash")
                site = (testbed.sites[0] if spec.target == "*"
                        else testbed.site(spec.target))
                node = spec.node or site.pool.nodes[0].name
                killed = site.fail_node(node)
                self._trigger(spec, site.name, node=node,
                              jobs_killed=len(killed))

            self.sim.process(crash(), name=f"fault:node.crash:{spec.target}")
        return self

    def install_fabric(self, stack) -> "FaultInjector":
        """Arm ``replica.crash`` specs against a deployed fabric stack.

        Each spec kills one replica at a seeded instant drawn uniformly
        inside its window (``target`` names the replica, or ``"*"`` for
        a seeded pick among the replicas still routable at fire time).
        Idempotent per spec, like :meth:`install`.
        """
        for spec in self.specs("replica.crash"):
            if spec in self._armed:
                continue
            self._armed.append(spec)

            def crash(spec: FaultSpec = spec):
                start, end = spec.window
                rng = self.sim.rng.stream(
                    f"fault:replica.crash:{spec.target}")
                at = start + rng.random() * (end - start)
                if at > self.sim.now:
                    yield self.sim.timeout(at - self.sim.now,
                                           name="fault:replica-crash")
                name = spec.target
                if name == "*":
                    live = stack.router.replicas()
                    if not live:
                        return
                    name = live[rng.randrange(len(live))]
                killed = stack.crash_replica(name)
                self._trigger(spec, name, inflight_killed=killed)

            self.sim.process(crash(),
                             name=f"fault:replica.crash:{spec.target}")
        return self

    # -- internals ----------------------------------------------------------

    def _trigger(self, spec: FaultSpec, target: str,
                 **extra) -> FaultSpec:
        spec.fires += 1
        self.injected += 1
        self._bus.emit("fault.injected", layer="fault", fault=spec.kind,
                       target=target, fires=spec.fires, **extra)
        return spec


def fault_plane(sim: "Simulator") -> FaultInjector:
    """The simulator's fault injector (lazily attached, one per run)."""
    existing = getattr(sim, "_fault_injector", None)
    if existing is None:
        existing = FaultInjector(sim)
        sim._fault_injector = existing  # type: ignore[attr-defined]
    return existing


def get_injector(sim: "Simulator") -> Optional[FaultInjector]:
    """The *active* injector, or ``None``.

    This is the hook-side accessor: it never attaches anything, and it
    returns ``None`` when no fault specs are configured, so the happy
    path stays one attribute lookup with zero side effects.
    """
    injector = getattr(sim, "_fault_injector", None)
    if injector is None or not injector.active:
        return None
    return injector
