"""The fault plane: deterministic, seeded failure injection.

Production grids fail constantly — the paper's tentative-polling
watchdog (§VIII.B) only exists because of it.  This package lets
scenarios break the simulated stack *on purpose*, reproducibly:
declarative :class:`FaultSpec` objects name a failure mode, a target and
a schedule (rate, instant or window); the per-simulator
:class:`FaultInjector` interprets them at hooks wired into GridFTP,
GRAM, the compute plant, the security session and the database.

With no specs configured the plane is inert by construction — see
:func:`get_injector` — so importing it cannot perturb golden runs.
"""

from repro.faults.injector import FaultInjector, fault_plane, get_injector
from repro.faults.spec import FAULT_KINDS, FaultSpec

__all__ = [
    "FAULT_KINDS", "FaultSpec",
    "FaultInjector", "fault_plane", "get_injector",
]
