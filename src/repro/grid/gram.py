"""K-GRAM: the gatekeeper — the grid's rigid job-submission interface.

Everything enters the site through here: an authenticated ``submit``
carrying an RSL string, plus ``status`` / ``cancel`` / ``fetch_output``.
The interface is deliberately narrow (the JSE model): no service
deployment, no custom environments — exactly the constraint that makes
onServe's translation layer necessary.

The paper notes "K-GRAM permits to submit a large number of jobs quite
efficiently" (§VIII.B): submission here is a short control exchange plus
an authentication, independent of executable size (staging is GridFTP's
job), which is why many-small-jobs workloads amortize well.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence

from repro.core.context import RequestContext, span
from repro.errors import SubmissionRefused
from repro.faults.injector import get_injector
from repro.grid.job import JobState
from repro.grid.rsl import parse_rsl
from repro.grid.site import GridSite
from repro.hardware.host import Host
from repro.security.gsi import GsiAcceptor
from repro.security.x509 import Certificate
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["GramGatekeeper"]


class GramGatekeeper:
    """The GRAM endpoint of one grid site."""

    #: Control bytes for a submit exchange (RSL travels inside).
    SUBMIT_OVERHEAD_BYTES = 1536
    #: Control bytes for status/cancel/poll exchanges.
    POLL_BYTES = 768
    #: Head-node CPU per request (authorization, RSL handling, LRM talk).
    REQUEST_CPU = 0.05

    def __init__(self, site: GridSite):
        self.site = site
        self.sim = site.sim
        self.host = site.head
        self.submissions = 0
        self.refusals = 0
        #: job_id -> completion event (fires with the terminal job).
        self._completions: Dict[str, Event] = {}
        #: Observability plane: concurrent gatekeeper exchanges become a
        #: gauge (the "GRAM queue" of §VIII.D), submissions become events.
        self._bus = bus(self.sim)
        self._inflight = gauges(self.sim).gauge(
            f"gram.{site.name}.inflight", unit="reqs")

    # -- operations (all simulation processes) ------------------------------

    def submit(self, client: Host, chain: Sequence[Certificate],
               rsl_text: str,
               ctx: Optional[RequestContext] = None) -> Process:
        """Submit a job described by *rsl_text*; value is the job id."""

        def op() -> Generator[Event, None, str]:
            rid = ctx.request_id if ctx is not None else None
            injector = get_injector(self.sim)
            self._inflight.adjust(+1)
            try:
                with span(ctx, "gram:submit", site=self.site.name):
                    if (injector is not None
                            and injector.down(self.site.name)):
                        self.refusals += 1
                        raise SubmissionRefused(
                            f"{self.site.name}: gatekeeper unreachable "
                            f"(site outage)")
                    handshake = GsiAcceptor.handshake_bytes(chain)
                    yield client.send(
                        self.host,
                        handshake + self.SUBMIT_OVERHEAD_BYTES + len(rsl_text),
                        label="gram-submit")
                    try:
                        gsi = self.site.acceptor.accept(chain, self.sim.now)
                        description = parse_rsl(rsl_text)
                        if (injector is not None and
                                injector.fire("gram.refuse", self.site.name)):
                            raise SubmissionRefused(
                                f"{self.site.name}: gatekeeper refused the "
                                f"submission (transient LRM rejection)")
                    except Exception as exc:
                        self.refusals += 1
                        self._bus.emit("gram.refused", layer="grid",
                                       request_id=rid, site=self.site.name,
                                       reason=type(exc).__name__)
                        yield self.host.send(client, 512, label="gram-refused")
                        raise
                    yield self.host.compute(self.REQUEST_CPU, tag="gram")
                    job = self.site.create_job(description, owner=gsi.subject)
                    if (injector is not None and
                            injector.fire("gram.lost_job", self.site.name)):
                        # The classic lost job: the gatekeeper hands out a
                        # perfectly good handle, but the LRM never hears of
                        # it — later polls find nothing (JobNotFound).
                        self.site.drop_job(job.job_id)
                        self.submissions += 1
                        yield self.host.send(client, 512,
                                             label="gram-handle")
                        return job.job_id
                    done = self.site.run_job(job)
                    self._completions[job.job_id] = done
                    self.submissions += 1
                    self._bus.emit("gram.submit", layer="grid",
                                   request_id=rid, site=self.site.name,
                                   job_id=job.job_id)
                    yield self.host.send(client, 512, label="gram-handle")
            finally:
                self._inflight.adjust(-1)
            return job.job_id

        return self.sim.process(op(), name="gram-submit")

    def status(self, client: Host, job_id: str) -> Process:
        """Query a job's state; value is the :class:`JobState`."""

        def op() -> Generator[Event, None, JobState]:
            yield client.send(self.host, self.POLL_BYTES, label="gram-status")
            yield self.host.compute(0.005, tag="gram")
            job = self.site.get_job(job_id)
            yield self.host.send(client, 256, label="gram-status-rsp")
            return job.state

        return self.sim.process(op(), name=f"gram-status:{job_id}")

    def cancel(self, client: Host, job_id: str) -> Process:
        """Cancel a queued/running job; value is True."""

        def op() -> Generator[Event, None, bool]:
            yield client.send(self.host, self.POLL_BYTES, label="gram-cancel")
            yield self.host.compute(0.01, tag="gram")
            self.site.cancel_job(job_id)
            yield self.host.send(client, 256, label="gram-cancel-rsp")
            return True

        return self.sim.process(op(), name=f"gram-cancel:{job_id}")

    def fetch_output(self, client: Host, job_id: str,
                     ctx: Optional[RequestContext] = None) -> Process:
        """Fetch whatever output exists *now* (the tentative poll).

        For a running job this transfers the partial placeholder bytes;
        for a DONE job, the real output.  The value is the bytes read.
        This is the operation the watchdog repeats on a fixed interval
        because job status "can't be retrieved" through the agent
        (§VIII.B) — each call costs a disk read at the site and a
        transfer back, producing the periodic write peaks in Figs 6-7.
        """

        def op() -> Generator[Event, None, bytes]:
            injector = get_injector(self.sim)
            with span(ctx, "gram:fetch-output", job=job_id):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                yield client.send(self.host, self.POLL_BYTES,
                                  label="gram-output")
                data = self.site.partial_output(job_id)
                if data:
                    yield self.host.disk_read(len(data))
                yield self.host.send(client, max(len(data), 128),
                                     label="gram-output-rsp")
            self._bus.emit("gram.fetch_output", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, job_id=job_id,
                           nbytes=len(data))
            return data

        return self.sim.process(op(), name=f"gram-output:{job_id}")

    def completion_event(self, job_id: str) -> Event:
        """The event that fires when *job_id* reaches a terminal state."""
        try:
            return self._completions[job_id]
        except KeyError:
            raise SubmissionRefused(
                f"gatekeeper has no record of job {job_id!r}") from None
