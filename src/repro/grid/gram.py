"""K-GRAM: the gatekeeper — the grid's rigid job-submission interface.

Everything enters the site through here: an authenticated ``submit``
carrying an RSL string, plus ``status`` / ``cancel`` / ``fetch_output``.
The interface is deliberately narrow (the JSE model): no service
deployment, no custom environments — exactly the constraint that makes
onServe's translation layer necessary.

The paper notes "K-GRAM permits to submit a large number of jobs quite
efficiently" (§VIII.B): submission here is a short control exchange plus
an authentication, independent of executable size (staging is GridFTP's
job), which is why many-small-jobs workloads amortize well.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence

from repro.core.context import RequestContext, span
from repro.errors import JobNotFound, SubmissionRefused
from repro.faults.injector import get_injector
from repro.grid.job import JobState
from repro.grid.rsl import parse_rsl
from repro.grid.site import GridSite
from repro.hardware.host import Host
from repro.security.gsi import GsiAcceptor
from repro.security.x509 import Certificate
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["GramGatekeeper"]


class GramGatekeeper:
    """The GRAM endpoint of one grid site."""

    #: Control bytes for a submit exchange (RSL travels inside).
    SUBMIT_OVERHEAD_BYTES = 1536
    #: Control bytes for status/cancel/poll exchanges.
    POLL_BYTES = 768
    #: Head-node CPU per request (authorization, RSL handling, LRM talk).
    REQUEST_CPU = 0.05
    #: Marginal control bytes per extra job folded into a batch exchange
    #: (a job id + a flag ride in the request that already paid the
    #: authentication/envelope cost once).
    BATCH_ITEM_BYTES = 32
    #: Marginal head-node CPU per extra job in a batch (one table lookup
    #: vs a full authorization + envelope parse).
    BATCH_ITEM_CPU = 0.001
    #: Control bytes per push notification (a small state-change
    #: callback message, no envelope negotiation — the connection the
    #: subscription holds open already paid it).
    NOTIFY_BYTES = 256

    def __init__(self, site: GridSite):
        self.site = site
        self.sim = site.sim
        self.host = site.head
        self.submissions = 0
        self.refusals = 0
        #: Data-path accounting (plain counters, never simulation events):
        #: control-plane bytes exchanged, number of gatekeeper exchanges,
        #: and the modelled head-node CPU cost — REQUEST_CPU per exchange
        #: plus BATCH_ITEM_CPU per extra batched job.  The ablation in
        #: ``scenarios/datapath.py`` reads these; the timeline never does.
        self.control_bytes = 0
        self.exchanges = 0
        self.head_cpu_modeled = 0.0
        #: job_id -> completion event (fires with the terminal job).
        self._completions: Dict[str, Event] = {}
        #: Push path (ROADMAP item 1): the durable notification queue
        #: this gatekeeper publishes job-state changes to, if its site
        #: "supports" callbacks.  Heterogeneous on purpose: an attached
        #: queue with ``capable=False`` is never published to.
        self.notify_queue = None
        self.notify_capable = False
        #: Notification accounting (plain counters, like the data-path
        #: ones): messages pushed and their modelled control bytes.
        #: Deliberately *not* folded into ``exchanges`` — a push is not
        #: a client-initiated poller exchange.
        self.notifications = 0
        self.notify_bytes = 0
        #: Observability plane: concurrent gatekeeper exchanges become a
        #: gauge (the "GRAM queue" of §VIII.D), submissions become events.
        self._bus = bus(self.sim)
        self._inflight = gauges(self.sim).gauge(
            f"gram.{site.name}.inflight", unit="reqs")

    def _account(self, nbytes: int, jobs: int = 1) -> None:
        """Book one control exchange covering *jobs* jobs."""
        self.control_bytes += nbytes
        self.exchanges += 1
        self.head_cpu_modeled += (self.REQUEST_CPU
                                  + self.BATCH_ITEM_CPU * (jobs - 1))

    # -- push notifications (ROADMAP item 1) ---------------------------------

    def attach_notify(self, queue, capable: bool = True) -> None:
        """Wire this gatekeeper to the durable notification queue.

        With ``capable=True`` the site registers in the queue's
        capability set, every ``submit`` publishes the job's lifecycle
        (submit-frame state, then the terminal state the moment it is
        reached — same frame as the state change, PR 8's durability
        discipline), and the scheduler's ``sched.start`` events are
        mirrored into the ``job_states`` table (a row write only: bus
        observers must stay pure).  With ``capable=False`` the queue is
        merely referenced — nothing is ever published, recorded or
        scheduled, which is what keeps an attached-but-incapable queue
        byte-invisible to the goldens.
        """
        self.notify_queue = queue
        self.notify_capable = capable
        if not capable:
            return
        queue.attach_site(self.site.name)
        prefix = f"{self.site.name}-job-"
        self._bus.subscribe(
            lambda ev: queue.record_state(
                self.site.name, ev.fields["job_id"], JobState.ACTIVE.value)
            if ev.fields.get("job_id", "").startswith(prefix) else None,
            kinds=["sched.start"])

    def _push_state(self, job_id: str, state: str, terminal: bool,
                    error: bool = False) -> None:
        """Publish one state change (and book its modelled bytes)."""
        self.notifications += 1
        self.notify_bytes += self.NOTIFY_BYTES
        self.notify_queue.publish(self.site.name, job_id, state,
                                  terminal=terminal, error=error)

    # -- operations (all simulation processes) ------------------------------

    def submit(self, client: Host, chain: Sequence[Certificate],
               rsl_text: str,
               ctx: Optional[RequestContext] = None) -> Process:
        """Submit a job described by *rsl_text*; value is the job id."""

        def op() -> Generator[Event, None, str]:
            rid = ctx.request_id if ctx is not None else None
            injector = get_injector(self.sim)
            self._inflight.adjust(+1)
            try:
                with span(ctx, "gram:submit", site=self.site.name):
                    if (injector is not None
                            and injector.down(self.site.name)):
                        self.refusals += 1
                        raise SubmissionRefused(
                            f"{self.site.name}: gatekeeper unreachable "
                            f"(site outage)")
                    handshake = GsiAcceptor.handshake_bytes(chain)
                    self._account(handshake + self.SUBMIT_OVERHEAD_BYTES
                                  + len(rsl_text) + 512)
                    yield client.send(
                        self.host,
                        handshake + self.SUBMIT_OVERHEAD_BYTES + len(rsl_text),
                        label="gram-submit")
                    try:
                        gsi = self.site.acceptor.accept(chain, self.sim.now)
                        description = parse_rsl(rsl_text)
                        if (injector is not None and
                                injector.fire("gram.refuse", self.site.name)):
                            raise SubmissionRefused(
                                f"{self.site.name}: gatekeeper refused the "
                                f"submission (transient LRM rejection)")
                    except Exception as exc:
                        self.refusals += 1
                        self._bus.emit("gram.refused", layer="grid",
                                       request_id=rid, site=self.site.name,
                                       reason=type(exc).__name__)
                        yield self.host.send(client, 512, label="gram-refused")
                        raise
                    yield self.host.compute(self.REQUEST_CPU, tag="gram")
                    job = self.site.create_job(description, owner=gsi.subject)
                    if (injector is not None and
                            injector.fire("gram.lost_job", self.site.name)):
                        # The classic lost job: the gatekeeper hands out a
                        # perfectly good handle, but the LRM never hears of
                        # it — later polls find nothing (JobNotFound).  A
                        # notify-capable job manager *knows* it lost track
                        # and surfaces that as an error callback, so push
                        # subscribers fail over as fast as they complete.
                        self.site.drop_job(job.job_id)
                        if self.notify_capable:
                            self._push_state(job.job_id, "lost",
                                             terminal=True, error=True)
                        self.submissions += 1
                        yield self.host.send(client, 512,
                                             label="gram-handle")
                        return job.job_id
                    done = self.site.run_job(job)
                    self._completions[job.job_id] = done
                    if self.notify_capable:
                        if not job.is_terminal:
                            # Same frame as the submission's state change.
                            self._push_state(job.job_id, job.state.value,
                                             terminal=False)
                        done.add_callback(
                            lambda ev, jid=job.job_id: self._push_state(
                                jid, ev._value.state.value, terminal=True)
                            if ev._ok else None)
                    self.submissions += 1
                    self._bus.emit("gram.submit", layer="grid",
                                   request_id=rid, site=self.site.name,
                                   job_id=job.job_id)
                    yield self.host.send(client, 512, label="gram-handle")
            finally:
                self._inflight.adjust(-1)
            return job.job_id

        return self.sim.process(op(), name="gram-submit")

    def status(self, client: Host, job_id: str,
               ctx: Optional[RequestContext] = None) -> Process:
        """Query a job's state; value is the :class:`JobState`."""

        def op() -> Generator[Event, None, JobState]:
            injector = get_injector(self.sim)
            with span(ctx, "gram:status", site=self.site.name, job=job_id):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                self._account(self.POLL_BYTES + 256)
                yield client.send(self.host, self.POLL_BYTES,
                                  label="gram-status")
                yield self.host.compute(0.005, tag="gram")
                job = self.site.get_job(job_id)
                yield self.host.send(client, 256, label="gram-status-rsp")
            return job.state

        return self.sim.process(op(), name=f"gram-status:{job_id}")

    def cancel(self, client: Host, job_id: str,
               ctx: Optional[RequestContext] = None) -> Process:
        """Cancel a queued/running job; value is True."""

        def op() -> Generator[Event, None, bool]:
            injector = get_injector(self.sim)
            with span(ctx, "gram:cancel", site=self.site.name, job=job_id):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                self._account(self.POLL_BYTES + 256)
                yield client.send(self.host, self.POLL_BYTES,
                                  label="gram-cancel")
                yield self.host.compute(0.01, tag="gram")
                self.site.cancel_job(job_id)
                yield self.host.send(client, 256, label="gram-cancel-rsp")
            return True

        return self.sim.process(op(), name=f"gram-cancel:{job_id}")

    def status_many(self, client: Host, job_ids: Sequence[str],
                    ctx: Optional[RequestContext] = None) -> Process:
        """Query k jobs in one exchange; value maps id -> state.

        The request pays one envelope (:attr:`POLL_BYTES`) plus
        :attr:`BATCH_ITEM_BYTES` per extra job; a job the gatekeeper has
        no record of maps to ``None`` instead of failing the batch.
        """
        ids = list(job_ids)

        def op() -> Generator[Event, None, Dict[str, Optional[JobState]]]:
            if not ids:
                return {}
            injector = get_injector(self.sim)
            k = len(ids)
            with span(ctx, "gram:status-many", site=self.site.name, jobs=k):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                request = self.POLL_BYTES + self.BATCH_ITEM_BYTES * (k - 1)
                response = 256 + 16 * (k - 1)
                self._account(request + response, jobs=k)
                yield client.send(self.host, request,
                                  label="gram-status-many")
                yield self.host.compute(
                    0.005 + self.BATCH_ITEM_CPU * (k - 1), tag="gram")
                states: Dict[str, Optional[JobState]] = {}
                for job_id in ids:
                    try:
                        states[job_id] = self.site.get_job(job_id).state
                    except JobNotFound:
                        states[job_id] = None
                yield self.host.send(client, response,
                                     label="gram-status-many-rsp")
            self._bus.emit("gram.status_many", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, jobs=k)
            return states

        return self.sim.process(op(), name=f"gram-status-many:{len(ids)}")

    def fetch_output_many(self, client: Host, job_ids: Sequence[str],
                          ctx: Optional[RequestContext] = None) -> Process:
        """Tentative-poll k jobs in one exchange; value maps id -> bytes.

        One request envelope, one amortized site disk read covering all
        jobs' partial output, one response.  A lost job (the gatekeeper
        has no record) maps to ``None`` — the caller decides whether
        that is fatal, exactly as a raised :class:`JobNotFound` would be
        on the per-job path.
        """
        ids = list(job_ids)

        def op() -> Generator[Event, None, Dict[str, Optional[bytes]]]:
            if not ids:
                return {}
            injector = get_injector(self.sim)
            k = len(ids)
            with span(ctx, "gram:fetch-output-many", site=self.site.name,
                      jobs=k):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                request = self.POLL_BYTES + self.BATCH_ITEM_BYTES * (k - 1)
                yield client.send(self.host, request,
                                  label="gram-output-many")
                yield self.host.compute(
                    0.005 + self.BATCH_ITEM_CPU * (k - 1), tag="gram")
                outputs: Dict[str, Optional[bytes]] = {}
                total = 0
                for job_id in ids:
                    try:
                        data = self.site.partial_output(job_id)
                    except JobNotFound:
                        outputs[job_id] = None
                        continue
                    outputs[job_id] = data
                    total += len(data)
                if total:
                    # One seek/read pass over the spool covers the batch.
                    yield self.host.disk_read(total)
                response = max(total, 128) + 16 * (k - 1)
                self._account(request + 128 + 16 * (k - 1), jobs=k)
                yield self.host.send(client, response,
                                     label="gram-output-many-rsp")
            self._bus.emit("gram.fetch_output_many", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, jobs=k, nbytes=total)
            return outputs

        return self.sim.process(op(), name=f"gram-output-many:{len(ids)}")

    def fetch_output(self, client: Host, job_id: str,
                     ctx: Optional[RequestContext] = None) -> Process:
        """Fetch whatever output exists *now* (the tentative poll).

        For a running job this transfers the partial placeholder bytes;
        for a DONE job, the real output.  The value is the bytes read.
        This is the operation the watchdog repeats on a fixed interval
        because job status "can't be retrieved" through the agent
        (§VIII.B) — each call costs a disk read at the site and a
        transfer back, producing the periodic write peaks in Figs 6-7.
        """

        def op() -> Generator[Event, None, bytes]:
            injector = get_injector(self.sim)
            with span(ctx, "gram:fetch-output", job=job_id):
                if injector is not None and injector.down(self.site.name):
                    raise SubmissionRefused(
                        f"{self.site.name}: gatekeeper unreachable "
                        f"(site outage)")
                self._account(self.POLL_BYTES + 128)
                yield client.send(self.host, self.POLL_BYTES,
                                  label="gram-output")
                data = self.site.partial_output(job_id)
                if data:
                    yield self.host.disk_read(len(data))
                yield self.host.send(client, max(len(data), 128),
                                     label="gram-output-rsp")
            self._bus.emit("gram.fetch_output", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, job_id=job_id,
                           nbytes=len(data))
            return data

        return self.sim.process(op(), name=f"gram-output:{job_id}")

    def completion_event(self, job_id: str) -> Event:
        """The event that fires when *job_id* reaches a terminal state."""
        try:
            return self._completions[job_id]
        except KeyError:
            raise SubmissionRefused(
                f"gatekeeper has no record of job {job_id!r}") from None
