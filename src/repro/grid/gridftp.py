"""GridFTP: authenticated, bandwidth-limited file transfer to a site.

Every operation is a simulation process: the GSI handshake bytes and the
file bytes travel over the (typically slow WAN) path to the site's head
node, then land on its disk.  The ~60-second, 80-90 KB/s upload plateau
in Figure 7 is exactly a ``put`` through a thin uplink.

Two control-path modes exist:

* **Per-operation** (:meth:`GridFtpServer.put` / :meth:`~GridFtpServer.get`)
  — every transfer pays a fresh GSI handshake plus control bytes, the
  faithful pay-per-operation cost the goldens pin down.
* **Session-oriented** (:class:`GridFtpSession`, pooled by
  :class:`GridFtpSessionPool`) — one handshake + control channel per
  ``(client, site, credential)``, reused across pipelined operations;
  later operations pay only :attr:`GridFtpSession.SESSION_OP_BYTES` of
  control traffic.  Sessions close lazily on idle timeout (checked at
  the next use — an idle session schedules *no* simulation events, so a
  constructed-but-unused pool cannot perturb a run).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence, Tuple

from repro.core.context import RequestContext, span
from repro.errors import TransferError
from repro.faults.injector import get_injector
from repro.grid.site import GridSite
from repro.hardware.host import Host
from repro.security.gsi import GsiAcceptor
from repro.security.x509 import Certificate
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["GridFtpServer", "GridFtpSession", "GridFtpSessionPool"]


class GridFtpServer:
    """The file-transfer endpoint of one grid site."""

    #: Control-channel bytes per operation (commands + replies).
    CONTROL_BYTES = 2048
    #: CPU seconds per MB for checksumming/marshalling on the head node.
    CPU_PER_MB = 0.02

    def __init__(self, site: GridSite):
        self.site = site
        self.sim = site.sim
        self.host = site.head
        self.transfers_in = 0
        self.transfers_out = 0
        #: Control-channel bytes this endpoint has exchanged (handshakes
        #: + command traffic; data payloads excluded).  Pure bookkeeping
        #: — the data-path ablation reads it, the timeline never does.
        self.control_bytes = 0
        #: Observability plane: concurrent data connections become a
        #: gauge, completed transfers become events.
        self._bus = bus(self.sim)
        self._streams = gauges(self.sim).gauge(
            f"gridftp.{site.name}.streams", unit="conns")

    def _authenticate(self, chain: Sequence[Certificate]) -> None:
        # GSI mutual auth against the site's acceptor; raises on failure.
        self.site.acceptor.accept(chain, self.sim.now)

    @staticmethod
    def effective_streams(streams: int, nbytes: int) -> int:
        """Clamp *streams* to the payload: a stream that would carry
        zero bytes is never opened (tiny files on many streams used to
        schedule empty parallel sends)."""
        return max(1, min(streams, nbytes))

    # -- shared halves (control already done by the caller) ------------------

    def _ingest(self, client: Host, path: str, data: bytes, streams: int,
                injector) -> Generator[Event, None, int]:
        """Data-channel half of an upload: faults, parallel sends,
        head-node checksumming, disk, storage-area bookkeeping."""
        if injector is not None:
            # A degraded link stalls the data channel before any
            # byte moves; an abort dies mid-transfer, after half
            # the payload already crossed the wire.
            stall = injector.fire("gridftp.degrade", self.site.name)
            if stall is not None and stall.duration > 0:
                yield self.sim.timeout(stall.duration,
                                       name="fault:gridftp-degrade")
            if injector.fire("gridftp.abort", self.site.name):
                yield client.send(self.host, len(data) // 2,
                                  label=f"gridftp-put:{path}#aborted")
                raise TransferError(
                    f"{self.site.name}: data channel aborted "
                    f"mid-transfer ({path!r})")
        self._streams.adjust(+streams)
        try:
            if streams == 1:
                yield client.send(self.host, len(data),
                                  label=f"gridftp-put:{path}")
            else:
                chunk = len(data) // streams
                sizes = [chunk] * (streams - 1)
                sizes.append(len(data) - chunk * (streams - 1))
                yield self.sim.all_of([
                    client.send(self.host, size,
                                label=f"gridftp-put:{path}#{i}")
                    for i, size in enumerate(sizes)])
        finally:
            self._streams.adjust(-streams)
        yield self.host.compute(
            self.CPU_PER_MB * len(data) / (1024 * 1024),
            tag="gridftp")
        yield self.host.disk_write(len(data))
        self.site.store_file(path, data)
        self.transfers_in += 1
        return len(data)

    def _egress(self, client: Host, path: str
                ) -> Generator[Event, None, bytes]:
        """Data-channel half of a download: disk read + send back."""
        if not self.site.has_file(path):
            raise TransferError(
                f"{self.site.name}: no such file {path!r}")
        data = self.site.read_file(path)
        yield self.host.disk_read(len(data))
        self._streams.adjust(+1)
        try:
            yield self.host.send(client, len(data),
                                 label=f"gridftp-get:{path}")
        finally:
            self._streams.adjust(-1)
        self.transfers_out += 1
        return data

    # -- per-operation mode (fresh handshake every time) ---------------------

    def put(self, client: Host, chain: Sequence[Certificate],
            path: str, data: bytes, streams: int = 1,
            ctx: Optional[RequestContext] = None) -> Process:
        """Upload *data* to *path* in the site storage area.

        *streams* opens that many parallel data connections (GridFTP's
        ``-p``).  Alone on a link it changes nothing; under contention
        each stream claims its own fair share, so a multi-stream
        transfer outruns single-stream competitors — exactly why the
        option exists.  Streams are clamped to the payload size: a
        3-byte file on 8 streams opens 3 connections, not 8.
        """
        if streams < 1:
            raise TransferError("streams must be >= 1")
        streams = self.effective_streams(streams, len(data))

        def op() -> Generator[Event, None, int]:
            started = self.sim.now
            injector = get_injector(self.sim)
            with span(ctx, "gridftp:put", site=self.site.name,
                      bytes=len(data)):
                if injector is not None and injector.down(self.site.name):
                    raise TransferError(
                        f"{self.site.name}: GridFTP unreachable "
                        f"(site outage)")
                handshake = GsiAcceptor.handshake_bytes(chain)
                yield client.send(self.host,
                                  handshake + streams * self.CONTROL_BYTES,
                                  label="gridftp-ctl")
                self._authenticate(chain)
                self.control_bytes += handshake + streams * self.CONTROL_BYTES
                yield from self._ingest(client, path, data, streams, injector)
            self._bus.emit("gridftp.put", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, path=path, nbytes=len(data),
                           streams=streams, seconds=self.sim.now - started)
            return len(data)

        return self.sim.process(op(), name=f"gridftp-put:{path}")

    def get(self, client: Host, chain: Sequence[Certificate],
            path: str, ctx: Optional[RequestContext] = None) -> Process:
        """Download *path* from the site storage area."""
        def op() -> Generator[Event, None, bytes]:
            started = self.sim.now
            injector = get_injector(self.sim)
            with span(ctx, "gridftp:get", site=self.site.name):
                if injector is not None and injector.down(self.site.name):
                    raise TransferError(
                        f"{self.site.name}: GridFTP unreachable "
                        f"(site outage)")
                handshake = GsiAcceptor.handshake_bytes(chain)
                yield client.send(self.host, handshake + self.CONTROL_BYTES,
                                  label="gridftp-ctl")
                self._authenticate(chain)
                self.control_bytes += handshake + self.CONTROL_BYTES
                data = yield from self._egress(client, path)
            self._bus.emit("gridftp.get", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, path=path, nbytes=len(data),
                           streams=1, seconds=self.sim.now - started)
            return data

        return self.sim.process(op(), name=f"gridftp-get:{path}")

    def third_party_transfer(self, client: Host,
                             chain: Sequence[Certificate],
                             src_path: str, dest: "GridFtpServer",
                             dst_path: str,
                             ctx: Optional[RequestContext] = None) -> Process:
        """Site-to-site transfer directed by a third party.

        The client authenticates to both ends over control channels; the
        data moves directly between the site head nodes (never through
        the client) — the classic GridFTP third-party mode that makes
        staging between centres practical over thin client links.

        Fault plane and telemetry parity with :meth:`put`/:meth:`get`:
        an outage at either end refuses the transfer, degrade/abort
        faults hit the head-to-head data channel, both ends' stream
        gauges track the connection, and a ``gridftp.third_party`` event
        records the move.
        """

        def op() -> Generator[Event, None, int]:
            started = self.sim.now
            injector = get_injector(self.sim)
            with span(ctx, "gridftp:3pt", src=self.site.name,
                      dest=dest.site.name):
                if injector is not None:
                    for end in (self, dest):
                        if injector.down(end.site.name):
                            raise TransferError(
                                f"{end.site.name}: GridFTP unreachable "
                                f"(site outage)")
                handshake = GsiAcceptor.handshake_bytes(chain)
                # Control channels to both ends.
                yield client.send(self.host, handshake + self.CONTROL_BYTES,
                                  label="gridftp-3pt-src")
                self._authenticate(chain)
                self.control_bytes += handshake + self.CONTROL_BYTES
                yield client.send(dest.host, handshake + dest.CONTROL_BYTES,
                                  label="gridftp-3pt-dst")
                dest._authenticate(chain)
                dest.control_bytes += handshake + dest.CONTROL_BYTES
                if not self.site.has_file(src_path):
                    raise TransferError(
                        f"{self.site.name}: no such file {src_path!r}")
                data = self.site.read_file(src_path)
                yield self.host.disk_read(len(data))
                if injector is not None:
                    stall = injector.fire("gridftp.degrade", self.site.name)
                    if stall is not None and stall.duration > 0:
                        yield self.sim.timeout(stall.duration,
                                               name="fault:gridftp-degrade")
                    if injector.fire("gridftp.abort", self.site.name):
                        yield self.host.send(
                            dest.host, len(data) // 2,
                            label=f"gridftp-3pt:{src_path}#aborted")
                        raise TransferError(
                            f"{self.site.name}: data channel aborted "
                            f"mid-transfer ({src_path!r})")
                # Data channel: head node to head node.
                self._streams.adjust(+1)
                dest._streams.adjust(+1)
                try:
                    yield self.host.send(dest.host, len(data),
                                         label=f"gridftp-3pt:{src_path}")
                finally:
                    self._streams.adjust(-1)
                    dest._streams.adjust(-1)
                yield dest.host.disk_write(len(data))
                dest.site.store_file(dst_path, data)
                self.transfers_out += 1
                dest.transfers_in += 1
            self._bus.emit("gridftp.third_party", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           src=self.site.name, dest=dest.site.name,
                           path=dst_path, nbytes=len(data),
                           seconds=self.sim.now - started)
            return len(data)

        return self.sim.process(op(), name=f"gridftp-3pt:{src_path}")

    def exists(self, path: str) -> bool:
        """Control-channel existence check (no data transfer modelled)."""
        return self.site.has_file(path)


class GridFtpSession:
    """One reusable control channel between a client and a site.

    The first operation (and the first after an idle timeout, a fault,
    or a credential change) pays the full GSI handshake; every pipelined
    operation after that pays only :attr:`SESSION_OP_BYTES` of command
    traffic.  Establishment is single-flighted: concurrent first
    operations share one handshake instead of racing several.
    """

    #: Command/reply bytes per pipelined operation on an open channel.
    SESSION_OP_BYTES = 256

    def __init__(self, server: GridFtpServer, client: Host,
                 chain: Sequence[Certificate], idle_timeout: float = 600.0):
        if idle_timeout <= 0:
            raise TransferError("session idle timeout must be positive")
        self.server = server
        self.sim = server.sim
        self.client = client
        self.chain = chain
        self.idle_timeout = idle_timeout
        #: Experiment counters: handshakes paid vs operations carried.
        self.handshakes = 0
        self.ops = 0
        self._open = False
        self._last_used = 0.0
        self._establishing: Optional[Event] = None
        self._bus = bus(self.sim)
        self._sessions_gauge = gauges(self.sim).gauge(
            f"gridftp.{server.site.name}.sessions", unit="sessions")

    @property
    def open(self) -> bool:
        """True while the control channel is usable *right now* (lazy
        idle-close: an expired channel reads as closed)."""
        return (self._open
                and self.sim.now - self._last_used <= self.idle_timeout)

    def invalidate(self) -> None:
        """Drop the control channel (failure or credential change)."""
        if self._open:
            self._open = False
            self._sessions_gauge.adjust(-1)

    def _ensure_control(self) -> Generator[Event, None, None]:
        """Handshake if needed, else pay the pipelined-op bytes."""
        server = self.server
        while True:
            if self.open:
                yield self.client.send(server.host, self.SESSION_OP_BYTES,
                                       label="gridftp-sess-op")
                server.control_bytes += self.SESSION_OP_BYTES
                return
            if self._establishing is not None:
                # Another operation is mid-handshake: piggyback on it.
                yield self._establishing
                continue
            if self._open:
                # Stale (idle-expired) channel: close before reopening.
                self.invalidate()
            self._establishing = self.sim.event("gridftp-sess-establish")
            try:
                handshake = GsiAcceptor.handshake_bytes(self.chain)
                yield self.client.send(
                    server.host, handshake + server.CONTROL_BYTES,
                    label="gridftp-ctl")
                server._authenticate(self.chain)
                server.control_bytes += handshake + server.CONTROL_BYTES
                self.handshakes += 1
                self._open = True
                self._last_used = self.sim.now
                self._sessions_gauge.adjust(+1)
                self._bus.emit("gridftp.session_open", layer="grid",
                               site=server.site.name,
                               client=self.client.name)
            finally:
                pending, self._establishing = self._establishing, None
                pending.succeed()
            return

    def put(self, path: str, data: bytes, streams: int = 1,
            ctx: Optional[RequestContext] = None) -> Process:
        """Pipelined upload over the session's control channel."""
        if streams < 1:
            raise TransferError("streams must be >= 1")
        streams = GridFtpServer.effective_streams(streams, len(data))
        server = self.server

        def op() -> Generator[Event, None, int]:
            started = self.sim.now
            injector = get_injector(self.sim)
            try:
                with span(ctx, "gridftp:put", site=server.site.name,
                          bytes=len(data), session=True):
                    if (injector is not None
                            and injector.down(server.site.name)):
                        raise TransferError(
                            f"{server.site.name}: GridFTP unreachable "
                            f"(site outage)")
                    yield from self._ensure_control()
                    yield from server._ingest(self.client, path, data,
                                              streams, injector)
            except BaseException:
                self.invalidate()
                raise
            self.ops += 1
            self._last_used = self.sim.now
            server._bus.emit("gridftp.put", layer="grid",
                             request_id=ctx.request_id if ctx else None,
                             site=server.site.name, path=path,
                             nbytes=len(data), streams=streams,
                             seconds=self.sim.now - started, session=True)
            return len(data)

        return self.sim.process(op(), name=f"gridftp-put:{path}")

    def get(self, path: str,
            ctx: Optional[RequestContext] = None) -> Process:
        """Pipelined download over the session's control channel."""
        server = self.server

        def op() -> Generator[Event, None, bytes]:
            started = self.sim.now
            injector = get_injector(self.sim)
            try:
                with span(ctx, "gridftp:get", site=server.site.name,
                          session=True):
                    if (injector is not None
                            and injector.down(server.site.name)):
                        raise TransferError(
                            f"{server.site.name}: GridFTP unreachable "
                            f"(site outage)")
                    yield from self._ensure_control()
                    data = yield from server._egress(self.client, path)
            except BaseException:
                self.invalidate()
                raise
            self.ops += 1
            self._last_used = self.sim.now
            server._bus.emit("gridftp.get", layer="grid",
                             request_id=ctx.request_id if ctx else None,
                             site=server.site.name, path=path,
                             nbytes=len(data), streams=1,
                             seconds=self.sim.now - started, session=True)
            return data

        return self.sim.process(op(), name=f"gridftp-get:{path}")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "open" if self.open else "closed"
        return (f"<GridFtpSession {self.client.name}->"
                f"{self.server.site.name} {state} ops={self.ops}>")


class GridFtpSessionPool:
    """Sessions keyed by ``(site, client, credential subject)``.

    Disabled (the default), :meth:`put`/:meth:`get` delegate straight to
    the per-operation server methods — no session objects are created,
    no state is kept, and the timeline is byte-identical to a build
    without this class.  Enabled, each distinct endpoint/credential pair
    gets one reusable :class:`GridFtpSession`; presenting a *different*
    credential chain for the same endpoint replaces the session (the old
    control channel cannot authenticate the new delegation).
    """

    def __init__(self, sim, enabled: bool = False,
                 idle_timeout: float = 600.0):
        self.sim = sim
        self.enabled = enabled
        self.idle_timeout = idle_timeout
        self._sessions: Dict[Tuple[str, str, str], GridFtpSession] = {}

    def session(self, server: GridFtpServer, client: Host,
                chain: Sequence[Certificate]) -> GridFtpSession:
        """The (created-on-first-use) session for this endpoint pair."""
        key = (server.site.name, client.name, chain[0].subject)
        session = self._sessions.get(key)
        if session is not None and session.chain is not chain:
            # Fresh delegation (e.g. re-logon after expiry): the old
            # control channel dies with its credential.
            session.invalidate()
            session = None
        if session is None:
            session = GridFtpSession(server, client, chain,
                                     idle_timeout=self.idle_timeout)
            self._sessions[key] = session
        return session

    def put(self, server: GridFtpServer, client: Host,
            chain: Sequence[Certificate], path: str, data: bytes,
            streams: int = 1,
            ctx: Optional[RequestContext] = None) -> Process:
        if not self.enabled:
            return server.put(client, chain, path, data, streams=streams,
                              ctx=ctx)
        return self.session(server, client, chain).put(
            path, data, streams=streams, ctx=ctx)

    def get(self, server: GridFtpServer, client: Host,
            chain: Sequence[Certificate], path: str,
            ctx: Optional[RequestContext] = None) -> Process:
        if not self.enabled:
            return server.get(client, chain, path, ctx=ctx)
        return self.session(server, client, chain).get(path, ctx=ctx)

    @property
    def open_sessions(self) -> int:
        return sum(1 for s in self._sessions.values() if s.open)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "on" if self.enabled else "off"
        return (f"<GridFtpSessionPool {state} "
                f"sessions={len(self._sessions)}>")
