"""GridFTP: authenticated, bandwidth-limited file transfer to a site.

Every operation is a simulation process: the GSI handshake bytes and the
file bytes travel over the (typically slow WAN) path to the site's head
node, then land on its disk.  The ~60-second, 80-90 KB/s upload plateau
in Figure 7 is exactly a ``put`` through a thin uplink.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.core.context import RequestContext, span
from repro.errors import TransferError
from repro.faults.injector import get_injector
from repro.grid.site import GridSite
from repro.hardware.host import Host
from repro.security.gsi import GsiAcceptor
from repro.security.x509 import Certificate
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["GridFtpServer"]


class GridFtpServer:
    """The file-transfer endpoint of one grid site."""

    #: Control-channel bytes per operation (commands + replies).
    CONTROL_BYTES = 2048
    #: CPU seconds per MB for checksumming/marshalling on the head node.
    CPU_PER_MB = 0.02

    def __init__(self, site: GridSite):
        self.site = site
        self.sim = site.sim
        self.host = site.head
        self.transfers_in = 0
        self.transfers_out = 0
        #: Observability plane: concurrent data connections become a
        #: gauge, completed transfers become events.
        self._bus = bus(self.sim)
        self._streams = gauges(self.sim).gauge(
            f"gridftp.{site.name}.streams", unit="conns")

    def _authenticate(self, chain: Sequence[Certificate]) -> None:
        # GSI mutual auth against the site's acceptor; raises on failure.
        self.site.acceptor.accept(chain, self.sim.now)

    def put(self, client: Host, chain: Sequence[Certificate],
            path: str, data: bytes, streams: int = 1,
            ctx: Optional[RequestContext] = None) -> Process:
        """Upload *data* to *path* in the site storage area.

        *streams* opens that many parallel data connections (GridFTP's
        ``-p``).  Alone on a link it changes nothing; under contention
        each stream claims its own fair share, so a multi-stream
        transfer outruns single-stream competitors — exactly why the
        option exists.
        """
        if streams < 1:
            raise TransferError("streams must be >= 1")

        def op() -> Generator[Event, None, int]:
            started = self.sim.now
            injector = get_injector(self.sim)
            with span(ctx, "gridftp:put", site=self.site.name,
                      bytes=len(data)):
                if injector is not None and injector.down(self.site.name):
                    raise TransferError(
                        f"{self.site.name}: GridFTP unreachable "
                        f"(site outage)")
                handshake = GsiAcceptor.handshake_bytes(chain)
                yield client.send(self.host,
                                  handshake + streams * self.CONTROL_BYTES,
                                  label="gridftp-ctl")
                self._authenticate(chain)
                if injector is not None:
                    # A degraded link stalls the data channel before any
                    # byte moves; an abort dies mid-transfer, after half
                    # the payload already crossed the wire.
                    stall = injector.fire("gridftp.degrade", self.site.name)
                    if stall is not None and stall.duration > 0:
                        yield self.sim.timeout(stall.duration,
                                               name="fault:gridftp-degrade")
                    if injector.fire("gridftp.abort", self.site.name):
                        yield client.send(self.host, len(data) // 2,
                                          label=f"gridftp-put:{path}#aborted")
                        raise TransferError(
                            f"{self.site.name}: data channel aborted "
                            f"mid-transfer ({path!r})")
                self._streams.adjust(+streams)
                try:
                    if streams == 1:
                        yield client.send(self.host, len(data),
                                          label=f"gridftp-put:{path}")
                    else:
                        chunk = len(data) // streams
                        sizes = [chunk] * (streams - 1)
                        sizes.append(len(data) - chunk * (streams - 1))
                        yield self.sim.all_of([
                            client.send(self.host, size,
                                        label=f"gridftp-put:{path}#{i}")
                            for i, size in enumerate(sizes)])
                finally:
                    self._streams.adjust(-streams)
                yield self.host.compute(
                    self.CPU_PER_MB * len(data) / (1024 * 1024),
                    tag="gridftp")
                yield self.host.disk_write(len(data))
                self.site.store_file(path, data)
                self.transfers_in += 1
            self._bus.emit("gridftp.put", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, path=path, nbytes=len(data),
                           streams=streams, seconds=self.sim.now - started)
            return len(data)

        return self.sim.process(op(), name=f"gridftp-put:{path}")

    def get(self, client: Host, chain: Sequence[Certificate],
            path: str, ctx: Optional[RequestContext] = None) -> Process:
        """Download *path* from the site storage area."""
        def op() -> Generator[Event, None, bytes]:
            started = self.sim.now
            injector = get_injector(self.sim)
            with span(ctx, "gridftp:get", site=self.site.name):
                if injector is not None and injector.down(self.site.name):
                    raise TransferError(
                        f"{self.site.name}: GridFTP unreachable "
                        f"(site outage)")
                handshake = GsiAcceptor.handshake_bytes(chain)
                yield client.send(self.host, handshake + self.CONTROL_BYTES,
                                  label="gridftp-ctl")
                self._authenticate(chain)
                if not self.site.has_file(path):
                    raise TransferError(
                        f"{self.site.name}: no such file {path!r}")
                data = self.site.read_file(path)
                yield self.host.disk_read(len(data))
                self._streams.adjust(+1)
                try:
                    yield self.host.send(client, len(data),
                                         label=f"gridftp-get:{path}")
                finally:
                    self._streams.adjust(-1)
                self.transfers_out += 1
            self._bus.emit("gridftp.get", layer="grid",
                           request_id=ctx.request_id if ctx else None,
                           site=self.site.name, path=path, nbytes=len(data),
                           streams=1, seconds=self.sim.now - started)
            return data

        return self.sim.process(op(), name=f"gridftp-get:{path}")

    def third_party_transfer(self, client: Host,
                             chain: Sequence[Certificate],
                             src_path: str, dest: "GridFtpServer",
                             dst_path: str) -> Process:
        """Site-to-site transfer directed by a third party.

        The client authenticates to both ends over control channels; the
        data moves directly between the site head nodes (never through
        the client) — the classic GridFTP third-party mode that makes
        staging between centres practical over thin client links.
        """

        def op() -> Generator[Event, None, int]:
            handshake = GsiAcceptor.handshake_bytes(chain)
            # Control channels to both ends.
            yield client.send(self.host, handshake + self.CONTROL_BYTES,
                              label="gridftp-3pt-src")
            self._authenticate(chain)
            yield client.send(dest.host, handshake + dest.CONTROL_BYTES,
                              label="gridftp-3pt-dst")
            dest._authenticate(chain)
            if not self.site.has_file(src_path):
                raise TransferError(
                    f"{self.site.name}: no such file {src_path!r}")
            data = self.site.read_file(src_path)
            yield self.host.disk_read(len(data))
            # Data channel: head node to head node.
            yield self.host.send(dest.host, len(data),
                                 label=f"gridftp-3pt:{src_path}")
            yield dest.host.disk_write(len(data))
            dest.site.store_file(dst_path, data)
            self.transfers_out += 1
            dest.transfers_in += 1
            return len(data)

        return self.sim.process(op(), name=f"gridftp-3pt:{src_path}")

    def exists(self, path: str) -> bool:
        """Control-channel existence check (no data transfer modelled)."""
        return self.site.has_file(path)
