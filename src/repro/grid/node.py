"""Compute nodes: core bookkeeping for the batch scheduler."""

from __future__ import annotations

from typing import List

from repro.errors import GridError

__all__ = ["ComputeNode", "NodePool"]


class ComputeNode:
    """One machine in a site's compute partition."""

    __slots__ = ("name", "cores", "free_cores", "speed_factor")

    def __init__(self, name: str, cores: int, speed_factor: float = 1.0):
        if cores < 1:
            raise GridError(f"node {name!r}: cores must be >= 1")
        if speed_factor <= 0:
            raise GridError(f"node {name!r}: speed_factor must be positive")
        self.name = name
        self.cores = cores
        self.free_cores = cores
        self.speed_factor = speed_factor

    def allocate(self, n: int) -> None:
        if n > self.free_cores:
            raise GridError(f"node {self.name!r}: cannot allocate {n} cores "
                            f"({self.free_cores} free)")
        self.free_cores -= n

    def release(self, n: int) -> None:
        if self.free_cores + n > self.cores:
            raise GridError(f"node {self.name!r}: releasing {n} cores "
                            f"would exceed capacity")
        self.free_cores += n

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<ComputeNode {self.name} {self.free_cores}/{self.cores} free>"


class NodePool:
    """A set of nodes with greedy cross-node allocation.

    Jobs may span nodes (``count`` is a total core count), matching how
    MPI jobs are placed on clusters.
    """

    def __init__(self, nodes: List[ComputeNode]):
        if not nodes:
            raise GridError("a node pool needs at least one node")
        self.nodes = list(nodes)

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes)

    def allocate(self, cores: int) -> List[tuple]:
        """Greedily allocate *cores* across nodes.

        Returns the placement as ``[(node, cores_taken), ...]``; raises
        :class:`GridError` (leaving nothing allocated) if the pool cannot
        satisfy the request.
        """
        if cores < 1:
            raise GridError(f"cannot allocate {cores} cores")
        if cores > self.free_cores:
            raise GridError(
                f"pool has {self.free_cores} free cores, need {cores}")
        placement = []
        remaining = cores
        for node in self.nodes:
            if remaining == 0:
                break
            take = min(node.free_cores, remaining)
            if take > 0:
                node.allocate(take)
                placement.append((node, take))
                remaining -= take
        return placement

    def release(self, placement: List[tuple]) -> None:
        for node, taken in placement:
            node.release(taken)

    def remove_node(self, node: ComputeNode) -> None:
        """Take a node out of the pool (hardware failure/maintenance).

        The node must be idle — the scheduler drains it first.
        """
        if node not in self.nodes:
            raise GridError(f"node {node.name!r} is not in this pool")
        if node.free_cores != node.cores:
            raise GridError(f"node {node.name!r} still has allocations")
        if len(self.nodes) == 1:
            raise GridError("cannot remove the last node of a pool")
        self.nodes.remove(node)

    def find_node(self, name: str) -> ComputeNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GridError(f"no node named {name!r}")
