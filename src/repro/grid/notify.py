"""NotifyQueue: the durable job-state event pipeline (push path).

ROADMAP item 1 — kill the poll loop.  The faithful §VIII.B story is
that job status "can't be retrieved" through the agent, so completion
detection is tentative polling.  This module models the fix the
modern stacks apply (cloudify-manager's amqp-postgres pipeline,
diracx-tasks): the gatekeeper *pushes* job-state-change events onto a
durable in-sim message queue, and a ``job_states`` table in the DB
tier becomes the source of truth for where every job is in its
lifecycle.

Durability discipline (PR 8's dedup rule): the ``job_states`` row and
the ``notify_queue`` row are written **in the same frame** as the state
change itself — a crash between "the job finished" and "the row says
so" cannot exist, so replaying a subscriber against the table after a
crash observes exactly what the live delivery would have shown.
Delivery then takes one propagation delay of simulated time (the
event's trip from the gatekeeper to the appliance), which is the whole
detection lag of the push path.

Capability is **per site** and heterogeneous: only gatekeepers
explicitly attached as capable publish here (TeraGrid realism — not
every site's GRAM deployment supports callbacks).  The runtime falls
back down the ladder notify → PollMux → ``poll_until`` per site.

Determinism contract (the golden guard proves it): a constructed queue
with *no* capable site never publishes, never schedules, and leaves
both tables empty — attaching it to a faithful run is byte-invisible.
Row writes are pure bookkeeping (no simulated cost; the same rule
``ServiceStateStore`` follows), so recording an intermediate state
from a telemetry-bus observer frame is legal; only ``publish`` — which
schedules the delivery timeout — needs a real process frame.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.db.engine import Database
from repro.db.table import Column
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["NotifyQueue", "JOB_STATES_TABLE", "NOTIFY_QUEUE_TABLE"]

JOB_STATES_TABLE = "job_states"
NOTIFY_QUEUE_TABLE = "notify_queue"

_JOB_STATES_SCHEMA = [
    Column("job_id", "TEXT", primary_key=True),
    Column("site", "TEXT", nullable=False),
    Column("state", "TEXT", nullable=False),
    Column("updated_at", "REAL", nullable=False),
    Column("terminal", "INT", nullable=False),
]

_QUEUE_SCHEMA = [
    Column("seq", "INT", primary_key=True),
    Column("site", "TEXT", nullable=False),
    Column("job_id", "TEXT", nullable=False),
    Column("state", "TEXT", nullable=False),
    Column("terminal", "INT", nullable=False),
    Column("error", "INT", nullable=False),
    Column("published_at", "REAL", nullable=False),
    Column("delivered_at", "REAL"),
]


class NotifyQueue:
    """Durable job-state-change queue between GRAM and the appliance.

    ``publish`` appends a message (and upserts the job's ``job_states``
    row) in the caller's frame, then delivers it one *propagation*
    delay later; a terminal delivery fires every subscribed waiter with
    the message payload.  ``subscribe`` consults the table first: a
    subscriber arriving after the terminal row exists (crash replay,
    slow middleware) completes immediately from durable state instead
    of waiting for a delivery that already happened.
    """

    def __init__(self, sim: Simulator, db: Database,
                 propagation: float = 0.5, read_router: Optional[Any] = None):
        if propagation <= 0:
            raise ValueError("notify propagation delay must be positive")
        self.sim = sim
        self.db = db
        #: Optional :class:`~repro.db.replica.ReadRouter`: replay reads
        #: (``job_state``) may be served by a caught-up replica; all
        #: durable writes stay on the primary.
        self.read_router = read_router
        self.propagation = propagation
        #: Sites whose gatekeeper publishes here (capability registry).
        self._capable: set = set()
        #: job_id -> waiter events parked until the terminal delivery.
        self._waiters: Dict[str, List[Event]] = {}
        self._seq = 0
        self.published = 0
        self.delivered = 0
        #: Subscriptions satisfied straight from the durable table.
        self.replayed = 0
        self._bus = bus(sim)
        self._depth_gauge = gauges(sim).gauge("notify.queue.depth",
                                              unit="msgs")
        if JOB_STATES_TABLE not in db.tables:
            db.create_table(JOB_STATES_TABLE, _JOB_STATES_SCHEMA)
        if NOTIFY_QUEUE_TABLE not in db.tables:
            db.create_table(NOTIFY_QUEUE_TABLE, _QUEUE_SCHEMA)
            db.create_index(NOTIFY_QUEUE_TABLE, "job_id", "hash")

    # -- capability registry --------------------------------------------------

    def attach_site(self, site: str) -> None:
        """Mark *site*'s gatekeeper as notification-capable."""
        self._capable.add(site)

    def site_capable(self, site: str) -> bool:
        return site in self._capable

    @property
    def capable_sites(self) -> List[str]:
        return sorted(self._capable)

    # -- durable state --------------------------------------------------------

    def record_state(self, site: str, job_id: str, state: str,
                     terminal: bool = False) -> None:
        """Upsert the ``job_states`` row (same frame, pure bookkeeping).

        Safe from any frame — including telemetry-bus observer
        callbacks — because it creates no simulation events.
        """
        with self.db.transaction():
            self.db.delete_where(JOB_STATES_TABLE,
                                 lambda r: r["job_id"] == job_id)
            self.db.insert(JOB_STATES_TABLE, [
                job_id, site, state, self.sim.now, 1 if terminal else 0])

    def job_state(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The durable ``job_states`` row for *job_id* (or ``None``)."""
        db = self.db
        if self.read_router is not None:
            db = self.read_router.reader(JOB_STATES_TABLE)
        rows = db.select(JOB_STATES_TABLE,
                         lambda r: r["job_id"] == job_id)
        return rows[0] if rows else None

    @property
    def depth(self) -> int:
        """Messages published but not yet delivered."""
        return self.published - self.delivered

    # -- publish / deliver ----------------------------------------------------

    def publish(self, site: str, job_id: str, state: str,
                terminal: bool = False, error: bool = False) -> int:
        """Append one state-change message; returns its sequence number.

        The durable rows (state table + queue) are written in the
        calling frame; delivery to subscribers happens one propagation
        delay later.  Must run from a frame that may create simulation
        events (it schedules the delivery timeout).
        """
        self.record_state(site, job_id, state, terminal)
        self._seq += 1
        seq = self._seq
        self.db.insert(NOTIFY_QUEUE_TABLE, [
            seq, site, job_id, state, 1 if terminal else 0,
            1 if error else 0, self.sim.now, None])
        self.published += 1
        self._depth_gauge.adjust(+1)
        self._bus.emit("notify.publish", layer="grid", site=site,
                       job_id=job_id, state=state, seq=seq,
                       terminal=terminal)
        message = {"seq": seq, "site": site, "job_id": job_id,
                   "state": state, "terminal": terminal, "error": error,
                   "published_at": self.sim.now}
        trip = self.sim.timeout(self.propagation,
                                name=f"notify-deliver:{seq}")
        trip.add_callback(lambda ev: self._deliver(message))
        return seq

    def _deliver(self, message: Dict[str, Any]) -> None:
        seq = message["seq"]
        self.db.update_where(NOTIFY_QUEUE_TABLE,
                             {"delivered_at": self.sim.now},
                             lambda r: r["seq"] == seq)
        self.delivered += 1
        self._depth_gauge.adjust(-1)
        self._bus.emit("notify.deliver", layer="grid",
                       site=message["site"], job_id=message["job_id"],
                       state=message["state"], seq=seq,
                       lag=self.sim.now - message["published_at"])
        if not message["terminal"]:
            return
        payload = {"state": message["state"], "error": message["error"],
                   "published_at": message["published_at"],
                   "delivered_at": self.sim.now}
        for waiter in self._waiters.pop(message["job_id"], []):
            waiter.succeed(payload)

    # -- subscribe ------------------------------------------------------------

    def subscribe(self, site: str, job_id: str) -> Event:
        """An event that fires with the terminal payload for *job_id*.

        If the durable table already holds a terminal row — the
        subscriber arrived after the fact (crash replay) — the event
        completes immediately from that row; otherwise it parks until
        the terminal delivery.
        """
        waiter = self.sim.event(f"notify:{job_id}")
        row = self.job_state(job_id)
        if row is not None and row["terminal"]:
            self.replayed += 1
            self._bus.emit("notify.replay", layer="grid", site=site,
                           job_id=job_id, state=row["state"])
            waiter.succeed({"state": row["state"],
                            "error": row["state"] == "lost",
                            "published_at": row["updated_at"],
                            "delivered_at": self.sim.now})
            return waiter
        self._waiters.setdefault(job_id, []).append(waiter)
        self._bus.emit("notify.subscribe", layer="grid", site=site,
                       job_id=job_id)
        return waiter

    def unsubscribe(self, job_id: str, waiter: Event) -> None:
        """Detach an abandoned waiter (idempotent)."""
        waiters = self._waiters.get(job_id)
        if waiters is None:
            return
        try:
            waiters.remove(waiter)
        except ValueError:
            return
        if not waiters:
            del self._waiters[job_id]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<NotifyQueue capable={self.capable_sites} "
                f"depth={self.depth} published={self.published}>")
