"""PollMux: one adaptive batch-polling loop per site.

The faithful §VIII.B workaround runs one fixed-interval ``poll_until``
loop *per in-flight job* — N jobs on a site means N independent
gatekeeper exchanges per interval, each paying the full control
envelope.  The multiplexer replaces them with a single loop per site
that polls every registered job in one batch exchange (the
``status_many`` / ``fetch_output_many`` APIs, or anything else the
``batch_poll`` callable wraps) on an *adaptive* interval: it starts
fast, backs off exponentially while nothing changes, and snaps back to
the floor the moment a job completes — bursts of completions are
detected quickly, long quiet stretches cost few exchanges.

Determinism contract: the loop is driven purely by simulation time (no
wall clock, no randomness), only exists while at least one job is
registered, and schedules *nothing* when idle — a constructed-but-empty
PollMux leaves the timeline byte-identical to a build without one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["PollMux"]


class _Entry:
    """One registered job: its waiter event and per-job poll count."""

    __slots__ = ("token", "event", "polls")

    def __init__(self, token: Any, event: Event):
        self.token = token
        self.event = event
        self.polls = 0


class PollMux:
    """Per-site multiplexer over a batch poll operation.

    *batch_poll* takes a list of ``(key, token)`` pairs and returns a
    simulation :class:`Process` whose value maps each key to a result;
    *accept* decides per result whether the job is finished with
    polling.  :meth:`register` returns an event that fires with
    ``(result, polls)`` — the same value shape as
    :func:`~repro.core.watchdog.poll_until` — once *accept* likes that
    key's result.
    """

    def __init__(self, sim: Simulator, name: str,
                 batch_poll: Callable[[List[Tuple[Any, Any]]], Process],
                 accept: Callable[[Any], bool],
                 min_interval: float = 2.0,
                 max_interval: float = 30.0,
                 backoff: float = 2.0):
        if min_interval <= 0:
            raise ValueError("poll min_interval must be positive")
        if max_interval < min_interval:
            raise ValueError("poll max_interval must be >= min_interval")
        if backoff < 1.0:
            raise ValueError("poll backoff must be >= 1.0")
        self.sim = sim
        self.name = name
        self.batch_poll = batch_poll
        self.accept = accept
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.backoff = backoff
        self.rounds = 0
        self._interval = min_interval
        self._pending: Dict[Any, _Entry] = {}
        self._running = False
        self._in_batch = False
        #: A key registered while a batch was in flight: its snap-to-
        #: floor must survive that round's quiet-batch backoff.
        self._fresh_mid_batch = False
        self._wake: Optional[Event] = None
        self._bus = bus(sim)
        g = gauges(sim)
        self._pending_gauge = g.gauge(f"poller.{name}.pending", unit="jobs")
        self._interval_gauge = g.gauge(f"poller.{name}.interval", unit="s")
        self._batch_gauge = g.gauge(f"poller.{name}.batch", unit="jobs")

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def interval(self) -> float:
        """The interval the *next* quiet round will sleep."""
        return self._interval

    def register(self, key: Any, token: Any = None) -> Event:
        """Start multiplexed polling for *key*; returns the waiter event.

        A new registration resets the interval to the floor (a fresh job
        deserves a fast first look) and wakes the loop if it is mid-sleep.
        """
        if key in self._pending:
            raise ValueError(f"{self.name}: {key!r} already registered")
        entry = _Entry(token, self.sim.event(f"pollmux:{self.name}:{key}"))
        self._pending[key] = entry
        self._pending_gauge.adjust(+1)
        self._set_interval(self.min_interval)
        if self._in_batch:
            # The in-flight batch never polled this key; a quiet round
            # must not back the fresh job's floor off (the "fast first
            # look" contract).
            self._fresh_mid_batch = True
        if not self._running:
            self._running = True
            self.sim.process(self._run(), name=f"pollmux:{self.name}")
        elif self._wake is not None:
            wake, self._wake = self._wake, None
            wake.succeed()
        return entry.event

    def unregister(self, key: Any) -> None:
        """Stop polling *key* (e.g. its waiter timed out); idempotent."""
        if self._pending.pop(key, None) is not None:
            self._pending_gauge.adjust(-1)

    def _set_interval(self, value: float) -> None:
        self._interval = value
        self._interval_gauge.set(value)

    def _fail_batch(self, snapshot, exc: BaseException) -> None:
        """A failed batch fails the waiters *it actually covered*.

        Keys registered after the batch left (and re-registrations of a
        key that timed out meanwhile — a different entry object under
        the same key) were never polled by the failing exchange, so
        they stay pending; the loop restarts for them.  Failed waiters
        are defused: each one's own error handling decides what
        happens, not the kernel.
        """
        for key, entry in snapshot:
            if self._pending.get(key) is not entry:
                continue  # unregistered, or replaced by a fresh waiter
            del self._pending[key]
            self._pending_gauge.adjust(-1)
            entry.event.fail(exc)
            entry.event.defused()

    def _run(self):
        try:
            while self._pending:
                snapshot = list(self._pending.items())
                self._batch_gauge.set(len(snapshot))
                self._in_batch = True
                self._fresh_mid_batch = False
                try:
                    results = yield self.batch_poll(
                        [(key, entry.token) for key, entry in snapshot])
                except Exception as exc:
                    self._fail_batch(snapshot, exc)
                    if not self._pending:
                        return
                    # Mid-batch registrants survive the failure: poll
                    # them promptly on a fresh round from the floor.
                    self._set_interval(self.min_interval)
                    continue
                finally:
                    self._in_batch = False
                self.rounds += 1
                self._bus.emit("poller.batch", layer="grid", name=self.name,
                               jobs=len(snapshot), interval=self._interval)
                detected = 0
                for key, entry in snapshot:
                    if self._pending.get(key) is not entry:
                        # Unregistered while the batch ran — or timed
                        # out and re-registered: the fresh waiter was
                        # not in this batch and must not receive its
                        # result.
                        continue
                    entry.polls += 1
                    result = results.get(key) if results else None
                    if self.accept(result):
                        del self._pending[key]
                        self._pending_gauge.adjust(-1)
                        detected += 1
                        self._bus.emit("poller.detect", layer="grid",
                                       name=self.name, key=str(key),
                                       polls=entry.polls)
                        entry.event.succeed((result, entry.polls))
                if detected or self._fresh_mid_batch:
                    # Completions cluster — and a job registered while
                    # the batch was out still deserves its fast first
                    # look: hold the floor either way.
                    self._set_interval(self.min_interval)
                else:
                    self._set_interval(min(self._interval * self.backoff,
                                           self.max_interval))
                if not self._pending:
                    return
                self._wake = self.sim.event(f"pollmux:{self.name}:wake")
                yield self.sim.any_of([
                    self.sim.timeout(self._interval), self._wake])
                self._wake = None
        finally:
            self._running = False
            self._in_batch = False
            self._batch_gauge.set(0)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<PollMux {self.name} pending={len(self._pending)} "
                f"interval={self._interval:.1f}s>")
