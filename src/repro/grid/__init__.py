"""The simulated production grid (TeraGrid stand-in).

Production grids "employ a Job-Submission-Execution (JSE) model" behind
"rigid access interfaces" (paper §I, §II.B).  This package reproduces
that world:

* :mod:`repro.grid.rsl` — the job description language users must write,
* :mod:`repro.grid.job` — job records and their state machine,
* :mod:`repro.grid.scheduler` — a FIFO + conservative-backfill batch
  scheduler with walltime enforcement,
* :mod:`repro.grid.node` / :mod:`repro.grid.site` — compute nodes and
  sites (head node, storage area, local resource manager),
* :mod:`repro.grid.gram` — the K-GRAM gatekeeper (submit/poll/cancel,
  GSI-authenticated),
* :mod:`repro.grid.gridftp` — bandwidth-limited file transfer,
* :mod:`repro.grid.mds` — the information/discovery service,
* :mod:`repro.grid.testbed` — a TeraGrid-like multi-site testbed factory.

The interfaces are deliberately *rigid*: the only way in is a job
description through the gatekeeper, exactly the constraint onServe's
SaaS-to-JSE translation exists to bridge.
"""

from repro.grid.gram import GramGatekeeper
from repro.grid.gridftp import GridFtpServer
from repro.grid.job import GridJob, JobState
from repro.grid.mds import InformationService
from repro.grid.rsl import JobDescription, generate_rsl, parse_rsl
from repro.grid.scheduler import BatchScheduler
from repro.grid.site import GridSite
from repro.grid.testbed import Testbed, build_testbed

__all__ = [
    "JobDescription",
    "parse_rsl",
    "generate_rsl",
    "GridJob",
    "JobState",
    "BatchScheduler",
    "GridSite",
    "GramGatekeeper",
    "GridFtpServer",
    "InformationService",
    "Testbed",
    "build_testbed",
]
