"""A grid site: head node, storage area, compute partition, LRM.

The head node is a full simulated :class:`~repro.hardware.host.Host`
(transfers land on its NIC and disk); the compute partition is a
:class:`~repro.grid.node.NodePool` driven by the
:class:`~repro.grid.scheduler.BatchScheduler`.  The storage area is a
real ``path -> bytes`` store: staged executables are actual payloads,
and job outputs are actual profile-computed bytes.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.errors import GridError, JobError, JobNotFound
from repro.grid.job import GridJob, JobState
from repro.grid.node import ComputeNode, NodePool
from repro.grid.rsl import JobDescription
from repro.grid.scheduler import BatchScheduler
from repro.hardware.host import Host, HostSpec
from repro.hardware.network import Network
from repro.security.gsi import GsiAcceptor
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.workloads.executables import get_profile, parse_payload

__all__ = ["GridSite", "QueuePolicy"]


class QueuePolicy:
    """Submission rules of one batch queue.

    Lower *priority* is served earlier — debug queues jump the line but
    cap walltime hard, exactly like production LRM configurations.
    """

    __slots__ = ("name", "max_walltime", "priority")

    DEFAULTS = {
        "debug": (1800, 0),        # 30 min cap, served first
        "normal": (24 * 3600, 10),
        "long": (7 * 24 * 3600, 20),
    }

    def __init__(self, name: str, max_walltime: int, priority: int):
        self.name = name
        self.max_walltime = max_walltime
        self.priority = priority

    @classmethod
    def default(cls, name: str) -> "QueuePolicy":
        max_walltime, priority = cls.DEFAULTS.get(name, (24 * 3600, 10))
        return cls(name, max_walltime, priority)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<QueuePolicy {self.name} wall<={self.max_walltime} "
                f"prio={self.priority}>")


class GridSite:
    """One supercomputing centre in the testbed."""

    def __init__(self, sim: Simulator, name: str, network: Network,
                 nodes: int = 16, cores_per_node: int = 8,
                 head_spec: Optional[HostSpec] = None,
                 queues: tuple = ("normal", "debug"),
                 node_speed: float = 1.0):
        self.sim = sim
        self.name = name
        self.head = Host(sim, f"{name}-head", network, head_spec or HostSpec(
            cores=8))
        self.pool = NodePool([
            ComputeNode(f"{name}-n{i:03d}", cores_per_node,
                        speed_factor=node_speed)
            for i in range(nodes)
        ])
        self.scheduler = BatchScheduler(sim, self.pool, name=f"{name}-lrm")
        #: queue name -> policy; plain names get the standard defaults.
        self.queues: Dict[str, QueuePolicy] = {
            q.name if isinstance(q, QueuePolicy) else q:
                q if isinstance(q, QueuePolicy) else QueuePolicy.default(q)
            for q in queues
        }
        #: The site's GSI endpoint; testbed wiring adds trusted CAs.
        self.acceptor = GsiAcceptor(f"{name}-gk")
        #: Storage area: absolute path -> bytes (real payloads/outputs).
        self.storage: Dict[str, bytes] = {}
        self._jobs: Dict[str, GridJob] = {}
        self._job_counter = itertools.count(1)

    # -- storage -----------------------------------------------------------

    def store_file(self, path: str, data: bytes) -> None:
        self.storage[path] = data

    def read_file(self, path: str) -> bytes:
        try:
            return self.storage[path]
        except KeyError:
            raise GridError(f"{self.name}: no file {path!r}") from None

    def has_file(self, path: str) -> bool:
        return path in self.storage

    def delete_file(self, path: str) -> None:
        self.storage.pop(path, None)

    # -- jobs --------------------------------------------------------------------

    def create_job(self, description: JobDescription, owner: str) -> GridJob:
        """Register a new job record (UNSUBMITTED).

        Enforces queue policy: the job's walltime request must fit the
        queue's cap.
        """
        policy = self.queues.get(description.queue)
        if policy is None:
            raise GridError(
                f"{self.name}: no queue {description.queue!r} "
                f"(have {sorted(self.queues)})")
        if description.max_wall_time > policy.max_walltime:
            raise GridError(
                f"{self.name}: queue {policy.name!r} caps walltime at "
                f"{policy.max_walltime}s (asked {description.max_wall_time}s)")
        job_id = f"{self.name}-job-{next(self._job_counter):05d}"
        job = GridJob(job_id, description, owner, self.sim.now)
        self._jobs[job_id] = job
        return job

    def get_job(self, job_id: str) -> GridJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(f"{self.name}: unknown job {job_id!r}") from None

    def run_job(self, job: GridJob) -> Event:
        """Stage-in, queue and eventually execute *job*.

        Returns an event that fires with the job once terminal.  The
        executable must already be in the site storage area (GridFTP put
        happens before submission — the JSE contract).
        """
        path = job.description.executable
        job.transition(JobState.STAGE_IN, self.sim.now)
        if not self.has_file(path):
            job.transition(JobState.FAILED, self.sim.now,
                           reason=f"executable {path!r} not staged")
            ev = self.sim.event(f"job-failed:{job.job_id}")
            ev.succeed(job)
            return ev
        try:
            profile_name, options = parse_payload(self.read_file(path))
            profile = get_profile(profile_name)
            rng = self.sim.rng.stream(f"job:{job.job_id}")
            runtime = profile.runtime(job.description.arguments,
                                      job.description.count, options, rng)
            job.output_size = profile.output_size(
                job.description.arguments, job.description.count, options)
        except JobError as exc:
            job.transition(JobState.FAILED, self.sim.now, reason=str(exc))
            ev = self.sim.event(f"job-failed:{job.job_id}")
            ev.succeed(job)
            return ev

        job.transition(JobState.PENDING, self.sim.now)
        policy = self.queues[job.description.queue]
        done = self.scheduler.submit(job, runtime, priority=policy.priority)
        finished = self.sim.event(f"job-final:{job.job_id}")

        def _on_done(event: Event) -> None:
            finished_job: GridJob = event.value
            if finished_job.state is JobState.DONE:
                output = profile.compute_output(
                    finished_job.description.arguments,
                    finished_job.description.count, options)
                finished_job.output = output
                self.store_file(finished_job.description.stdout, output)
            finished.succeed(finished_job)

        done.add_callback(_on_done)
        return finished

    def drop_job(self, job_id: str) -> None:
        """Forget a job record entirely (the lost-job fault).

        The handle stays with the caller, but every later lookup raises
        :class:`~repro.errors.JobNotFound` — modelling an LRM that
        accepted a submission and then lost it.
        """
        self._jobs.pop(job_id, None)

    def cancel_job(self, job_id: str) -> None:
        job = self.get_job(job_id)
        if job.is_terminal:
            raise JobError(f"job {job_id} already {job.state.value}")
        if job.state in (JobState.PENDING, JobState.ACTIVE):
            self.scheduler.cancel(job_id)
        else:
            job.transition(JobState.CANCELED, self.sim.now)

    def partial_output(self, job_id: str) -> bytes:
        """The output bytes written so far (placeholder until DONE).

        This is what the tentative output polling of §VIII.B reads: for a
        running job it returns a prefix-sized placeholder; once DONE it
        returns the real output.
        """
        job = self.get_job(job_id)
        if job.state is JobState.DONE:
            return job.output
        available = job.output_available(self.sim.now)
        return b"\x00" * available

    def fail_node(self, node_name: str) -> List[str]:
        """Kill a compute node; returns the job ids the failure took out."""
        return self.scheduler.fail_node(node_name)

    # -- capacity info (for MDS) --------------------------------------------------

    def info(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total_cores": self.pool.total_cores,
            "free_cores": self.pool.free_cores,
            "queued_jobs": self.scheduler.queued_jobs,
            "running_jobs": self.scheduler.running_jobs,
            "queues": sorted(self.queues),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<GridSite {self.name!r} cores={self.pool.total_cores}>"
