"""Testbed factory: a TeraGrid-like multi-site production grid.

The paper evaluated on the TeraGrid, "a production Grid infrastructure
which contains 11 supercomputing centers across U.S." (§VIII.A).
:func:`build_testbed` assembles the simulated equivalent:

* N grid sites (head host + nodes + scheduler + GRAM + GridFTP), each
  hung off a fast WAN core,
* one grid CA trusted by every site, and a MyProxy server on an
  infrastructure host,
* an *appliance host* (where the Cyberaide onServe virtual appliance
  will be deployed) whose WAN uplink is deliberately thin — the paper
  measured 80-90 KB/s to the grid (Figure 7),
* a *user host* on a fast LAN with the appliance (Figure 8's 1 Gbit/s
  upload path),
* an MDS information service knowing every site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

from repro.grid.gram import GramGatekeeper
from repro.grid.gridftp import GridFtpServer
from repro.grid.mds import InformationService
from repro.grid.site import GridSite
from repro.hardware.host import Host, HostSpec
from repro.hardware.network import Network
from repro.security.keys import KeyPair
from repro.security.myproxy import MyProxyServer
from repro.security.x509 import Certificate, CertificateAuthority
from repro.simkernel.kernel import Simulator
from repro.units import GB, Gbps, KBps, MB, MBps

__all__ = ["Testbed", "build_testbed"]

#: The 11 TeraGrid resource-provider names circa 2010.
TERAGRID_SITES = (
    "ncsa", "sdsc", "anl", "psc", "tacc", "indiana",
    "purdue", "ornl", "ncar", "lsu", "nics",
)


class Testbed:
    """Handles to everything :func:`build_testbed` creates."""

    def __init__(self, sim: Simulator, network: Network,
                 sites: List[GridSite],
                 gatekeepers: Dict[str, GramGatekeeper],
                 ftp_servers: Dict[str, GridFtpServer],
                 mds: InformationService,
                 ca: CertificateAuthority,
                 myproxy: MyProxyServer,
                 appliance_host: Host,
                 user_hosts: List[Host]):
        self.sim = sim
        self.network = network
        self.sites = sites
        self.gatekeepers = gatekeepers
        self.ftp_servers = ftp_servers
        self.mds = mds
        self.ca = ca
        self.myproxy = myproxy
        self.appliance_host = appliance_host
        self.user_hosts = user_hosts

    def site(self, name: str) -> GridSite:
        return self.mds.get_site(name)

    def gram(self, site_name: str) -> GramGatekeeper:
        return self.gatekeepers[site_name]

    def ftp(self, site_name: str) -> GridFtpServer:
        return self.ftp_servers[site_name]

    def install_faults(self, specs) -> "FaultInjector":
        """Configure and arm fault injection for this testbed's run.

        Convenience over the fault plane: attaches the simulator's
        injector, adds *specs* (an iterable of
        :class:`~repro.faults.spec.FaultSpec`), and installs scheduled
        faults (node crashes) as timers.  Returns the injector.
        """
        from repro.faults.injector import fault_plane
        return fault_plane(self.sim).configure(specs).install(self)

    def new_grid_identity(self, username: str, passphrase: str,
                          lifetime: float = 30 * 24 * 3600.0,
                          authorize_everywhere: bool = True
                          ) -> Tuple[KeyPair, Certificate]:
        """Issue a grid identity, deposit it in MyProxy, authorize it.

        This is the out-of-band enrolment a real user does once: get a
        certificate from the CA, load it into MyProxy, get added to each
        site's gridmap.
        """
        rng = self.sim.rng.stream(f"identity:{username}")
        subject = f"/O=ReproGrid/CN={username}"
        keypair, cert = self.ca.issue_identity(subject, self.sim.now,
                                               lifetime, rng)
        self.myproxy.store(username, passphrase, keypair, cert)
        if authorize_everywhere:
            for site in self.sites:
                site.acceptor.authorize(subject)
        return keypair, cert


def build_testbed(sim: Optional[Simulator] = None,
                  n_sites: int = 11,
                  nodes_per_site: int = 16,
                  cores_per_node: int = 8,
                  appliance_uplink: float = KBps(85),
                  lan_bandwidth: float = Gbps(1),
                  wan_bandwidth: float = Gbps(10),
                  site_link_bandwidth: float = Gbps(1),
                  wan_latency: float = 0.02,
                  n_users: int = 1,
                  appliance_spec: Optional[HostSpec] = None) -> Testbed:
    """Build the standard evaluation testbed.

    The default ``appliance_uplink`` of 85 KB/s matches the transfer
    plateau the paper measured ("about 80 to 90 KB/s", §VIII.B);
    scenarios override it to study faster networks (§VIII.D).
    """
    sim = sim or Simulator()
    if not 1 <= n_sites <= len(TERAGRID_SITES):
        raise ValueError(f"n_sites must be in [1, {len(TERAGRID_SITES)}]")
    network = Network(sim, name="teragrid")
    network.add_host("wan-core")

    ca = CertificateAuthority("ReproGridCA",
                              sim.rng.stream("testbed:ca"))

    # Grid sites.
    sites: List[GridSite] = []
    gatekeepers: Dict[str, GramGatekeeper] = {}
    ftp_servers: Dict[str, GridFtpServer] = {}
    mds = InformationService(sim=sim)
    for name in TERAGRID_SITES[:n_sites]:
        site = GridSite(sim, name, network, nodes=nodes_per_site,
                        cores_per_node=cores_per_node,
                        head_spec=HostSpec(cores=8, disk_bandwidth=MBps(200),
                                           disk_capacity=GB(10_000)))
        site.acceptor.trust(ca)
        network.connect(site.head.name, "wan-core",
                        bandwidth=site_link_bandwidth, latency=wan_latency)
        sites.append(site)
        gatekeepers[name] = GramGatekeeper(site)
        ftp_servers[name] = GridFtpServer(site)
        mds.register(site)

    # Security infrastructure host (MyProxy).
    infra = Host(sim, "grid-infra", network, HostSpec(cores=4))
    network.connect("grid-infra", "wan-core", bandwidth=wan_bandwidth,
                    latency=wan_latency)
    myproxy = MyProxyServer(infra)

    # The appliance host and its thin uplink.
    # Virtual-appliance disk I/O is slow (virtualized block devices of
    # the era sustained ~25 MB/s) — this is what makes disk the upload
    # bottleneck the paper's §VIII.D.3 describes.
    appliance_host = Host(
        sim, "appliance", network,
        appliance_spec or HostSpec(cores=2, disk_bandwidth=MBps(25),
                                   disk_capacity=GB(200)))
    network.connect("appliance", "wan-core", bandwidth=appliance_uplink,
                    latency=wan_latency)

    # User machines on the appliance's fast LAN.
    user_hosts = []
    for i in range(n_users):
        user = Host(sim, f"user{i:02d}" if n_users > 1 else "user",
                    network, HostSpec(cores=4))
        network.connect(user.name, "appliance", bandwidth=lan_bandwidth,
                        latency=0.0005)
        user_hosts.append(user)

    return Testbed(sim, network, sites, gatekeepers, ftp_servers, mds, ca,
                   myproxy, appliance_host, user_hosts)
