"""RSL: the Globus-style Resource Specification Language.

The paper's invocation workflow generates "a job description ... by using
the specified parameters and the name of the executable" (§VII.B).  This
module is that language: a faithful small subset of Globus RSL::

    &(executable="/scratch/hello.sh")
     (arguments="alice" "3")
     (count=2)
     (maxWallTime=3600)
     (queue="normal")
     (stdout="hello.out")

:func:`generate_rsl` and :func:`parse_rsl` are exact inverses (verified
by property tests); :class:`JobDescription` validates field semantics.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import RslError

__all__ = ["JobDescription", "generate_rsl", "parse_rsl"]

#: Attributes with integer values.
_INT_ATTRS = {"count", "maxWallTime", "maxMemory"}
#: Attributes with a single string value.
_STR_ATTRS = {"executable", "stdout", "stderr", "queue", "directory",
              "jobType", "project"}
#: Attributes with a list of string values.
_LIST_ATTRS = {"arguments", "environment"}

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")


class JobDescription:
    """A validated job description (the parsed form of an RSL string)."""

    def __init__(self, executable: str,
                 arguments: Sequence[str] = (),
                 count: int = 1,
                 max_wall_time: int = 3600,
                 queue: str = "normal",
                 stdout: str = "",
                 stderr: str = "",
                 directory: str = "",
                 job_type: str = "single",
                 project: str = "",
                 environment: Sequence[str] = (),
                 max_memory: int = 0):
        if not executable:
            raise RslError("executable must not be empty")
        if count < 1:
            raise RslError(f"count must be >= 1, got {count}")
        if max_wall_time < 1:
            raise RslError(f"maxWallTime must be >= 1, got {max_wall_time}")
        if max_memory < 0:
            raise RslError(f"maxMemory must be >= 0, got {max_memory}")
        for arg in arguments:
            if not isinstance(arg, str):
                raise RslError(f"arguments must be strings, got {arg!r}")
        self.executable = executable
        self.arguments = list(arguments)
        self.count = count
        self.max_wall_time = max_wall_time
        self.queue = queue
        self.stdout = stdout or f"{_basename(executable)}.out"
        self.stderr = stderr
        self.directory = directory
        self.job_type = job_type
        self.project = project
        self.environment = list(environment)
        self.max_memory = max_memory

    def to_rsl(self) -> str:
        return generate_rsl(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobDescription):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<JobDescription {self.executable!r} count={self.count} "
                f"wall={self.max_wall_time}>")


def _basename(path: str) -> str:
    return path.rsplit("/", 1)[-1] or "job"


def _quote(value: str) -> str:
    if '"' in value:
        raise RslError(f"RSL strings cannot contain double quotes: {value!r}")
    return f'"{value}"'


def generate_rsl(desc: JobDescription) -> str:
    """Render *desc* as RSL text."""
    clauses: List[str] = [f"(executable={_quote(desc.executable)})"]
    if desc.arguments:
        args = " ".join(_quote(a) for a in desc.arguments)
        clauses.append(f"(arguments={args})")
    clauses.append(f"(count={desc.count})")
    clauses.append(f"(maxWallTime={desc.max_wall_time})")
    clauses.append(f"(queue={_quote(desc.queue)})")
    clauses.append(f"(stdout={_quote(desc.stdout)})")
    if desc.stderr:
        clauses.append(f"(stderr={_quote(desc.stderr)})")
    if desc.directory:
        clauses.append(f"(directory={_quote(desc.directory)})")
    clauses.append(f"(jobType={_quote(desc.job_type)})")
    if desc.project:
        clauses.append(f"(project={_quote(desc.project)})")
    if desc.environment:
        env = " ".join(_quote(e) for e in desc.environment)
        clauses.append(f"(environment={env})")
    if desc.max_memory:
        clauses.append(f"(maxMemory={desc.max_memory})")
    return "&" + "".join(clauses)


def parse_rsl(text: str) -> JobDescription:
    """Parse RSL text into a :class:`JobDescription`."""
    text = text.strip()
    if not text.startswith("&"):
        raise RslError("RSL must start with '&'")
    pos = 1
    attrs: Dict[str, Any] = {}
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch != "(":
            raise RslError(f"expected '(' at offset {pos}, got {ch!r}")
        pos += 1
        m = _NAME_RE.match(text, pos)
        if m is None:
            raise RslError(f"expected attribute name at offset {pos}")
        name = m.group()
        pos = m.end()
        # Skip whitespace around '='.
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text) or text[pos] != "=":
            raise RslError(f"expected '=' after {name!r} at offset {pos}")
        pos += 1
        values, pos = _parse_values(text, pos)
        if pos >= len(text) or text[pos] != ")":
            raise RslError(f"unterminated clause for {name!r}")
        pos += 1
        if name in attrs:
            raise RslError(f"duplicate attribute {name!r}")
        attrs[name] = values

    return _attrs_to_description(attrs)


def _parse_values(text: str, pos: int) -> Tuple[List[str], int]:
    """Parse one or more quoted strings / bare tokens, ending at ')'."""
    values: List[str] = []
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text) or text[pos] == ")":
            break
        if text[pos] == '"':
            end = text.find('"', pos + 1)
            if end == -1:
                raise RslError(f"unterminated string at offset {pos}")
            values.append(text[pos + 1:end])
            pos = end + 1
        else:
            m = re.match(r"[^\s)]+", text[pos:])
            values.append(m.group())
            pos += m.end()
    if not values:
        raise RslError(f"empty value list at offset {pos}")
    return values, pos


def _attrs_to_description(attrs: Dict[str, List[str]]) -> JobDescription:
    known = _INT_ATTRS | _STR_ATTRS | _LIST_ATTRS
    unknown = set(attrs) - known
    if unknown:
        raise RslError(f"unknown RSL attributes {sorted(unknown)}")
    if "executable" not in attrs:
        raise RslError("RSL is missing the executable attribute")

    def one(name: str, default: str = "") -> str:
        if name not in attrs:
            return default
        vals = attrs[name]
        if len(vals) != 1:
            raise RslError(f"attribute {name!r} takes exactly one value")
        return vals[0]

    def integer(name: str, default: int) -> int:
        raw = one(name, str(default))
        try:
            return int(raw)
        except ValueError:
            raise RslError(f"attribute {name!r} needs an integer, "
                           f"got {raw!r}") from None

    return JobDescription(
        executable=one("executable"),
        arguments=attrs.get("arguments", []),
        count=integer("count", 1),
        max_wall_time=integer("maxWallTime", 3600),
        queue=one("queue", "normal"),
        stdout=one("stdout"),
        stderr=one("stderr"),
        directory=one("directory"),
        job_type=one("jobType", "single"),
        project=one("project"),
        environment=attrs.get("environment", []),
        max_memory=integer("maxMemory", 0),
    )
