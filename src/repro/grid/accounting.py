"""Grid accounting: usage records in the embedded database.

Production grids bill allocations in core-hours; every site reports
terminated jobs to an accounting service (think TeraGrid's AMIE feeds).
This one stores records in the :mod:`repro.db` engine and answers usage
questions with real SQL — including the aggregate queries a resource
provider actually runs.

Wire it up with :meth:`AccountingService.attach`: it hooks the site's
job completion path, so every terminal job lands in the ledger with its
owner, core count and occupancy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.db.engine import Database
from repro.db.sql import execute_sql
from repro.db.table import Column
from repro.errors import GridError
from repro.grid.job import GridJob, JobState
from repro.grid.site import GridSite

__all__ = ["AccountingService"]

_SCHEMA = [
    Column("job_id", "TEXT", primary_key=True),
    Column("site", "TEXT", nullable=False),
    Column("owner", "TEXT", nullable=False),
    Column("queue", "TEXT", nullable=False),
    Column("cores", "INT", nullable=False),
    Column("state", "TEXT", nullable=False),
    Column("submitted_at", "REAL", nullable=False),
    Column("started_at", "REAL"),
    Column("finished_at", "REAL"),
    Column("core_seconds", "REAL", nullable=False),
]


class AccountingService:
    """A usage ledger shared by any number of sites."""

    TABLE = "usage"

    def __init__(self, db: Optional[Database] = None):
        self.db = db if db is not None else Database()
        if self.TABLE not in self.db.tables:
            self.db.create_table(self.TABLE, _SCHEMA)
            self.db.create_index(self.TABLE, "owner", "hash")
            self.db.create_index(self.TABLE, "site", "hash")
        self._attached: set[str] = set()

    # -- wiring ------------------------------------------------------------

    def attach(self, site: GridSite) -> None:
        """Record every job *site* finishes from now on."""
        if site.name in self._attached:
            raise GridError(f"accounting already attached to {site.name!r}")
        self._attached.add(site.name)
        original_run_job = site.run_job

        def run_job_with_accounting(job: GridJob):
            done = original_run_job(job)
            done.add_callback(
                lambda event: self.record(site.name, event.value))
            return done

        site.run_job = run_job_with_accounting  # type: ignore[method-assign]

    # -- recording -----------------------------------------------------------

    def record(self, site_name: str, job: GridJob) -> None:
        """Insert one terminal job into the ledger."""
        if not job.is_terminal:
            raise GridError(f"job {job.job_id} is not terminal")
        occupancy = 0.0
        if job.started_at is not None and job.finished_at is not None:
            occupancy = job.finished_at - job.started_at
        self.db.insert(self.TABLE, [
            job.job_id,
            site_name,
            job.owner,
            job.description.queue,
            job.description.count,
            job.state.value,
            job.history[JobState.UNSUBMITTED],
            job.started_at,
            job.finished_at,
            occupancy * job.description.count,
        ])

    # -- queries (real SQL) -------------------------------------------------------

    def total_jobs(self) -> int:
        rows = execute_sql(self.db, "SELECT COUNT(*) FROM usage")
        return rows[0]["count(*)"]

    def core_seconds_by_owner(self) -> Dict[str, float]:
        rows = execute_sql(
            self.db,
            "SELECT owner, SUM(core_seconds) FROM usage GROUP BY owner")
        return {r["owner"]: r["sum(core_seconds)"] or 0.0 for r in rows}

    def jobs_by_state(self) -> Dict[str, int]:
        rows = execute_sql(
            self.db, "SELECT state, COUNT(*) FROM usage GROUP BY state")
        return {r["state"]: r["count(*)"] for r in rows}

    def site_report(self, site_name: str) -> Dict[str, Any]:
        safe = site_name.replace("'", "''")
        rows = execute_sql(
            self.db,
            f"SELECT COUNT(*), SUM(core_seconds), MAX(cores) FROM usage "
            f"WHERE site = '{safe}'")
        row = rows[0]
        return {
            "site": site_name,
            "jobs": row["count(*)"],
            "core_seconds": row["sum(core_seconds)"] or 0.0,
            "widest_job": row["max(cores)"],
        }

    def records_for(self, owner: str) -> List[Dict[str, Any]]:
        return self.db.find_eq(self.TABLE, "owner", owner)
