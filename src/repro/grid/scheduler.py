"""The local resource manager: FIFO + EASY backfill + walltime kills.

The scheduler is event-driven: a scheduling pass runs whenever a job
arrives or finishes.  The head of the queue starts as soon as enough
cores are free; while it waits, later jobs may *backfill* if they fit in
the spare cores and — per EASY backfilling — would not delay the head's
reservation (computed from the running jobs' declared walltimes, since a
scheduler never knows true runtimes).

Jobs whose true runtime exceeds their declared walltime are killed at
the walltime boundary and finish FAILED — the classic production-grid
behaviour onServe users must live with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import GridError, JobNotFound
from repro.grid.job import GridJob, JobState
from repro.grid.node import NodePool
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.telemetry.events import bus
from repro.telemetry.gauges import gauges

__all__ = ["BatchScheduler"]


class _Entry:
    """Scheduler-private bookkeeping for one job."""

    __slots__ = ("job", "runtime", "done_event", "placement", "kill_at",
                 "timer_generation", "priority", "seq")

    def __init__(self, job: GridJob, runtime: float, done_event: Event,
                 priority: int, seq: int):
        self.job = job
        self.runtime = runtime
        self.done_event = done_event
        self.placement: Optional[List[Tuple]] = None
        self.kill_at: Optional[float] = None
        self.timer_generation = 0
        #: Lower value = served earlier (queue policy); FIFO within ties.
        self.priority = priority
        self.seq = seq


class BatchScheduler:
    """FIFO + EASY-backfill scheduler over a node pool."""

    def __init__(self, sim: Simulator, pool: NodePool, name: str = "lrm",
                 backfill: bool = True):
        self.sim = sim
        self.pool = pool
        self.name = name
        #: EASY backfilling on (production default) or pure FIFO (the
        #: ablation showing what backfill buys).
        self.backfill = backfill
        self._queue: List[_Entry] = []
        self._running: Dict[str, _Entry] = {}
        self._seq = 0
        #: Experiment counters.
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_backfilled = 0
        #: Observability plane: backlog/occupancy gauges + job lifecycle
        #: events (pure recording — cannot perturb scheduling).
        self._bus = bus(sim)
        board = gauges(sim)
        self._queued_gauge = board.gauge(f"sched.{name}.queued", unit="jobs")
        self._running_gauge = board.gauge(f"sched.{name}.running", unit="jobs")
        self._cores_gauge = board.gauge(f"sched.{name}.busy_cores",
                                        unit="cores")

    def _observe(self) -> None:
        self._queued_gauge.set(len(self._queue))
        self._running_gauge.set(len(self._running))
        self._cores_gauge.set(self.pool.total_cores - self.pool.free_cores)

    # -- interface ---------------------------------------------------------------

    def submit(self, job: GridJob, runtime: float, priority: int = 10) -> Event:
        """Queue *job* (whose true runtime is *runtime* seconds).

        Returns an event that fires with the job once it reaches a
        terminal state.  The job must already be PENDING.  Lower
        *priority* values are served first (queue policy: debug queues
        jump ahead of normal), FIFO within a priority level.
        """
        if job.state is not JobState.PENDING:
            raise GridError(f"job {job.job_id} must be PENDING to queue "
                            f"(is {job.state.value})")
        if runtime < 0:
            raise GridError("runtime must be non-negative")
        if job.description.count > self.pool.total_cores:
            raise GridError(
                f"job {job.job_id} wants {job.description.count} cores; "
                f"site only has {self.pool.total_cores}")
        self._seq += 1
        entry = _Entry(job, runtime, self.sim.event(f"job-done:{job.job_id}"),
                       priority=priority, seq=self._seq)
        self._queue.append(entry)
        self._queue.sort(key=lambda e: (e.priority, e.seq))
        self._bus.emit("sched.submit", layer="grid", job_id=job.job_id,
                       scheduler=self.name, cores=job.description.count,
                       priority=priority)
        self._schedule_pass()
        self._observe()
        return entry.done_event

    def fail_node(self, node_name: str) -> List[str]:
        """Simulate a node failure.

        Jobs running (even partly) on the node finish FAILED; the node
        leaves the pool; queued jobs that can no longer ever fit also
        fail.  Returns the ids of the jobs the failure killed.
        """
        node = self.pool.find_node(node_name)
        victims = [entry for entry in list(self._running.values())
                   if entry.placement is not None
                   and any(n is node for n, _ in entry.placement)]
        # Free the victims' cores and take the node out of the pool
        # *before* any completion-triggered schedule pass can place new
        # work on the dying node.
        for entry in victims:
            self.pool.release(entry.placement)
            entry.placement = None
        self.pool.remove_node(node)
        killed = []
        for entry in victims:
            killed.append(entry.job.job_id)
            self._finish(entry, JobState.FAILED,
                         f"compute node {node_name} failed")
        # Queued jobs that now exceed total capacity can never start.
        for entry in [e for e in self._queue
                      if e.job.description.count > self.pool.total_cores]:
            self._queue.remove(entry)
            entry.job.transition(JobState.FAILED, self.sim.now,
                                 reason=f"site capacity lost "
                                        f"({node_name} failed)")
            self.jobs_failed += 1
            killed.append(entry.job.job_id)
            entry.done_event.succeed(entry.job)
        self._schedule_pass()
        self._observe()
        return killed

    def cancel(self, job_id: str) -> None:
        """Cancel a queued or running job."""
        for entry in self._queue:
            if entry.job.job_id == job_id:
                self._queue.remove(entry)
                entry.job.transition(JobState.CANCELED, self.sim.now,
                                     reason="canceled while queued")
                self._bus.emit("sched.finish", layer="grid", job_id=job_id,
                               scheduler=self.name,
                               state=JobState.CANCELED.value, ran=0.0)
                entry.done_event.succeed(entry.job)
                self._observe()
                return
        entry = self._running.get(job_id)
        if entry is not None:
            self._finish(entry, JobState.CANCELED, "canceled while running")
            return
        raise JobNotFound(f"{self.name}: no queued/running job {job_id!r}")

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    @property
    def running_jobs(self) -> int:
        return len(self._running)

    # -- scheduling pass --------------------------------------------------------------

    def _schedule_pass(self) -> None:
        # Start queue-head jobs while they fit (plain FIFO).
        while self._queue and (self._queue[0].job.description.count
                               <= self.pool.free_cores):
            self._start(self._queue.pop(0))
        if not self._queue or not self.backfill:
            return
        # EASY backfill around the blocked head.
        head = self._queue[0]
        shadow_time, extra_cores = self._head_reservation(head)
        free = self.pool.free_cores
        for entry in list(self._queue[1:]):
            cores = entry.job.description.count
            if cores > free:
                continue
            ends_by = self.sim.now + entry.job.description.max_wall_time
            fits_before_shadow = ends_by <= shadow_time
            fits_beside_head = cores <= extra_cores
            if fits_before_shadow or fits_beside_head:
                self._queue.remove(entry)
                self._start(entry)
                self.jobs_backfilled += 1
                free -= cores
                if not fits_before_shadow:
                    extra_cores -= cores

    def _head_reservation(self, head: _Entry) -> Tuple[float, int]:
        """(shadow_time, extra_cores) for the blocked queue head.

        Running jobs are assumed to end at their *walltime* bound (the
        scheduler cannot know true runtimes).  ``shadow_time`` is when
        the head can start; ``extra_cores`` is what remains free at that
        moment beyond the head's need.
        """
        need = head.job.description.count
        free = self.pool.free_cores
        releases = sorted(
            (entry.kill_at if entry.kill_at is not None else
             (entry.job.started_at or self.sim.now)
             + entry.job.description.max_wall_time,
             entry.job.description.count)
            for entry in self._running.values()
        )
        for when, cores in releases:
            free += cores
            if free >= need:
                return when, free - need
        # Unreachable if capacity checks hold, but stay safe.
        return float("inf"), 0

    # -- job lifecycle -----------------------------------------------------------------

    def _start(self, entry: _Entry) -> None:
        job = entry.job
        self._bus.emit("sched.start", layer="grid", job_id=job.job_id,
                       scheduler=self.name,
                       waited=self.sim.now - job.history.get(
                           JobState.PENDING, self.sim.now))
        entry.placement = self.pool.allocate(job.description.count)
        # Heterogeneous hardware: the job advances at the pace of its
        # slowest allocated node (the classic synchronous-MPI model).
        slowest = min(node.speed_factor for node, _ in entry.placement)
        effective_runtime = entry.runtime / slowest
        job.runtime = effective_runtime
        job.transition(JobState.ACTIVE, self.sim.now)
        self._running[job.job_id] = entry
        walltime = float(job.description.max_wall_time)
        will_overrun = effective_runtime > walltime
        delay = walltime if will_overrun else effective_runtime
        entry.kill_at = self.sim.now + walltime
        entry.timer_generation += 1
        generation = entry.timer_generation

        def _fire(_event: Event) -> None:
            if (generation != entry.timer_generation
                    or job.job_id not in self._running):
                return
            if will_overrun:
                self._finish(entry, JobState.FAILED,
                             f"walltime {walltime:.0f}s exceeded")
            else:
                self._finish(entry, JobState.DONE)

        self.sim.timeout(delay, name=f"job-timer:{job.job_id}").add_callback(_fire)

    def _finish(self, entry: _Entry, state: JobState, reason: str = "") -> None:
        job = entry.job
        del self._running[job.job_id]
        if entry.placement is not None:
            self.pool.release(entry.placement)
            entry.placement = None
        entry.timer_generation += 1  # disarm any pending timer
        job.transition(state, self.sim.now, reason=reason)
        if state is JobState.DONE:
            self.jobs_completed += 1
        elif state is JobState.FAILED:
            self.jobs_failed += 1
        self._bus.emit("sched.finish", layer="grid", job_id=job.job_id,
                       scheduler=self.name, state=state.value,
                       ran=self.sim.now - (job.started_at or self.sim.now))
        entry.done_event.succeed(job)
        self._schedule_pass()
        self._observe()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<BatchScheduler {self.name!r} queued={self.queued_jobs} "
                f"running={self.running_jobs}>")
