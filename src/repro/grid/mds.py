"""MDS: the grid information / discovery service.

Sites register themselves; clients query for capacity to pick a
submission target.  The Cyberaide agent uses this for the "resource
selection" the paper's requirements list (§IV: "access Grid
infrastructures on the fly, like security interfaces, resource selection
and provision").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import GridError
from repro.grid.site import GridSite

__all__ = ["InformationService"]


class InformationService:
    """A registry of sites with capacity queries."""

    def __init__(self, name: str = "mds"):
        self.name = name
        self._sites: Dict[str, GridSite] = {}

    def register(self, site: GridSite) -> None:
        if site.name in self._sites:
            raise GridError(f"site {site.name!r} already registered")
        self._sites[site.name] = site

    def deregister(self, site_name: str) -> None:
        if site_name not in self._sites:
            raise GridError(f"site {site_name!r} not registered")
        del self._sites[site_name]

    def sites(self) -> List[GridSite]:
        return [self._sites[name] for name in sorted(self._sites)]

    def get_site(self, name: str) -> GridSite:
        try:
            return self._sites[name]
        except KeyError:
            raise GridError(f"site {name!r} not registered") from None

    def query(self, min_free_cores: int = 0,
              queue: Optional[str] = None) -> List[GridSite]:
        """Sites matching the constraints, best (most free cores) first."""
        hits = []
        for site in self._sites.values():
            if site.pool.free_cores < min_free_cores:
                continue
            if queue is not None and queue not in site.queues:
                continue
            hits.append(site)
        return sorted(hits, key=lambda s: (-s.pool.free_cores, s.name))

    def best_site(self, min_free_cores: int = 1) -> GridSite:
        """The least-loaded matching site (raises if none qualifies)."""
        hits = self.query(min_free_cores=min_free_cores)
        if not hits:
            raise GridError(
                f"no site with {min_free_cores} free cores available")
        return hits[0]

    def snapshot(self) -> List[Dict[str, object]]:
        """Capacity table of all sites (for reports)."""
        return [site.info() for site in self.sites()]
