"""MDS: the grid information / discovery service.

Sites register themselves; clients query for capacity to pick a
submission target.  The Cyberaide agent uses this for the "resource
selection" the paper's requirements list (§IV: "access Grid
infrastructures on the fly, like security interfaces, resource selection
and provision").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import GridError
from repro.grid.site import GridSite

__all__ = ["InformationService"]


class InformationService:
    """A registry of sites with capacity queries.

    When built with a simulator the service keeps a time-stamped
    history of every :meth:`snapshot` and publishes each one on the
    telemetry bus, so capacity evolution over a run can be replayed
    (``history`` / ``history_series``) without re-running the scenario.
    """

    def __init__(self, name: str = "mds", sim=None):
        self.name = name
        self.sim = sim
        self._sites: Dict[str, GridSite] = {}
        #: (sim-time, capacity-table) pairs, one per snapshot() call.
        self.history: List[tuple] = []

    def register(self, site: GridSite) -> None:
        if site.name in self._sites:
            raise GridError(f"site {site.name!r} already registered")
        self._sites[site.name] = site

    def deregister(self, site_name: str) -> None:
        if site_name not in self._sites:
            raise GridError(f"site {site_name!r} not registered")
        del self._sites[site_name]

    def sites(self) -> List[GridSite]:
        return [self._sites[name] for name in sorted(self._sites)]

    def get_site(self, name: str) -> GridSite:
        try:
            return self._sites[name]
        except KeyError:
            raise GridError(f"site {name!r} not registered") from None

    def query(self, min_free_cores: int = 0,
              queue: Optional[str] = None) -> List[GridSite]:
        """Sites matching the constraints, best (most free cores) first."""
        hits = []
        for site in self._sites.values():
            if site.pool.free_cores < min_free_cores:
                continue
            if queue is not None and queue not in site.queues:
                continue
            hits.append(site)
        return sorted(hits, key=lambda s: (-s.pool.free_cores, s.name))

    def best_site(self, min_free_cores: int = 1) -> GridSite:
        """The least-loaded matching site (raises if none qualifies)."""
        hits = self.query(min_free_cores=min_free_cores)
        if not hits:
            raise GridError(
                f"no site with {min_free_cores} free cores available")
        return hits[0]

    def snapshot(self) -> List[Dict[str, object]]:
        """Capacity table of all sites (for reports).

        With a simulator attached, each snapshot is appended to
        :attr:`history` under the current sim-time and announced on the
        telemetry bus (pure bookkeeping — no simulation events).
        """
        table = [site.info() for site in self.sites()]
        if self.sim is not None:
            self.history.append((self.sim.now, table))
            from repro.telemetry.events import bus
            bus(self.sim).emit("mds.snapshot", layer="grid",
                               sites=len(table),
                               free_cores=sum(r.get("free_cores", 0)
                                              for r in table))
        return table

    def history_series(self, site_name: str, field: str = "free_cores"):
        """One site's *field* over time, from the snapshot history.

        Returns a :class:`~repro.telemetry.series.TimeSeries` built from
        the recorded snapshots (empty if the site never appeared).
        """
        from repro.telemetry.series import TimeSeries
        series = TimeSeries(f"mds.{site_name}.{field}")
        for ts, table in self.history:
            for row in table:
                if row.get("name") == site_name and field in row:
                    series.append(ts, float(row[field]))
        return series
