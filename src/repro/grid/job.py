"""Grid job records and their state machine."""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import JobError
from repro.grid.rsl import JobDescription

__all__ = ["JobState", "GridJob"]


class JobState(enum.Enum):
    """Lifecycle of a grid job (GRAM-style)."""

    UNSUBMITTED = "unsubmitted"
    STAGE_IN = "stage_in"
    PENDING = "pending"      # queued at the local resource manager
    ACTIVE = "active"        # running on compute nodes
    STAGE_OUT = "stage_out"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"


#: Legal transitions.  Terminal states have no successors.
_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.UNSUBMITTED: frozenset({JobState.STAGE_IN, JobState.PENDING,
                                     JobState.FAILED, JobState.CANCELED}),
    JobState.STAGE_IN: frozenset({JobState.PENDING, JobState.FAILED,
                                  JobState.CANCELED}),
    JobState.PENDING: frozenset({JobState.ACTIVE, JobState.FAILED,
                                 JobState.CANCELED}),
    JobState.ACTIVE: frozenset({JobState.STAGE_OUT, JobState.DONE,
                                JobState.FAILED, JobState.CANCELED}),
    JobState.STAGE_OUT: frozenset({JobState.DONE, JobState.FAILED,
                                   JobState.CANCELED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELED: frozenset(),
}

TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED,
                             JobState.CANCELED})


class GridJob:
    """One submitted job: description + state + timing + results."""

    def __init__(self, job_id: str, description: JobDescription,
                 owner: str, submitted_at: float):
        self.job_id = job_id
        self.description = description
        self.owner = owner
        self.state = JobState.UNSUBMITTED
        #: Timestamps of every state entry (state -> simulated time).
        self.history: Dict[JobState, float] = {
            JobState.UNSUBMITTED: submitted_at}
        #: Actual runtime, decided when the job starts executing.
        self.runtime: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Final output bytes (available once DONE).
        self.output: bytes = b""
        #: Total size the output will have (known while ACTIVE, for
        #: partial-output polling).
        self.output_size: int = 0
        self.failure_reason: str = ""

    # -- state machine --------------------------------------------------------

    def transition(self, new_state: JobState, now: float,
                   reason: str = "") -> None:
        """Move to *new_state*; raises :class:`JobError` if illegal."""
        if new_state not in _TRANSITIONS[self.state]:
            raise JobError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state
        self.history[new_state] = now
        if new_state is JobState.ACTIVE:
            self.started_at = now
        if new_state in TERMINAL_STATES:
            self.finished_at = now
            if reason:
                self.failure_reason = reason

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- progress ------------------------------------------------------------------

    def progress(self, now: float) -> float:
        """Execution progress in [0, 1] (0 before ACTIVE, 1 when DONE)."""
        if self.state is JobState.DONE:
            return 1.0
        if self.started_at is None or self.runtime in (None, 0):
            return 0.0
        return max(0.0, min(1.0, (now - self.started_at) / self.runtime))

    def output_available(self, now: float) -> int:
        """Bytes of output written so far (drives tentative polling)."""
        return int(self.output_size * self.progress(now))

    def queue_wait(self) -> Optional[float]:
        """Seconds spent PENDING, once the job has started."""
        if self.started_at is None or JobState.PENDING not in self.history:
            return None
        return self.started_at - self.history[JobState.PENDING]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<GridJob {self.job_id} {self.state.value}>"
