"""The GridService template runtime: what a generated service *does*.

"The GridService 'template-class' contains the code that actually
initializes the execution of an associated executable on the Grid"
(paper §VI).  Its ``execute`` operation implements the §VII.B workflow:

1. *File retrieval* — load the executable from the database (CPU peak:
   "loading and decompressing the file from the database") and store it
   in a temporary location on the appliance disk.
2. *Authentication* — establish an agent session (MyProxy logon) unless
   a fresh one is cached.
3. *Upload* — push the executable to the chosen site via the agent
   (GridFTP over the thin WAN uplink: Figure 7's 60-second plateau).
   Faithfully, the file "will even be reloaded when executed a 2nd
   time" — no upload cache unless the ablation flag is set.
4. *Job description generation* — build the RSL from the invocation
   parameters (second CPU peak: "when the job is being created and
   submitted").
5. *Job submission* — through the agent to the gatekeeper.
6. *Tentative output polling* — the status workaround: on a fixed
   interval fetch whatever output exists, write it to the local disk
   (the periodic disk-write peaks of Figures 6-7), and check for the
   stdout file's existence; finish when it appears.

Resilience: steps 3-6 run under :func:`_run_with_failover` — transient
failures (see :func:`repro.errors.is_retryable`) are retried per call
site with the middleware's backoff policy, trip the failed site's
circuit breaker, and fail the whole invocation over to the next untried
site (re-staging the executable via GridFTP) until the configured
failover budget or the request deadline runs out.  With no faults
injected none of this machinery creates a single extra simulation
event.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.context import RequestContext, span
from repro.core.datastructures import ExecutableRecord
from repro.core.watchdog import await_mux, await_notification, poll_until
from repro.cyberaide.jobspec import CyberaideJobSpec
from repro.errors import (
    InvocationError, JobError, JobNotFound, is_retryable, root_cause_name,
)
from repro.resilience.retry import retry_call
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.onserve import OnServe

__all__ = ["GridServiceRuntime", "InvocationReport"]


class InvocationReport:
    """Timing breakdown of one execute() call (for the benchmarks)."""

    __slots__ = ("service_name", "started_at", "finished_at", "retrieval",
                 "auth", "upload", "submit", "polling", "polls", "job_id",
                 "output_bytes", "ok", "error")

    def __init__(self, service_name: str, started_at: float):
        self.service_name = service_name
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.retrieval = 0.0
        self.auth = 0.0
        self.upload = 0.0
        self.submit = 0.0
        self.polling = 0.0
        self.polls = 0
        self.job_id = ""
        self.output_bytes = 0
        self.ok = False
        self.error = ""

    @property
    def total(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def overhead(self) -> float:
        """Middleware time excluding the grid-side wait (poll phase)."""
        return self.retrieval + self.auth + self.upload + self.submit

    def as_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__} | {
            "total": self.total, "overhead": self.overhead}


class GridServiceRuntime:
    """The handler behind one generated service."""

    def __init__(self, onserve: "OnServe", record: ExecutableRecord):
        self.onserve = onserve
        self.record = record
        self.sim = onserve.sim
        self._session: Optional[str] = None
        self._session_expires = 0.0
        #: Event shared by callers waiting on an in-flight authentication
        #: (prevents a thundering herd of MyProxy logons).
        self._auth_pending = None
        self._rr_cursor = 0
        #: Asynchronous invocations in flight: ticket -> background process.
        self._tickets: Dict[str, Any] = {}
        #: One report per execute() call, in order.
        self.reports: List[InvocationReport] = []

    # -- the SOAP handler -----------------------------------------------------

    def handler(self, operation: str, params: Dict[str, Any],
                ctx: Optional[RequestContext] = None):
        if operation == "describe":
            return self._describe()
        if operation == "execute":
            return self._execute(params, ctx=ctx)
        if operation == "submit":
            return self._submit_async(params, ctx=ctx)
        if operation == "poll":
            return self._poll_async(params["ticket"])
        if operation == "result":
            return self._result_async(params["ticket"])
        raise InvocationError(f"generated service has no operation "
                              f"{operation!r}")  # unreachable via SOAP

    # -- asynchronous invocation (submit / poll / result) ----------------------

    def _submit_async(self, params: Dict[str, Any],
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, str]:
        """Start the execute pipeline in the background; return a ticket."""
        yield self.onserve.host.compute(0.002, tag="service")
        ticket = f"tkt-{self.record.name}-{len(self._tickets) + 1:05d}"
        # The background work outlives this SOAP request: give it a
        # derived context so its trace collects separately.
        child = ctx.child() if ctx is not None else None
        proc = self.sim.process(self._execute(params, ctx=child),
                                name=f"async:{ticket}")
        # Failures are delivered through result(), not as stray crashes.
        proc.add_callback(lambda ev: ev.defused() if not ev._ok else None)
        self._tickets[ticket] = proc
        return ticket

    def _poll_async(self, ticket: str) -> Generator[Event, None, bool]:
        yield self.onserve.host.compute(0.001, tag="service")
        return self._ticket(ticket).triggered

    def _result_async(self, ticket: str) -> Generator[Event, None, str]:
        yield self.onserve.host.compute(0.001, tag="service")
        proc = self._ticket(ticket)
        if not proc.triggered:
            raise InvocationError(
                f"ticket {ticket!r} is still running (poll first)")
        del self._tickets[ticket]
        if not proc.ok:
            raise InvocationError(
                f"ticket {ticket!r} failed: {proc.value}")
        return proc.value

    def _ticket(self, ticket: str):
        proc = self._tickets.get(ticket)
        if proc is None:
            raise InvocationError(f"unknown ticket {ticket!r}")
        return proc

    def _describe(self) -> Generator[Event, None, str]:
        yield self.onserve.host.compute(0.001, tag="service")
        return self.record.description or self.record.name

    # -- §VII.B: the execute workflow -----------------------------------------------

    def _execute(self, params: Dict[str, Any],
                 ctx: Optional[RequestContext] = None
                 ) -> Generator[Event, None, str]:
        cfg = self.onserve.config
        host = self.onserve.host
        report = InvocationReport(self.record.name, self.sim.now)
        self.reports.append(report)
        held_bytes = 0  # RAM held for the in-flight payload
        try:
            # 1. File retrieval: DB load + temp copy on local disk.  The
            #    decompressed payload sits in RAM until staged to the grid.
            #    Under coalescing, concurrent invocations share one DB
            #    fetch (the leader's) instead of N decompressions.
            mark = self.sim.now
            chunked = cfg.db_chunk_bytes > 0
            # When the DB-scale plane is on, fetch time gets its own
            # db:fetch span so the critical-path analyzer attributes it
            # to db/storage instead of folding it into service self-time.
            db_tier_on = (chunked or cfg.db_mvcc or cfg.db_serialize
                          or cfg.db_replicas > 0)
            db_ctx = ctx if db_tier_on else None
            with span(ctx, "service:retrieval", executable=self.record.name):
                if chunked:
                    # Streamed retrieval: each decompressed chunk goes
                    # straight from the DB fetch to the temp file, so
                    # resident RAM stays O(chunk) instead of O(blob).
                    def db_fetch():
                        def to_temp(nbytes):
                            yield host.disk_write(nbytes)
                        with span(db_ctx, "db:fetch",
                                  executable=self.record.name):
                            return (yield self.onserve.dbmanager
                                    .load_executable(self.record.name,
                                                     on_chunk=to_temp))
                else:
                    def db_fetch():
                        with span(db_ctx, "db:fetch",
                                  executable=self.record.name):
                            return (yield self.onserve.dbmanager
                                    .load_executable(self.record.name))

                exe = yield from self.onserve.flights.do(
                    ("db-load", self.onserve.replica, self.record.name),
                    db_fetch, group="db-load")
                if not chunked:
                    host.allocate_memory(exe.size)
                    held_bytes = exe.size
                    # "stored in a temporary location"
                    yield host.disk_write(exe.size)
            report.retrieval = self.sim.now - mark

            # 2. Authentication through the agent (cached while fresh).
            mark = self.sim.now
            with span(ctx, "service:auth"):
                yield from self._ensure_session(ctx)
            report.auth = self.sim.now - mark

            # Resource selection via the information service: the ranked
            # listing is fetched once; the failover loop below walks it.
            sites = yield self.onserve.agent_stub.listSites(ctx=ctx)
            available = [s for s in (sites.split(",") if sites else []) if s]

            # Build the job spec from the declared parameters, in order.
            arguments = [_argument(params[p.name]) for p in self.record.params]
            tag = self.onserve.new_job_tag()
            spec = CyberaideJobSpec(
                self.record.name, arguments=arguments,
                count=cfg.default_count,
                max_wall_time=cfg.default_walltime,
                queue=cfg.default_queue)

            def attempt_on_site(site: str):
                """Steps 3-6 against one site (a delegated generator)."""
                nonlocal held_bytes
                policy = self.onserve.retry_policy

                # 3. Upload the executable to the site (re-uploaded every
                #    time unless the upload-cache ablation is on).  Under
                #    coalescing, concurrent invocations staging the same
                #    (site, path, bytes) share one GridFTP transfer.
                mark = self.sim.now
                with span(ctx, "service:upload", site=site):
                    staged = spec.staged_path()
                    staged_hit = (cfg.upload_cache and
                                  self.onserve.is_staged(site, staged,
                                                         exe.payload))
                    if cfg.upload_cache:
                        self.onserve.bus.emit(
                            "cache.hit" if staged_hit else "cache.miss",
                            layer="core", cache="staged",
                            request_id=ctx.request_id if ctx else None,
                            key=f"{site}:{staged}")
                    if not staged_hit:
                        if chunked:
                            pass  # payload streams off the temp copy
                        elif held_bytes == 0:
                            # Failover re-stage: the payload comes back
                            # into RAM for the second GridFTP trip.
                            host.allocate_memory(exe.size)
                            held_bytes = exe.size

                        def stage():
                            if chunked:
                                # Read the temp copy back for the
                                # GridFTP trip; the blob never re-enters
                                # RAM whole.
                                yield host.disk_read(exe.size)

                            def upload_try():
                                session = yield from self._ensure_session(
                                    ctx)
                                return (yield self.onserve.agent_stub
                                        .uploadExecutable(
                                            session=session, site=site,
                                            path=staged, data=exe.payload,
                                            ctx=ctx))

                            yield from retry_call(
                                self.sim, policy, upload_try, ctx=ctx,
                                label=f"upload:{site}",
                                on_retry=self._recover_session)
                            self.onserve.mark_staged(site, staged,
                                                     exe.payload)

                        flights = self.onserve.flights
                        digest = (self.onserve._digest(exe.payload)
                                  if flights.enabled else "")
                        # Keyed by replica: fabrics share one DbManager,
                        # and replica A's staging flight must never be
                        # joined by an invocation running on replica B
                        # (each replica stages over its own uplink).
                        yield from flights.do(
                            ("stage", self.onserve.replica, site, staged,
                             digest), stage, group="staging")
                    # The buffer is staged (or cached); collect it now.
                    if held_bytes:
                        host.release_memory(held_bytes)
                        held_bytes = 0
                report.upload += self.sim.now - mark

                # 4.+5. Job description generation + submission.
                mark = self.sim.now
                with span(ctx, "service:submit", site=site):
                    yield host.compute(cfg.submit_cpu, tag="service")
                    rsl = spec.to_rsl(job_tag=tag)

                    def submit_try():
                        session = yield from self._ensure_session(ctx)
                        return (yield self.onserve.agent_stub.submitJob(
                            session=session, site=site, rsl=rsl, ctx=ctx))

                    job_id = yield from retry_call(
                        self.sim, policy, submit_try, ctx=ctx,
                        label=f"submit:{site}",
                        on_retry=self._recover_session)
                report.job_id = job_id
                report.submit += self.sim.now - mark

                # 6. Wait for completion.
                mark = self.sim.now
                with span(ctx, "service:polling", job=job_id):
                    result = yield from self._await_output(
                        self._session, site, spec, tag, job_id, report, ctx)
                report.polling += self.sim.now - mark
                return result

            output = yield from self._run_with_failover(
                available, attempt_on_site, ctx)
            report.output_bytes = len(output)
            report.ok = True
            try:
                return output.decode("utf-8")
            except UnicodeDecodeError:
                return f"(binary output, {len(output)} bytes)"
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if held_bytes:
                host.release_memory(held_bytes)
            report.finished_at = self.sim.now
            from repro.core.datastructures import service_name_for
            self.onserve.record_invocation(
                service_name_for(self.record.name), report)

    def _run_with_failover(self, available: List[str], attempt,
                           ctx: Optional[RequestContext] = None
                           ) -> Generator[Event, None, bytes]:
        """Drive *attempt* over sites until one succeeds (or give up).

        Transient failures (``is_retryable``) trip the failed site's
        circuit breaker and move on to the next untried site — up to the
        configured ``failover_sites`` extra attempts, while the context
        deadline allows.  Permanent failures propagate immediately, as
        does the last transient failure once sites (or the budget) run
        out.  Success closes the site's breaker.
        """
        breakers = self.onserve.breakers
        max_sites = 1 + self.onserve.config.failover_sites
        tried: List[str] = []
        last_error: Optional[BaseException] = None
        while True:
            remaining = [s for s in available if s not in tried]
            try:
                site = self._choose_site(remaining)
            except InvocationError:
                if last_error is not None:
                    raise last_error from None
                raise
            try:
                result = yield from attempt(site)
            except Exception as exc:
                tried.append(site)
                if is_retryable(exc):
                    breakers.failure(site)
                else:
                    raise
                out_of_sites = not [s for s in available if s not in tried]
                past_deadline = (ctx is not None and ctx.deadline is not None
                                 and self.sim.now >= ctx.deadline)
                if len(tried) >= max_sites or out_of_sites or past_deadline:
                    raise
                last_error = exc
                self.onserve.bus.emit(
                    "core.failover", layer="core",
                    request_id=ctx.request_id if ctx else None,
                    service=self.record.name, from_site=site,
                    error=root_cause_name(exc))
                continue
            breakers.success(site)
            return result

    def _recover_session(self, exc: BaseException, attempt: int) -> None:
        """Retry hook: a dead credential means re-authenticate, not just
        repeat — drop the cached session so the next attempt logs on."""
        if root_cause_name(exc) in ("CredentialExpired",
                                    "AuthenticationFailed"):
            if self.onserve.config.coalesce:
                self.onserve.drop_agent_session(self._session)
            self._session = None
            self._session_expires = 0.0

    def _choose_site(self, sites: List[str]) -> str:
        """Apply the configured site-selection policy.

        The agent's listing is already MDS-ranked (most free cores
        first), so "best" is simply the head of the list.  Sites whose
        circuit breaker is open are skipped; when *every* candidate's
        circuit is open the invocation fails fast rather than queue up
        behind a grid that is known to be broken.
        """
        sites = [s for s in sites if s]
        if not sites:
            raise InvocationError("no grid site available")
        allowed = [s for s in sites
                   if self.onserve.breakers.allow(s)]
        if not allowed:
            raise InvocationError(
                f"no grid site available (circuit open for "
                f"{len(sites)} candidate(s))")
        sites = allowed
        policy = self.onserve.config.site_policy
        if policy == "round_robin":
            # Rotate over a *stable* ordering, not the load-ranked one.
            ordered = sorted(sites)
            site = ordered[self._rr_cursor % len(ordered)]
            self._rr_cursor += 1
            return site
        if policy == "random":
            rng = self.sim.rng.stream(f"site-policy:{self.record.name}")
            return rng.choice(sorted(sites))
        return sites[0]

    def _ensure_session(self, ctx: Optional[RequestContext] = None
                        ) -> Generator[Event, None, str]:
        cfg = self.onserve.config
        if cfg.coalesce:
            # Appliance-wide session, logons single-flighted across
            # every runtime (one MyProxy logon for N services).
            session = yield from self.onserve.ensure_agent_session(ctx)
            self._session = session
            self._session_expires = self.onserve.agent_session_expires()
            return session
        while True:
            if (self._session is not None
                    and self.sim.now < self._session_expires):
                return self._session
            if self._auth_pending is not None:
                # Someone else is already logging on; piggyback on it.
                yield self._auth_pending
                continue
            self._auth_pending = self.sim.event("auth-pending")
            try:
                self._session = yield self.onserve.agent_stub.authenticate(
                    username=cfg.grid_username,
                    passphrase=cfg.grid_passphrase, ctx=ctx)
                # Renew well before the delegated proxy actually expires.
                self._session_expires = self.sim.now + cfg.session_renewal
            finally:
                pending, self._auth_pending = self._auth_pending, None
                pending.succeed()
            return self._session

    def _await_output(self, session: str, site: str, spec: CyberaideJobSpec,
                      tag: str, job_id: str, report: InvocationReport,
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, bytes]:
        """Completion detection, with and without the status workaround."""
        cfg = self.onserve.config
        host = self.onserve.host
        stub = self.onserve.agent_stub

        if cfg.status_supported:
            # Ablation: clean status polling, output fetched exactly once.
            def status_poll():
                return stub.jobStatus(session=session, site=site,
                                      jobId=job_id, ctx=ctx)

            (state, polls) = yield poll_until(
                self.sim,
                poll_factory=status_poll,
                accept=lambda s: s in ("done", "failed", "canceled"),
                interval=cfg.poll_interval,
                timeout=cfg.watchdog_timeout)
            report.polls += polls
            self._emit_detected(ctx, job_id, site, polls, batched=False)
            if state != "done":
                # A JobError (retryable): a crash-killed job may well
                # succeed when resubmitted on another site.
                raise JobError(f"grid job {job_id} ended {state}")
            output = yield stub.fetchOutput(session=session, site=site,
                                            jobId=job_id, ctx=ctx)
            yield host.disk_write(len(output))
            return output

        queue = self.onserve.notify_queue
        if queue is not None and queue.site_capable(site):
            # Push path (the fallback ladder's top rung): the site's
            # gatekeeper delivers the terminal state change to us —
            # zero poller exchanges, detection lag = one propagation.
            return (yield from self._await_output_notify(
                queue, session, site, job_id, report, ctx))

        if cfg.datapath:
            # Batched data path: the per-site multiplexer detects
            # completion for us; only the final fetch stays per-job.
            return (yield from self._await_output_mux(
                session, site, spec, tag, job_id, report, ctx))

        # Faithful workaround: tentatively fetch output every interval,
        # writing each (partial) result to local disk, until the stdout
        # file exists on the grid.
        stdout_path = spec.stdout_path(tag)
        collected: Dict[str, bytes] = {"data": b""}

        def poll():
            def round_trip() -> Generator[Event, None, bool]:
                data = yield stub.fetchOutput(session=session, site=site,
                                              jobId=job_id, ctx=ctx)
                collected["data"] = data
                if data:
                    # "the output of the running job is written to the
                    # hard disk" — every poll, the periodic write peaks.
                    yield host.disk_write(len(data))
                ready = yield stub.outputReady(session=session, site=site,
                                               path=stdout_path, ctx=ctx)
                return ready

            return self.sim.process(round_trip(), name="tentative-poll")

        (_ready, polls) = yield poll_until(
            self.sim,
            poll_factory=poll,
            accept=lambda ready: bool(ready),
            interval=cfg.poll_interval,
            timeout=cfg.watchdog_timeout)
        report.polls += polls
        self._emit_detected(ctx, job_id, site, polls, batched=False)
        # The last tentative fetch may predate completion; fetch final.
        output = yield stub.fetchOutput(session=session, site=site,
                                        jobId=job_id, ctx=ctx)
        yield host.disk_write(len(output))
        if output and set(output) == {0}:
            raise JobError(
                f"grid job {job_id} produced no final output "
                f"(failed on the grid?)")
        return output

    def _await_output_mux(self, session: str, site: str,
                          spec: CyberaideJobSpec, tag: str, job_id: str,
                          report: InvocationReport,
                          ctx: Optional[RequestContext] = None
                          ) -> Generator[Event, None, bytes]:
        """Completion detection through the per-site PollMux.

        The multiplexer runs one batched tentative poll covering every
        in-flight job on the site; this waiter just parks on its event
        (under the same watchdog deadline as the per-job loop) and then
        performs the one per-job step that cannot batch — fetching the
        final output.
        """
        cfg = self.onserve.config
        host = self.onserve.host
        stub = self.onserve.agent_stub
        mux = self.onserve.poll_mux(site)
        result, polls = yield await_mux(
            self.sim, mux, job_id, spec.stdout_path(tag),
            cfg.watchdog_timeout)
        report.polls += polls
        self._emit_detected(ctx, job_id, site, polls, batched=True)
        if result["error"]:
            # The gatekeeper lost the job record — same classification
            # as the per-job path's raised lookup, so failover applies.
            raise JobNotFound(
                f"gatekeeper has no record of job {job_id!r}")
        output = yield stub.fetchOutput(session=session, site=site,
                                        jobId=job_id, ctx=ctx)
        yield host.disk_write(len(output))
        if output and set(output) == {0}:
            raise JobError(
                f"grid job {job_id} produced no final output "
                f"(failed on the grid?)")
        return output

    def _await_output_notify(self, queue, session: str, site: str,
                             job_id: str, report: InvocationReport,
                             ctx: Optional[RequestContext] = None
                             ) -> Generator[Event, None, bytes]:
        """Completion detection by subscription (the push path).

        The notify-capable gatekeeper publishes the job's terminal
        state onto the durable queue; this waiter parks on the
        subscription — under the same watchdog deadline as every other
        rung of the ladder — and wakes one propagation delay after the
        job actually finished.  No tentative polls at all: the only
        per-job exchange left is fetching the final output.
        """
        cfg = self.onserve.config
        host = self.onserve.host
        stub = self.onserve.agent_stub
        with span(ctx, "notify:await", site=site, job=job_id):
            note = yield await_notification(
                self.sim, queue, site, job_id, cfg.watchdog_timeout)
        self._emit_detected(ctx, job_id, site, polls=0, batched=False,
                            pushed=True)
        if note["error"]:
            # The job manager lost the job and said so — same
            # classification as the poll paths' lookup failure, so
            # failover applies.
            raise JobNotFound(
                f"gatekeeper has no record of job {job_id!r}")
        if note["state"] != "done":
            raise JobError(f"grid job {job_id} ended {note['state']}")
        output = yield stub.fetchOutput(session=session, site=site,
                                        jobId=job_id, ctx=ctx)
        yield host.disk_write(len(output))
        if output and set(output) == {0}:
            raise JobError(
                f"grid job {job_id} produced no final output "
                f"(failed on the grid?)")
        return output

    def _emit_detected(self, ctx: Optional[RequestContext], job_id: str,
                       site: str, polls: int, batched: bool,
                       pushed: bool = False) -> None:
        """Observational completion-detection marker (no sim events):
        correlated with the scheduler's ``sched.finish`` it yields the
        detection lag the datapath/notify ablations report."""
        self.onserve.bus.emit(
            "core.output_detected", layer="core",
            request_id=ctx.request_id if ctx else None,
            service=self.record.name, site=site, job_id=job_id,
            polls=polls, batched=batched, pushed=pushed)


def _argument(value: Any) -> str:
    """SOAP value -> RSL argument string."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, bytes):
        raise InvocationError("binary parameters cannot become RSL arguments")
    return str(value)
