"""Executable and generated-service records (the "datastructures" pkg)."""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.errors import OnServeError
from repro.ws.registryapi import ParameterSpec

__all__ = ["ExecutableRecord", "GeneratedService", "parse_params_spec",
           "service_name_for"]

#: Textual parameter-spec syntax used by the portal form (Figure 3):
#: ``name:type,name:type`` with types string|int|double|boolean.
_PARAM_TYPES = {
    "string": "xsd:string",
    "int": "xsd:int",
    "double": "xsd:double",
    "boolean": "xsd:boolean",
}


def parse_params_spec(spec: str) -> List[ParameterSpec]:
    """Parse the portal's parameter declaration string.

    An empty spec means a parameterless executable.
    """
    spec = spec.strip()
    if not spec:
        return []
    params = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if ":" not in chunk:
            raise OnServeError(
                f"bad parameter spec {chunk!r} (want name:type)")
        name, _, type_name = chunk.partition(":")
        name = name.strip()
        type_name = type_name.strip().lower()
        if type_name not in _PARAM_TYPES:
            raise OnServeError(
                f"unknown parameter type {type_name!r} "
                f"(know {sorted(_PARAM_TYPES)})")
        params.append(ParameterSpec(name, _PARAM_TYPES[type_name]))
    return params


def service_name_for(executable_name: str) -> str:
    """Derive the generated service's name from an executable name.

    ``word-count_2.sh`` -> ``WordCount2Service`` (the build script's
    "modifies its name" step).
    """
    stem = executable_name.rsplit(".", 1)[0]
    words = re.split(r"[^0-9A-Za-z]+", stem)
    camel = "".join(w.capitalize() for w in words if w)
    if not camel:
        raise OnServeError(f"cannot derive a service name from "
                           f"{executable_name!r}")
    return camel + "Service"


class ExecutableRecord:
    """An uploaded executable's metadata (payload lives in the DB)."""

    def __init__(self, name: str, description: str,
                 params: Sequence[ParameterSpec], size: int,
                 uploaded_by: str, uploaded_at: float):
        if not name:
            raise OnServeError("executable name must not be empty")
        self.name = name
        self.description = description
        self.params = list(params)
        self.size = size
        self.uploaded_by = uploaded_by
        self.uploaded_at = uploaded_at

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<ExecutableRecord {self.name!r} {self.size}B>"


class GeneratedService:
    """Everything onServe knows about one generated web service."""

    def __init__(self, service_name: str, executable_name: str,
                 endpoint: str, wsdl_location: str,
                 uddi_service_key: str, uddi_binding_key: str,
                 archive_size: int, created_at: float):
        self.service_name = service_name
        self.executable_name = executable_name
        self.endpoint = endpoint
        self.wsdl_location = wsdl_location
        self.uddi_service_key = uddi_service_key
        self.uddi_binding_key = uddi_binding_key
        self.archive_size = archive_size
        self.created_at = created_at
        #: Usage counters.
        self.invocations = 0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<GeneratedService {self.service_name!r} "
                f"for {self.executable_name!r}>")
