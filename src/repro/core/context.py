"""The request fabric's carrier object: :class:`RequestContext`.

Every entry point into the stack — a portal form submission, a SOAP
client invoke, a shell command, a mediator task — creates one
``RequestContext`` and threads it through every layer it touches
(``ws.server`` → ``core`` → ``cyberaide.agent`` → ``grid``).  The
context carries:

* a **request id**, unique per simulator run (deterministic counter),
* the **principal** on whose behalf the request runs,
* an optional absolute **deadline** in simulated seconds, checked by the
  deadline interceptor at every dispatch point along the way,
* a **trace**: a tree of sim-time spans, dumpable as a per-request
  waterfall covering every layer the request crossed, and
* a **baggage** dict for request-scoped key/values that must survive
  layer boundaries.

Nothing here creates simulation events or consumes simulated time:
attaching a context to a run cannot change its timing, which is what
keeps the figure scenarios byte-identical with tracing on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["TraceSpan", "RequestContext", "span"]


class TraceSpan:
    """One timed operation inside a request's trace tree."""

    __slots__ = ("name", "start", "end", "parent", "children", "meta")

    def __init__(self, name: str, start: float,
                 parent: Optional["TraceSpan"] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["TraceSpan"] = []
        self.meta: Dict[str, Any] = {}
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def walk(self) -> Iterator[tuple[int, "TraceSpan"]]:
        """Depth-first (depth, span) traversal of this subtree."""
        stack: List[tuple[int, TraceSpan]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def find(self, name: str) -> Optional["TraceSpan"]:
        """First span named *name* in this subtree (depth-first)."""
        for _, node in self.walk():
            if node.name == name:
                return node
        return None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = f"{self.duration:.3f}s" if self.closed else "open"
        return f"<TraceSpan {self.name!r} {state}>"


class RequestContext:
    """Request id + principal + deadline + trace, threaded everywhere."""

    __slots__ = ("sim", "request_id", "principal", "deadline", "baggage",
                 "root", "_stack")

    def __init__(self, sim: "Simulator", request_id: str,
                 principal: str = "anonymous",
                 deadline: Optional[float] = None,
                 baggage: Optional[Dict[str, Any]] = None):
        self.sim = sim
        self.request_id = request_id
        self.principal = principal
        #: Absolute simulated time after which the request is dead.
        self.deadline = deadline
        self.baggage: Dict[str, Any] = dict(baggage or {})
        self.root = TraceSpan(f"request:{request_id}", sim.now)
        self._stack: List[TraceSpan] = [self.root]

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, sim: "Simulator", principal: str = "anonymous",
               deadline: Optional[float] = None,
               baggage: Optional[Dict[str, Any]] = None) -> "RequestContext":
        """Mint a context with the simulator's next request id.

        The id counter lives on the simulator instance so ids are
        deterministic per run and reset with every fresh simulator.
        """
        seq = getattr(sim, "_request_seq", 0) + 1
        sim._request_seq = seq  # type: ignore[attr-defined]
        return cls(sim, f"req-{seq:06d}", principal=principal,
                   deadline=deadline, baggage=baggage)

    def child(self, principal: Optional[str] = None) -> "RequestContext":
        """A derived context: fresh id, same deadline/baggage, own trace.

        Used where a component fans work out on behalf of a request but
        wants separately collectable traces (e.g. mediator tasks).
        """
        ctx = RequestContext.create(self.sim,
                                    principal=principal or self.principal,
                                    deadline=self.deadline,
                                    baggage=self.baggage)
        ctx.baggage["parent_request"] = self.request_id
        return ctx

    # -- deadline -----------------------------------------------------------

    @property
    def expired(self) -> bool:
        """True once the simulated clock has passed the deadline."""
        return self.deadline is not None and self.sim.now > self.deadline

    @property
    def remaining(self) -> float:
        """Seconds until the deadline (``inf`` when none is set)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - self.sim.now

    # -- trace spans --------------------------------------------------------

    def begin_span(self, name: str, **meta: Any) -> TraceSpan:
        """Open a child span under the innermost open span."""
        parent = self._stack[-1] if self._stack else self.root
        span_ = TraceSpan(name, self.sim.now, parent=parent)
        span_.meta.update(meta)
        self._stack.append(span_)
        return span_

    def end_span(self, span_: TraceSpan) -> None:
        """Close *span_* (tolerates out-of-order closes from interleaving)."""
        if span_.end is None:
            span_.end = self.sim.now
        if span_ in self._stack:
            self._stack.remove(span_)

    def spans(self) -> List[TraceSpan]:
        """Every span of the trace, depth-first."""
        return [node for _, node in self.root.walk()]

    def waterfall(self) -> str:
        """The trace as an indented per-request waterfall (sim seconds)."""
        t0 = self.root.start
        lines = [f"trace {self.request_id} (principal={self.principal})"]
        for depth, node in self.root.walk():
            if node is self.root:
                continue
            end = node.end if node.end is not None else self.sim.now
            mark = "" if node.closed else " (open)"
            extra = "".join(f" {k}={v}" for k, v in sorted(node.meta.items()))
            lines.append(
                f"  {'  ' * (depth - 1)}{node.start - t0:9.3f}s "
                f"+{end - node.start:8.3f}s  {node.name}{extra}{mark}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<RequestContext {self.request_id} "
                f"principal={self.principal!r} spans={len(self.spans())}>")


@contextmanager
def span(ctx: Optional[RequestContext], name: str, **meta: Any):
    """Open a trace span if *ctx* is present; no-op otherwise.

    Safe to use inside simulation-process generators: the span brackets
    the sim-time interval the enclosed code takes, including its yields.
    """
    if ctx is None:
        yield None
        return
    span_ = ctx.begin_span(name, **meta)
    try:
        yield span_
    finally:
        ctx.end_span(span_)
