"""The replica fabric: N stateless onServe appliances behind a router.

:func:`deploy_fabric` generalizes :func:`~repro.core.onserve.deploy_onserve`
from one virtual appliance to a sharded deployment (DESIGN.md §11):

* **N replica hosts** cloned from the testbed's appliance host, each
  with its own thin WAN uplink to the grid and its own LAN links, each
  running the full software stack (SOAP container, Cyberaide agent,
  :class:`~repro.core.onserve.OnServe`, UDDI inquiry + management
  endpoints),
* **one shared DB tier** (:class:`~repro.db.dbmanager.DbManager` on the
  primary appliance host) holding the executables, the invocation
  history and the :class:`~repro.core.registry.ServiceStateStore`
  tables that make the replicas stateless,
* **one shared UDDI registry** — still the placement source of truth
  clients discover through, and
* **one request router host** fronting the replicas
  (:class:`~repro.ws.router.RequestRouter`): generated services publish
  the *router* endpoint, so every invocation is hash-routed with
  breaker-aware skip and least-loaded spill.

``deploy_fabric(replicas=1)`` (router off) delegates to the exact
``deploy_onserve`` sequence and merely *constructs* a disabled router —
the default single-appliance timeline stays byte-identical, which the
golden guard asserts.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.appliance.deploy import DeployedAppliance, deploy_image
from repro.appliance.image import ImageBuilder, ONSERVE_PACKAGES
from repro.core.onserve import (
    OnServe, OnServeConfig, OnServeStack, deploy_onserve,
)
from repro.core.registry import ServiceStateStore
from repro.cyberaide.agent import AgentConfig, CyberaideAgent
from repro.db.dbmanager import DbManager, DbTierConfig
from repro.errors import OnServeError
from repro.grid.testbed import Testbed
from repro.hardware.host import Host, HostSpec
from repro.simkernel.events import Event
from repro.simkernel.process import Interrupt, Process
from repro.telemetry.events import bus
from repro.units import Gbps
from repro.ws.client import WsClient
from repro.ws.router import RequestRouter
from repro.ws.server import SoapFabric, SoapServer
from repro.ws.uddi import UddiRegistry

__all__ = ["FabricStack", "deploy_fabric"]


class FabricStack(OnServeStack):
    """Everything :func:`deploy_fabric` brings up, in one handle.

    Subclasses :class:`OnServeStack` — ``soap_server``, ``onserve`` etc.
    refer to the *primary* replica, so every single-appliance consumer
    (portal, scenarios, tests) works unchanged — and adds the fabric
    surfaces: the replica list, the shared store and the router.
    """

    def __init__(self, *args, onserves: List[OnServe],
                 router: RequestRouter, store: ServiceStateStore,
                 **kwargs):
        super().__init__(*args, **kwargs)
        #: Every replica's OnServe, primary first.
        self.onserves = onserves
        self.router = router
        self.store = store
        # -- self-healing plane (inert until start_self_healing) ------
        self.self_healing = False
        self.heartbeat_interval = 5.0
        self._heartbeats: Dict[str, Process] = {}
        self._unsubscribe_remediation = None
        self._last_remediation = None
        #: (ts, replica, action) remediation log.
        self.remediations: List = []

    @property
    def replica_hosts(self) -> List[Host]:
        return [o.host for o in self.onserves]

    def onserve_for(self, name: str) -> Optional[OnServe]:
        for onserve in self.onserves:
            if onserve.replica == name:
                return onserve
        return None

    # -- self-healing: leases, crash, restart, drain ------------------------

    def start_self_healing(self,
                           heartbeat_interval: Optional[float] = None
                           ) -> "FabricStack":
        """Arm the self-healing plane: leases + membership watchdog.

        Every replica starts a heartbeat process renewing its lease in
        the shared membership table every ``heartbeat_interval``
        (default: a third of the router's ``lease_ttl``, so two beats
        can be lost before the lease lapses), and the router starts the
        lease watchdog that declares lapsed replicas dead.  Requires a
        router constructed with ``self_healing=True`` and a store.
        """
        if self.self_healing:
            return self
        if not self.router.self_healing or self.router.store is None:
            raise OnServeError("self-healing needs a router built with "
                               "self_healing=True and a state store")
        self.heartbeat_interval = (heartbeat_interval
                                   or self.router.lease_ttl / 3.0)
        self.self_healing = True
        for onserve in self.onserves:
            self._start_heartbeat(onserve.replica)
        self.router.start_membership_watch()
        return self

    def stop_self_healing(self) -> None:
        for name, proc in list(self._heartbeats.items()):
            if proc.is_alive:
                proc.interrupt("stop")
        self._heartbeats.clear()
        self.router.stop_membership_watch()
        self.disable_remediation()
        self.self_healing = False

    def _start_heartbeat(self, name: str) -> None:
        self._heartbeats[name] = self.sim.process(
            self._heartbeat(name), name=f"fabric:heartbeat:{name}")

    def _heartbeat(self, name: str) -> Generator[Event, None, None]:
        # Renew-then-sleep: the lease is valid from the first beat, and
        # a killed heartbeat simply stops renewing — the lease lapses
        # on its own and the watchdog declares the death.
        try:
            while True:
                self.store.renew_member(
                    name, self.sim.now + self.router.lease_ttl)
                yield self.sim.timeout(self.heartbeat_interval,
                                       name=f"fabric:heartbeat:{name}")
        except Interrupt:
            return

    def crash_replica(self, name: str) -> int:
        """Kill replica *name* abruptly (fail-stop, no goodbye).

        Models a process crash: the replica refuses new connections,
        its heartbeat stops renewing the lease, and every request in
        flight against it dies mid-exchange (the router's healing
        transport fails those over).  The *router* is not told — it
        must detect the death through transport faults or lease
        expiry, which is exactly what the chaos scenario measures.
        Returns how many in-flight requests were killed.
        """
        replica = self.router.replica_handle(name)
        replica.crashed = True
        heartbeat = self._heartbeats.pop(name, None)
        if heartbeat is not None and heartbeat.is_alive:
            heartbeat.interrupt("crash")
        killed = self.router.kill_inflight(name)
        bus(self.sim).emit("fabric.replica_crash", layer="core",
                           replica=name, inflight_killed=killed)
        return killed

    def restart_replica(self, name: str) -> None:
        """Bring a crashed/drained replica back into service.

        The replica is stateless — everything it needs lives in the
        shared DB tier — so restart is: clear the crash flag, rejoin
        the ring, close the breaker, and resume heartbeating.
        """
        self.router.revive_replica(name)
        if self.self_healing:
            self.store.renew_member(name,
                                    self.sim.now + self.router.lease_ttl)
            if name not in self._heartbeats:
                self._start_heartbeat(name)
        bus(self.sim).emit("fabric.replica_restart", layer="core",
                           replica=name)

    def drain_replica(self, name: str, reason: str = "admin") -> Process:
        """Gracefully remove *name*: stop new routes, finish in-flight.

        Returns the drain process; its completion means the replica is
        out of the ring with zero requests in flight, its membership
        lease released and its agent session lease dropped.
        """
        def op() -> Generator[Event, None, None]:
            heartbeat = self._heartbeats.pop(name, None)
            if heartbeat is not None and heartbeat.is_alive:
                heartbeat.interrupt("drain")
            if self.store.member(name) is not None:
                self.store.mark_draining(name)
            drain = self.router.remove_replica(name, reason=reason,
                                               drain=True)
            yield drain
            onserve = self.onserve_for(name)
            if onserve is not None:
                self.store.drop_lease(name, onserve.config.grid_username)

        return self.sim.process(op(), name=f"fabric:drain:{name}")

    # -- SLO-driven remediation ---------------------------------------------

    def enable_remediation(self, tower, cooldown: float = 120.0) -> None:
        """Drain-and-restart the hot replica when the SLO burns.

        Subscribes to ``slo.burn``: when a burn alert fires and the
        control tower's hot-shard detector has a currently-flagged
        replica, that replica is drained (in-flight finishes, no loss)
        and restarted — the simulated equivalent of recycling a sick
        process.  One remediation per *cooldown* seconds, never against
        the last live replica.  This is the one deliberately *active*
        bus subscriber in the stack: it exists to close the loop from
        observation to action, so it is opt-in and detachable.
        """
        if self._unsubscribe_remediation is not None:
            return

        def on_burn(event) -> None:
            if not self.self_healing:
                return
            now = self.sim.now
            if (self._last_remediation is not None
                    and now - self._last_remediation < cooldown):
                return
            detector = getattr(tower, "detector", None)
            target = detector.hot if detector is not None else None
            if target is None or target not in self.router.replicas():
                return
            if len(self.router.replicas()) <= 1:
                return
            self._last_remediation = now
            self.remediations.append((now, target, "drain_restart"))
            bus(self.sim).emit("fabric.remediate", layer="core",
                               replica=target, trigger="slo.burn")
            self.sim.process(self._remediate(target),
                             name=f"fabric:remediate:{target}")

        self._unsubscribe_remediation = bus(self.sim).subscribe(
            on_burn, kinds=("slo.burn",))

    def disable_remediation(self) -> None:
        if self._unsubscribe_remediation is not None:
            self._unsubscribe_remediation()
            self._unsubscribe_remediation = None

    def _remediate(self, name: str) -> Generator[Event, None, None]:
        yield self.drain_replica(name, reason="slo_burn")
        self.restart_replica(name)

    def inquiry_endpoint(self) -> str:
        if self.router.enabled:
            from repro.ws.uddi_service import UddiInquiryService
            return self.router.endpoint_for(UddiInquiryService.SERVICE_NAME)
        return super().inquiry_endpoint()

    def attach_control_tower(self, specs=(), rules=None,
                             profiler: bool = False, **detector_kwargs):
        """Attach the observability control tower to this fabric.

        Bundles the SLO tracker (over *specs* / *rules*), the
        per-replica fleet rollup, the hot-shard detector scoring load
        against the router's hash ring, and — with ``profiler=True`` —
        the wall-clock kernel profiler.  Pure observation: the tower
        subscribes to the bus and hooks wall-clock timers only, so the
        simulated timeline is untouched (the golden guard attaches one
        to prove it).  Returns the :class:`~repro.telemetry.fleet.
        ControlTower`; call ``close()`` to detach.
        """
        from repro.telemetry.fleet import ControlTower
        from repro.telemetry.profiler import KernelProfiler
        prof = KernelProfiler(self.sim) if profiler else None
        return ControlTower(self.sim, specs=specs, rules=rules,
                            router=self.router, profiler=prof,
                            **detector_kwargs)

    def _attach_cache_hooks(self, cache) -> None:
        # Invalidation must reach a client cache no matter *which*
        # replica undeploys or republishes a service.
        for onserve in self.onserves:
            onserve.soap_server.on_undeploy(cache.invalidate_service)
            onserve.on_republish(cache.invalidate_service)

    def _detach_cache_hooks(self, cache) -> None:
        for onserve in self.onserves:
            onserve.soap_server.remove_undeploy_listener(
                cache.invalidate_service)
            onserve.remove_republish_listener(cache.invalidate_service)


def _link_between(testbed: Testbed, a: str, b: str):
    for link in testbed.network.links():
        if {link.a, link.b} == {a, b}:
            return link
    return None


def deploy_fabric(testbed: Testbed,
                  config: Optional[OnServeConfig] = None,
                  dbmanager: Optional[DbManager] = None,
                  replicas: int = 1,
                  router: Optional[bool] = None,
                  spill_threshold: int = 4,
                  router_spec: Optional[HostSpec] = None,
                  self_healing: bool = False,
                  lease_ttl: float = 15.0,
                  lease_check_interval: float = 5.0,
                  fault_threshold: int = 2,
                  shed_limit: Optional[int] = None,
                  backpressure_threshold: Optional[int] = None) -> Process:
    """Deploy a replicated onServe fabric onto *testbed* (a sim process).

    The process-event's value is a :class:`FabricStack`.  With
    ``replicas=1`` and the router off (the default), the deployment is
    the *exact* ``deploy_onserve`` sequence — byte-identical timeline —
    with a disabled router attached for the golden guard to poke at.
    ``router=None`` enables the router automatically when ``replicas >
    1``.

    With ``self_healing=True`` (routed deployments) the stack arms the
    lease/failover plane after deployment: replicas heartbeat their
    membership leases into the shared store, the router watches for
    expiry, crashed replicas fail over with idempotent retry, and the
    ``shed_limit``/``backpressure_threshold`` overload ladder guards
    admission (DESIGN.md §13).
    """
    if replicas < 1:
        raise OnServeError("replicas must be >= 1")
    config = config or OnServeConfig()
    router_on = (replicas > 1) if router is None else bool(router)
    sim = testbed.sim

    if replicas == 1 and not router_on:
        if self_healing:
            raise OnServeError("self-healing needs the router enabled")
        def passthrough() -> Generator[Event, None, FabricStack]:
            stack = yield deploy_onserve(testbed, config, dbmanager)
            # Attached-but-disabled: constructed, ringed, *not* in the
            # fabric — it owns no endpoint and routes nothing.
            idle = RequestRouter(stack.appliance_host, stack.fabric,
                                 enabled=False,
                                 spill_threshold=spill_threshold)
            idle.add_replica(stack.appliance_host.name, stack.soap_server,
                             stack.onserve)
            stack.onserve.router = idle
            return FabricStack(
                testbed, stack.appliance, stack.fabric, stack.soap_server,
                stack.uddi, stack.dbmanager, stack.agent, stack.onserve,
                stack.user_clients, onserves=[stack.onserve], router=idle,
                store=stack.onserve.store)

        return sim.process(passthrough(), name="deploy-fabric")

    def op() -> Generator[Event, None, FabricStack]:
        network = testbed.network
        primary = testbed.appliance_host

        # Replica hosts clone the primary's hardware and connectivity:
        # each gets its own thin WAN uplink (the per-appliance 85 KB/s
        # pipe is exactly what sharding multiplies) and LAN links to the
        # users and the router.  Multi-hop through the primary would
        # funnel everything back through one uplink.
        uplink = _link_between(testbed, primary.name, "wan-core")
        lan = (_link_between(testbed, testbed.user_hosts[0].name,
                             primary.name)
               if testbed.user_hosts else None)
        lan_bw = lan.bandwidth if lan is not None else Gbps(1)
        lan_lat = lan.latency if lan is not None else 0.0005
        hosts: List[Host] = [primary]
        for i in range(2, replicas + 1):
            host = Host(sim, f"appliance{i:02d}", network, primary.spec)
            network.connect(host.name, "wan-core",
                            bandwidth=uplink.bandwidth,
                            latency=uplink.latency)
            for user in testbed.user_hosts:
                network.connect(user.name, host.name, bandwidth=lan_bw,
                                latency=lan_lat)
            hosts.append(host)
        router_host = Host(sim, "router", network,
                           router_spec or HostSpec(cores=4))
        for peer in hosts + testbed.user_hosts:
            network.connect(router_host.name, peer.name, bandwidth=lan_bw,
                            latency=lan_lat)

        # 1. One appliance image, deployed onto every replica host in
        #    parallel (on-demand deployment, fabric-style).
        builder = ImageBuilder()
        for package in ONSERVE_PACKAGES():
            builder.provide(package)
        image = builder.build("cyberaide-onserve", ["cyberaide-onserve"])
        deploys = [deploy_image(image, host) for host in hosts]
        results = yield sim.all_of(deploys)
        appliances: List[DeployedAppliance] = [results[p] for p in deploys]

        # 2. The shared tiers: endpoint fabric, UDDI, DB + state store.
        fabric = SoapFabric()
        uddi = UddiRegistry()
        db = dbmanager if dbmanager is not None else DbManager(
            primary,
            tier=DbTierConfig(mvcc=config.db_mvcc,
                              serialize=config.db_serialize,
                              chunk_bytes=config.db_chunk_bytes,
                              replicas=config.db_replicas,
                              replica_lag=config.db_replica_lag))
        store = ServiceStateStore(db.db, read_router=db.read_router)

        # 3. Grid identity, once — replicas share the onserve principal.
        testbed.new_grid_identity(config.grid_username,
                                  config.grid_passphrase)

        # 4. Per-replica software stack.
        from repro.core.management import ManagementService
        from repro.ws.uddi_service import UddiInquiryService
        onserves: List[OnServe] = []
        servers: List[SoapServer] = []
        for host in hosts:
            soap_server = SoapServer(host, fabric)
            agent = CyberaideAgent(
                host, testbed,
                AgentConfig(status_supported=config.status_supported,
                            session_reuse=config.datapath,
                            ftp_idle_timeout=config.ftp_session_idle))
            soap_server.deploy(agent.service_description(), agent.handler)
            onserve = OnServe(host, soap_server, fabric, uddi, db, agent,
                              config, store=store)
            inquiry = UddiInquiryService(uddi)
            soap_server.deploy(inquiry.service_description(),
                               inquiry.handler)
            management = ManagementService(onserve)
            soap_server.deploy(management.service_description(),
                               management.handler)
            onserves.append(onserve)
            servers.append(soap_server)

        # 5. The router endpoint over all replicas.
        request_router = RequestRouter(
            router_host, fabric, enabled=router_on,
            spill_threshold=spill_threshold,
            breaker_failure_threshold=config.breaker_failure_threshold,
            store=store if self_healing else None,
            self_healing=self_healing,
            lease_ttl=lease_ttl,
            lease_check_interval=lease_check_interval,
            fault_threshold=fault_threshold,
            shed_limit=shed_limit,
            backpressure_threshold=backpressure_threshold)
        for onserve, server in zip(onserves, servers):
            request_router.add_replica(onserve.replica, server, onserve)
            onserve.router = request_router

        user_clients = [WsClient(host, fabric)
                        for host in testbed.user_hosts]
        if dbmanager is not None:
            # Redeployment over recovered data: the primary rebuilds the
            # published surface; other replicas materialize on demand.
            yield onserves[0].restore_services()
        stack = FabricStack(
            testbed, appliances[0], fabric, servers[0], uddi, db,
            onserves[0].agent, onserves[0], user_clients,
            onserves=onserves, router=request_router, store=store)
        if self_healing:
            stack.start_self_healing()
        return stack

    return sim.process(op(), name="deploy-fabric")
