"""The watchdog from onServe's "tools" package.

"The 'tools' package contains tools like a watchdog class, that is used
to react correctly in some situations where a problem may occur. (For
example when a process takes too long to complete.)" (paper §VI).

Two tools live here:

* :meth:`Watchdog.guard` — run a process under a deadline; if it is
  still alive when the deadline passes, interrupt it and raise
  :class:`~repro.errors.WatchdogTimeout` in the waiter.
* :func:`poll_until` — the tentative-polling loop (§VIII.B workaround):
  run a poll action every ``interval`` until a predicate accepts its
  result or the deadline passes.
* :func:`await_mux` — the multiplexed variant: park on a
  :class:`~repro.grid.poller.PollMux` waiter under the same deadline
  discipline, unregistering on timeout so the mux stops polling for us.
* :func:`await_notification` — the push-path variant: park on a
  :class:`~repro.grid.notify.NotifyQueue` subscription under the same
  deadline discipline (the fallback ladder's top rung: notify →
  PollMux → ``poll_until``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from repro.errors import WatchdogTimeout
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.simkernel.process import Interrupt, Process

__all__ = ["Watchdog", "await_mux", "await_notification", "poll_until"]


def _abandon(waiter: Event) -> None:
    """Defuse an abandoned waiter so nothing can cross wires later.

    A waiter its owner stopped caring about (deadline passed) may still
    be triggered by machinery that held a reference to it — a batch
    failure racing the timeout, a late delivery.  Marking any eventual
    failure defused keeps the kernel from re-raising it at end of run,
    and the owner never confuses it with the *fresh* waiter a
    re-registration of the same key creates.
    """
    waiter.add_callback(lambda ev: ev.defused() if not ev._ok else None)


class Watchdog:
    """Deadline enforcement for simulation processes."""

    def __init__(self, sim: Simulator, timeout: float):
        if timeout <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.sim = sim
        self.timeout = timeout
        self.timeouts_fired = 0

    def guard(self, victim: Process, label: str = "") -> Process:
        """Wait on *victim* with a deadline.

        Returns a process whose value is the victim's value; raises
        :class:`WatchdogTimeout` (after interrupting the victim) if the
        deadline passes first.  A victim that dies of a *genuine*
        exception — before, at, or while handling the deadline — has
        that exception re-raised to the waiter; only the termination the
        watchdog itself caused (the :class:`Interrupt`) is absorbed.
        """

        def op() -> Generator[Event, None, Any]:
            deadline = self.sim.timeout(self.timeout)
            yield self.sim.any_of([victim, deadline])
            if victim.triggered:
                # Finished no later than the deadline's own instant.
                # Completed work beats a photo-finish timeout — and a
                # genuine error racing the deadline (any_of defuses it)
                # is re-raised, never masked as a mere timeout.
                if victim.ok:
                    return victim.value
                raise victim.value
            self.timeouts_fired += 1
            victim.interrupt("watchdog deadline")
            try:
                # Wait for the victim to actually terminate: its real
                # errors must reach the waiter, not be swallowed.
                return (yield victim)
            except Interrupt:
                pass  # our own interrupt ran its course
            raise WatchdogTimeout(
                f"{label or 'operation'} exceeded {self.timeout:.0f}s")

        return self.sim.process(op(), name=f"watchdog:{label}")


def poll_until(sim: Simulator,
               poll_factory: Callable[[], Process],
               accept: Callable[[Any], bool],
               interval: float,
               timeout: float,
               on_result: Optional[Callable[[Any], Optional[Process]]] = None
               ) -> Process:
    """Poll on a fixed interval until *accept* likes a result.

    Each round runs ``poll_factory()`` and passes the result to
    *accept*; between rounds it sleeps *interval*.  ``on_result`` (if
    given) runs after every poll — it may return a process to wait on
    (e.g. "write what we fetched to disk", producing the periodic
    disk-write peaks of Figures 6-7).  Raises
    :class:`WatchdogTimeout` when *timeout* elapses first.

    The value is ``(result, polls)``.
    """
    if interval <= 0:
        raise ValueError("poll interval must be positive")

    def op() -> Generator[Event, None, Tuple[Any, int]]:
        deadline = sim.now + timeout
        polls = 0
        while True:
            result = yield poll_factory()
            polls += 1
            if on_result is not None:
                side_effect = on_result(result)
                if side_effect is not None:
                    yield side_effect
            if accept(result):
                return result, polls
            if sim.now >= deadline:
                raise WatchdogTimeout(
                    f"tentative polling gave up after {polls} polls "
                    f"({timeout:.0f}s)")
            yield sim.timeout(interval)

    return sim.process(op(), name="poll-until")


def await_mux(sim: Simulator, mux, key: Any, token: Any,
              timeout: float) -> Process:
    """Wait on a PollMux for *key* under a deadline.

    Registers *key* with the multiplexer and parks until either the mux
    detects the job (value is the mux's ``(result, polls)``) or
    *timeout* elapses — in which case the key is unregistered (the mux
    must not keep polling for a waiter that gave up) and
    :class:`WatchdogTimeout` is raised, exactly like :func:`poll_until`.
    A batch failure propagated through the waiter is re-raised as-is.
    """
    if timeout <= 0:
        raise ValueError("await_mux timeout must be positive")

    def op() -> Generator[Event, None, Tuple[Any, int]]:
        waiter = mux.register(key, token)
        deadline = sim.timeout(timeout)
        yield sim.any_of([waiter, deadline])
        if waiter.triggered:
            if waiter.ok:
                return waiter.value
            raise waiter.value
        mux.unregister(key)
        _abandon(waiter)
        raise WatchdogTimeout(
            f"multiplexed polling for {key!r} gave up ({timeout:.0f}s)")

    return sim.process(op(), name=f"await-mux:{key}")


def await_notification(sim: Simulator, queue, site: str, job_id: str,
                       timeout: float) -> Process:
    """Wait for *job_id*'s terminal push notification under a deadline.

    Subscribes to the :class:`~repro.grid.notify.NotifyQueue` and parks
    until the terminal state-change message is delivered (value is the
    queue's payload dict) or *timeout* elapses — in which case the
    subscription is dropped, the abandoned waiter defused, and
    :class:`WatchdogTimeout` raised: the same deadline discipline as
    :func:`poll_until` and :func:`await_mux`, so the watchdog covers
    the push path too.  A subscriber arriving after the durable
    ``job_states`` row is already terminal completes immediately.
    """
    if timeout <= 0:
        raise ValueError("await_notification timeout must be positive")

    def op() -> Generator[Event, None, Any]:
        waiter = queue.subscribe(site, job_id)
        deadline = sim.timeout(timeout)
        yield sim.any_of([waiter, deadline])
        if waiter.triggered:
            if waiter.ok:
                return waiter.value
            raise waiter.value
        queue.unsubscribe(job_id, waiter)
        _abandon(waiter)
        raise WatchdogTimeout(
            f"notification for {job_id!r} never arrived ({timeout:.0f}s)")

    return sim.process(op(), name=f"await-notify:{job_id}")
