"""ServiceStateStore: service/deployment state externalized to the DB tier.

Before the appliance sharded, :class:`~repro.core.onserve.OnServe` kept
everything that describes a deployed service in process-local dicts —
``services``, ``runtimes``, staged-copy digests, the agent-session
lease.  That made the appliance stateful: only the process that
generated a service could serve it.  The fabric refactor moves the
*source of truth* into tables of the shared :mod:`repro.db` engine, so
that N stateless replicas over one DB tier all see the same state and a
service deployed through replica A is servable by replica B.

Tables
------
``service_records``
    One row per generated service: naming, public endpoint, UDDI keys,
    archive size, creation time, invocation count, and the generating
    replica (placement provenance; UDDI remains the *placement* source
    of truth clients resolve through).
``staged_copies``
    Which (site, path) on the grid holds which payload digest.  A copy
    staged by any replica is on the site for every replica, so this is
    naturally fabric-global state.
``agent_leases``
    The MyProxy-backed agent session per (replica, username).  Sessions
    are minted by each replica's own agent, so the lease key includes
    the replica — but the lease itself lives in the DB tier, surviving
    a replica process restart.
``replica_members``
    The self-healing plane's membership leases: one row per live
    replica, refreshed by its heartbeat, carrying the lease expiry, a
    process-incarnation epoch and an ``up``/``draining`` status.  The
    router declares a replica dead when its lease lapses.
``invocation_dedup``
    Idempotency records for crash failover: one row per completed
    mutating invocation, written in the same frame the result is
    observed, so a retried ``execute`` whose first attempt already ran
    returns the recorded result instead of double-submitting to GRAM.

Purity contract
---------------
Every store operation is pure bookkeeping: rows change, the WAL grows,
telemetry may observe — but **no simulation events are created and no
simulated time passes**.  Metadata rows are tiny and ride along the
disk/CPU charges the surrounding operations already pay (the same rule
``OnServe.record_invocation`` follows), which is what keeps the
``replicas=1`` fabric byte-identical to the pre-fabric appliance.

Cross-replica invalidation rides on the store: each replica subscribes
``on_removed`` / ``on_republished`` listeners, and the replica that
performs an undeploy or replacement upload fires them (minus itself) so
every other replica drops or refreshes its write-through cache — the
same contract the client caches follow one layer up.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.datastructures import GeneratedService
from repro.db.engine import Database
from repro.db.sql import execute_sql
from repro.db.table import Column
from repro.errors import RecordNotFound

__all__ = ["ServiceStateStore"]

SERVICE_TABLE = "service_records"
STAGED_TABLE = "staged_copies"
LEASE_TABLE = "agent_leases"
MEMBER_TABLE = "replica_members"
DEDUP_TABLE = "invocation_dedup"

_SERVICE_SCHEMA = [
    Column("service_name", "TEXT", primary_key=True),
    Column("executable_name", "TEXT", nullable=False),
    Column("endpoint", "TEXT", nullable=False),
    Column("wsdl_location", "TEXT"),
    Column("uddi_service_key", "TEXT"),
    Column("uddi_binding_key", "TEXT"),
    Column("archive_size", "INT", nullable=False),
    Column("created_at", "REAL", nullable=False),
    Column("invocations", "INT", nullable=False),
    Column("replica", "TEXT", nullable=False),
]

_STAGED_SCHEMA = [
    Column("key", "TEXT", primary_key=True),
    Column("site", "TEXT", nullable=False),
    Column("path", "TEXT", nullable=False),
    Column("digest", "TEXT", nullable=False),
    Column("replica", "TEXT", nullable=False),
]

_LEASE_SCHEMA = [
    Column("key", "TEXT", primary_key=True),
    Column("replica", "TEXT", nullable=False),
    Column("username", "TEXT", nullable=False),
    Column("session", "TEXT", nullable=False),
    Column("expires", "REAL", nullable=False),
]

_MEMBER_SCHEMA = [
    Column("replica", "TEXT", primary_key=True),
    Column("expires", "REAL", nullable=False),
    Column("epoch", "INT", nullable=False),
    Column("status", "TEXT", nullable=False),
]

_DEDUP_SCHEMA = [
    Column("key", "TEXT", primary_key=True),
    Column("replica", "TEXT", nullable=False),
    Column("result", "TEXT", nullable=False),
    Column("completed_at", "REAL", nullable=False),
]


class ServiceStateStore:
    """Replicated service state over the shared database engine."""

    def __init__(self, db: Database, read_router: Optional[Any] = None):
        self.db = db
        #: Optional :class:`~repro.db.replica.ReadRouter`: when present,
        #: read-only lookups go to a caught-up replica; every write —
        #: and the dedup check, which is correctness-critical — stays on
        #: the primary.
        self.read_router = read_router
        for table, schema in ((SERVICE_TABLE, _SERVICE_SCHEMA),
                              (STAGED_TABLE, _STAGED_SCHEMA),
                              (LEASE_TABLE, _LEASE_SCHEMA),
                              (MEMBER_TABLE, _MEMBER_SCHEMA),
                              (DEDUP_TABLE, _DEDUP_SCHEMA)):
            if table not in db.tables:
                db.create_table(table, schema)
        #: Cross-replica cache-invalidation listeners, keyed by replica.
        self._removed: Dict[str, Callable[[str], None]] = {}
        self._republished: Dict[str, Callable[[str], None]] = {}
        #: Shared monotonic counters (lazily seeded from history so an
        #: appliance redeployed over recovered data resumes numbering).
        self._invocation_counter: Optional[int] = None
        self._tag_seq: Optional[int] = None
        #: Monotonic membership-epoch source (process incarnations).
        self._member_epoch = 0
        #: Invocations that completed twice (must stay 0: each one is a
        #: request the idempotency layer failed to deduplicate).
        self.dedup_duplicates = 0

    def _read(self, table: str) -> Database:
        """The database a read-only op on *table* should use.

        With a router attached this may be a WAL-shipping replica — but
        only when the bounded-staleness guard proves the replica has
        applied every committed write to *table*, so read-modify-write
        callers observe exactly what the primary holds.
        """
        if self.read_router is not None:
            return self.read_router.reader(table)
        return self.db

    # -- replica subscription (cache invalidation fan-out) -------------------

    def subscribe(self, replica: str,
                  on_removed: Callable[[str], None],
                  on_republished: Callable[[str], None]) -> None:
        """Register *replica*'s invalidation hooks.

        ``on_removed(service_name)`` fires when another replica removes
        a record (undeploy); ``on_republished(service_name)`` when
        another replica refreshes one in place (replacement upload).
        """
        self._removed[replica] = on_removed
        self._republished[replica] = on_republished

    def unsubscribe(self, replica: str) -> None:
        self._removed.pop(replica, None)
        self._republished.pop(replica, None)

    def _fan_out(self, listeners: Dict[str, Callable[[str], None]],
                 service_name: str, origin: Optional[str]) -> None:
        for replica in sorted(listeners):
            if replica != origin:
                listeners[replica](service_name)

    # -- service records ------------------------------------------------------

    def put_record(self, service: GeneratedService, replica: str) -> None:
        """Insert or replace the record for *service* (write-through)."""
        with self.db.transaction():
            self.db.delete_where(
                SERVICE_TABLE,
                lambda r: r["service_name"] == service.service_name)
            self.db.insert(SERVICE_TABLE, [
                service.service_name, service.executable_name,
                service.endpoint, service.wsdl_location,
                service.uddi_service_key, service.uddi_binding_key,
                service.archive_size, service.created_at,
                service.invocations, replica,
            ])

    def get_record(self, service_name: str) -> Optional[Dict[str, Any]]:
        try:
            return self._read(SERVICE_TABLE).get_by_pk(SERVICE_TABLE, service_name)
        except RecordNotFound:
            return None

    def remove_record(self, service_name: str,
                      origin: Optional[str] = None
                      ) -> Optional[Dict[str, Any]]:
        """Delete a record; returns the old row (None if absent).

        When a row was actually removed, every *other* replica's
        ``on_removed`` hook fires so write-through caches drop the
        service everywhere.
        """
        row = self.get_record(service_name)
        if row is None:
            return None
        self.db.delete_where(
            SERVICE_TABLE, lambda r: r["service_name"] == service_name)
        self._fan_out(self._removed, service_name, origin)
        return row

    def record_republished(self, service_name: str,
                           origin: Optional[str] = None) -> None:
        """Tell every other replica a service was refreshed in place."""
        self._fan_out(self._republished, service_name, origin)

    def all_records(self) -> List[Dict[str, Any]]:
        rows = self._read(SERVICE_TABLE).select(SERVICE_TABLE)
        return sorted(rows, key=lambda r: r["service_name"])

    def record_count(self) -> int:
        return self._read(SERVICE_TABLE).count(SERVICE_TABLE)

    def bump_invocations(self, service_name: str) -> int:
        row = self.get_record(service_name)
        if row is None:
            return 0
        count = row["invocations"] + 1
        self.db.update_where(SERVICE_TABLE, {"invocations": count},
                             lambda r: r["service_name"] == service_name)
        return count

    @staticmethod
    def rehydrate(row: Dict[str, Any]) -> GeneratedService:
        """A :class:`GeneratedService` view of a store row."""
        service = GeneratedService(
            service_name=row["service_name"],
            executable_name=row["executable_name"],
            endpoint=row["endpoint"],
            wsdl_location=row["wsdl_location"],
            uddi_service_key=row["uddi_service_key"],
            uddi_binding_key=row["uddi_binding_key"],
            archive_size=row["archive_size"],
            created_at=row["created_at"])
        service.invocations = row["invocations"]
        return service

    # -- staged grid copies ---------------------------------------------------

    @staticmethod
    def _staged_key(site: str, path: str) -> str:
        return f"{site}|{path}"

    def staged_digest(self, site: str, path: str) -> Optional[str]:
        try:
            return self._read(STAGED_TABLE).get_by_pk(
                STAGED_TABLE, self._staged_key(site, path))["digest"]
        except RecordNotFound:
            return None

    def mark_staged(self, site: str, path: str, digest: str,
                    replica: str) -> None:
        key = self._staged_key(site, path)
        with self.db.transaction():
            self.db.delete_where(STAGED_TABLE, lambda r: r["key"] == key)
            self.db.insert(STAGED_TABLE, [key, site, path, digest, replica])

    def evict_staged(self, path: str) -> int:
        """Drop every site's copy of exactly *path* (replacement upload)."""
        return self.db.delete_where(STAGED_TABLE,
                                    lambda r: r["path"] == path)

    def staged_copies(self) -> List[Tuple[str, str, str]]:
        """(site, path, digest) rows, ordered (test/inspection hook)."""
        rows = self._read(STAGED_TABLE).select(STAGED_TABLE)
        return sorted((r["site"], r["path"], r["digest"]) for r in rows)

    # -- agent-session leases -------------------------------------------------

    @staticmethod
    def _lease_key(replica: str, username: str) -> str:
        return f"{replica}|{username}"

    def get_lease(self, replica: str, username: str
                  ) -> Optional[Tuple[str, float]]:
        """(session, expires) for the replica's agent user, if leased."""
        try:
            row = self._read(LEASE_TABLE).get_by_pk(
                LEASE_TABLE, self._lease_key(replica, username))
        except RecordNotFound:
            return None
        return row["session"], row["expires"]

    def put_lease(self, replica: str, username: str, session: str,
                  expires: float) -> None:
        key = self._lease_key(replica, username)
        with self.db.transaction():
            self.db.delete_where(LEASE_TABLE, lambda r: r["key"] == key)
            self.db.insert(LEASE_TABLE,
                           [key, replica, username, session, expires])

    def drop_lease(self, replica: str, username: str,
                   session: Optional[str] = None) -> None:
        """Revoke the lease (matching *session* if given, else any)."""
        key = self._lease_key(replica, username)
        self.db.delete_where(
            LEASE_TABLE,
            lambda r: r["key"] == key and (session is None
                                           or r["session"] == session))

    # -- replica membership leases (self-healing plane) -----------------------

    def renew_member(self, replica: str, expires: float,
                     status: str = "up") -> None:
        """Write/refresh *replica*'s membership lease (heartbeat).

        ``epoch`` counts process incarnations: it bumps whenever a
        replica (re)appears after its row was dropped, so a restarted
        replica is distinguishable from one that never died.
        """
        row = self.member(replica)
        epoch = row["epoch"] if row is not None else self._next_epoch()
        with self.db.transaction():
            self.db.delete_where(MEMBER_TABLE,
                                 lambda r: r["replica"] == replica)
            self.db.insert(MEMBER_TABLE, [replica, expires, epoch, status])

    def _next_epoch(self) -> int:
        self._member_epoch += 1
        return self._member_epoch

    def member(self, replica: str) -> Optional[Dict[str, Any]]:
        try:
            return self._read(MEMBER_TABLE).get_by_pk(MEMBER_TABLE, replica)
        except RecordNotFound:
            return None

    def members(self) -> List[Dict[str, Any]]:
        rows = self._read(MEMBER_TABLE).select(MEMBER_TABLE)
        return sorted(rows, key=lambda r: r["replica"])

    def expired_members(self, now: float) -> List[str]:
        """Replicas whose lease has lapsed at *now* (sorted)."""
        return sorted(r["replica"]
                      for r in self._read(MEMBER_TABLE).select(MEMBER_TABLE)
                      if r["expires"] <= now)

    def mark_draining(self, replica: str) -> None:
        self.db.update_where(MEMBER_TABLE, {"status": "draining"},
                             lambda r: r["replica"] == replica)

    def drop_member(self, replica: str) -> None:
        self.db.delete_where(MEMBER_TABLE,
                             lambda r: r["replica"] == replica)

    # -- invocation dedup (idempotent crash-failover retries) -----------------

    def dedup_result(self, key: str) -> Optional[str]:
        """The recorded result for idempotency key *key*, if completed."""
        try:
            return self.db.get_by_pk(DEDUP_TABLE, key)["result"]
        except RecordNotFound:
            return None

    def record_dedup(self, key: str, replica: str, result: str,
                     now: float) -> bool:
        """Record one invocation's completion; ``False`` on a duplicate.

        Written in the same frame that observes the replica-side result,
        so there is no yield point between "the work happened" and "the
        record exists".  A ``False`` return means some other attempt
        already completed this key — the caller double-executed, which
        the chaos gate counts via :attr:`dedup_duplicates`.
        """
        if self.dedup_result(key) is not None:
            self.dedup_duplicates += 1
            return False
        self.db.insert(DEDUP_TABLE, [key, replica, str(result), now])
        return True

    def dedup_count(self) -> int:
        return self.db.count(DEDUP_TABLE)

    # -- shared counters ------------------------------------------------------

    def seed_counters(self) -> None:
        """Seed both counters from recorded history, exactly once.

        Called by each replica's init; only the first call (across the
        fabric) reads MAX(id), so later replicas cannot rewind the
        sequence below ids already handed out this run.
        """
        if self._invocation_counter is None:
            self._invocation_counter = self._seed_counter()
        if self._tag_seq is None:
            self._tag_seq = self._invocation_counter

    def _seed_counter(self) -> int:
        if "invocations" not in self.db.tables:
            return 0
        row = execute_sql(self.db, "SELECT MAX(id) FROM invocations")[0]
        return row["max(id)"] or 0

    def next_invocation_id(self) -> int:
        """Fabric-unique invocation row id (resumes past history)."""
        if self._invocation_counter is None:
            self._invocation_counter = self._seed_counter()
        self._invocation_counter += 1
        return self._invocation_counter

    def next_tag_seq(self) -> int:
        """Fabric-unique job-tag sequence number.

        Job tags name stdout files on the grid: a tag reused by any
        replica (or after a restart) would alias an old output file and
        fool the outputReady probe, so the sequence is shared."""
        if self._tag_seq is None:
            self._tag_seq = self._seed_counter()
        self._tag_seq += 1
        return self._tag_seq

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<ServiceStateStore services={self.record_count()} "
                f"staged={self.db.count(STAGED_TABLE)} "
                f"replicas={sorted(self._removed)}>")
