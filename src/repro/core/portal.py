"""The extended Cyberaide portal: the upload + generate flow (§VII.A).

The portal is the JSP front end behind Figure 3's "Upload file and
generate Web Service" dialog.  :meth:`CyberaidePortal.upload_and_generate`
models one form submission end to end:

1. the file travels over the user's (fast LAN) link to the portal host —
   Figure 8's network-input peak,
2. Tomcat/JSP handling burns CPU ("because of tomcat handling the
   request and loading the java-classes"),
3. the file is written to a *temporary location* (first disk-write
   peak), and then
4. handed to onServe, whose database store writes it *again* (second
   disk-write peak) — the double-write flaw §VIII.D.3 calls "not optimal
   and may be improved".  ``OnServeConfig.double_write=False`` is the
   improved variant.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.core.context import RequestContext, span
from repro.core.datastructures import GeneratedService
from repro.errors import UploadError
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.onserve import OnServe

__all__ = ["CyberaidePortal"]


class CyberaidePortal:
    """The web portal component on the appliance host."""

    def __init__(self, onserve: "OnServe"):
        self.onserve = onserve
        self.host = onserve.host
        self.sim = onserve.sim
        self.uploads_handled = 0
        #: Contexts of handled uploads, newest last (trace inspection).
        self.recent_requests: list = []

    def upload_and_generate(self, user_host: Host, filename: str,
                            data: bytes, description: str = "",
                            params_spec: str = "",
                            ctx: Optional[RequestContext] = None) -> Process:
        """One "Upload file and generate WebService" form submission.

        The process-event's value is the :class:`GeneratedService`.
        The portal is a request-fabric entry point: it mints a
        :class:`RequestContext` (unless the caller brought one) and
        threads it through the onServe layers below.
        """
        config = self.onserve.config
        if ctx is None:
            ctx = RequestContext.create(self.sim, principal=user_host.name)
        self.recent_requests.append(ctx)

        def op() -> Generator[Event, None, GeneratedService]:
            if not filename:
                raise UploadError("the form requires a file name")
            with span(ctx, "portal:upload", file=filename):
                # 1. Reception: multipart form over the LAN, buffered
                #    in RAM.
                with span(ctx, "portal:receive"):
                    yield user_host.send(
                        self.host, len(data) + config.form_overhead_bytes,
                        label=f"portal-upload:{filename}")
                self.host.allocate_memory(len(data))
                try:
                    # 2. Tomcat + JSP handling.
                    with span(ctx, "portal:handle"):
                        yield self.host.compute(
                            config.portal_cpu_fixed
                            + config.portal_cpu_per_mb * len(data) / MB(1),
                            tag="portal")
                        # 3. Temporary storage (first of the two writes).
                        if config.double_write:
                            yield self.host.disk_write(len(data))
                    # 4. "a parameter string is used to call the
                    #    Cyberaide onServe function" — storage, build,
                    #    publish.
                    service = yield self.onserve.generate_service(
                        filename, data, description=description,
                        params_spec=params_spec, uploaded_by=user_host.name,
                        ctx=ctx)
                finally:
                    self.host.release_memory(len(data))
            self.uploads_handled += 1
            return service

        return self.sim.process(op(), name=f"portal:{filename}")
