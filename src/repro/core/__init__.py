"""Cyberaide onServe: the paper's contribution.

This package implements the SaaS-to-JSE translation middleware:

* :mod:`~repro.core.datastructures` — executable and generated-service
  records (the paper's "datastructures" package),
* :mod:`~repro.core.watchdog` — the "tools" package watchdog (timeouts,
  tentative polling),
* :mod:`~repro.core.service_builder` — the ant-build equivalent that
  turns an uploaded executable into a deployable service archive,
* :mod:`~repro.core.grid_service` — the GridService template runtime:
  what the *generated* web service does when its ``execute`` operation
  is invoked (§VII.B: retrieve, authenticate, upload, describe, submit,
  poll, return),
* :mod:`~repro.core.onserve` — the middleware facade + full-stack
  deployment onto a testbed,
* :mod:`~repro.core.portal` — the extended Cyberaide portal upload flow
  (§VII.A, with its faithful double disk write),
* :mod:`~repro.core.invocation` — the *client-side* workflow: discover
  in UDDI, fetch WSDL, generate a stub, invoke,
* :mod:`~repro.core.context` — the :class:`RequestContext` carrier of
  the unified request fabric (request id, principal, deadline, trace).

Package-level names resolve lazily (PEP 562): :mod:`repro.core.context`
sits *below* the web-service stack (``repro.ws`` imports it), while the
rest of this package sits *above* it, so an eager ``__init__`` would
close an import cycle.
"""

from typing import Any

_EXPORTS = {
    "ExecutableRecord": "repro.core.datastructures",
    "GeneratedService": "repro.core.datastructures",
    "RequestContext": "repro.core.context",
    "TraceSpan": "repro.core.context",
    "Watchdog": "repro.core.watchdog",
    "ServiceBuilder": "repro.core.service_builder",
    "OnServe": "repro.core.onserve",
    "OnServeConfig": "repro.core.onserve",
    "OnServeStack": "repro.core.onserve",
    "deploy_onserve": "repro.core.onserve",
    "CyberaidePortal": "repro.core.portal",
    "discover_and_invoke": "repro.core.invocation",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
