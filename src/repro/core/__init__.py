"""Cyberaide onServe: the paper's contribution.

This package implements the SaaS-to-JSE translation middleware:

* :mod:`~repro.core.datastructures` — executable and generated-service
  records (the paper's "datastructures" package),
* :mod:`~repro.core.watchdog` — the "tools" package watchdog (timeouts,
  tentative polling),
* :mod:`~repro.core.service_builder` — the ant-build equivalent that
  turns an uploaded executable into a deployable service archive,
* :mod:`~repro.core.grid_service` — the GridService template runtime:
  what the *generated* web service does when its ``execute`` operation
  is invoked (§VII.B: retrieve, authenticate, upload, describe, submit,
  poll, return),
* :mod:`~repro.core.onserve` — the middleware facade + full-stack
  deployment onto a testbed,
* :mod:`~repro.core.portal` — the extended Cyberaide portal upload flow
  (§VII.A, with its faithful double disk write),
* :mod:`~repro.core.invocation` — the *client-side* workflow: discover
  in UDDI, fetch WSDL, generate a stub, invoke.
"""

from repro.core.datastructures import ExecutableRecord, GeneratedService
from repro.core.invocation import discover_and_invoke
from repro.core.onserve import OnServe, OnServeConfig, OnServeStack, deploy_onserve
from repro.core.portal import CyberaidePortal
from repro.core.service_builder import ServiceBuilder
from repro.core.watchdog import Watchdog

__all__ = [
    "ExecutableRecord",
    "GeneratedService",
    "Watchdog",
    "ServiceBuilder",
    "OnServe",
    "OnServeConfig",
    "OnServeStack",
    "deploy_onserve",
    "CyberaidePortal",
    "discover_and_invoke",
]
