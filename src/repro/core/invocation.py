"""The client-side invocation workflow (§VII.B, steps 1-2).

"First of all, the user examines the jUDDI registry to find the
appropriate service.  Once the service has been discovered, a Web
service client may be created by using the corresponding WSDL document."

:func:`discover_and_invoke` performs exactly that: a *real* SOAP call to
the registry's inquiry service, WSDL fetch, ``wsimport``-style stub
generation, and the ``execute`` call — all from the user's host, with
every message travelling the simulated network.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING, Tuple

from repro.core.context import RequestContext, span
from repro.errors import ServiceNotFound, SoapFault
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.ws.client import WsClient, generate_stub
from repro.ws.uddi_service import parse_binding_lines, parse_service_lines

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.onserve import OnServeStack

__all__ = ["discover_service", "discover_and_invoke"]


def discover_service(stack: "OnServeStack", client: WsClient,
                     name_pattern: str,
                     ctx: Optional[RequestContext] = None) -> Process:
    """UDDI inquiry from the client's host (over real SOAP).

    The process-event's value is ``(service_name, endpoint,
    wsdl_location)`` of the best (first) match.  A warm
    :class:`~repro.ws.cache.ClientCache` on the client answers without
    touching the network at all.
    """
    inquiry_endpoint = stack.inquiry_endpoint()

    def op() -> Generator[Event, None, Tuple[str, str, str]]:
        if client.cache is not None:
            cached = client.cache.lookup_discovery(name_pattern)
            if cached is not None:
                return cached
        with span(ctx, "uddi:discover", pattern=name_pattern):
            listing = yield client.call(inquiry_endpoint, "findService",
                                        ctx=ctx, pattern=name_pattern)
            hits = parse_service_lines(listing)
            if not hits:
                raise ServiceNotFound(
                    f"UDDI has no service matching {name_pattern!r}")
            service = hits[0]
            raw = yield client.call(inquiry_endpoint, "getBindings",
                                    ctx=ctx, serviceKey=service["key"])
            bindings = parse_binding_lines(raw)
            if not bindings:
                raise ServiceNotFound(
                    f"UDDI service {service['name']!r} has no binding")
        triple = (service["name"], bindings[0]["access_point"],
                  bindings[0]["wsdl_location"])
        if client.cache is not None:
            client.cache.store_discovery(name_pattern, triple)
        return triple

    return client.sim.process(op(), name=f"discover:{name_pattern}")


def discover_and_invoke(stack: "OnServeStack", client: WsClient,
                        name_pattern: str,
                        ctx: Optional[RequestContext] = None,
                        **params: Any) -> Process:
    """The full §VII.B client workflow; the value is execute()'s result.

    A request-fabric entry point: mints a :class:`RequestContext` for
    the whole discover → wsimport → execute workflow unless the caller
    brought one, so the resulting trace covers every hop down to GRAM.
    """
    if ctx is None:
        ctx = RequestContext.create(client.sim,
                                    principal=client.host.name)

    def op() -> Generator[Event, None, str]:
        # One re-resolve on replica failover: a ReplicaDown fault means
        # the bound endpoint named a dead replica, so the cached
        # discovery/WSDL entries for it are evicted and the whole
        # resolve→bind→execute sequence re-runs once against whatever
        # the registry/router answers now.  Any other fault — and a
        # second ReplicaDown — propagates unchanged, so the fault-free
        # path and every pre-existing failure mode are untouched.
        rebound = False
        while True:
            _name, endpoint, _wsdl_loc = yield discover_service(
                stack, client, name_pattern, ctx=ctx)
            cache = client.cache
            document = (cache.lookup_wsdl(endpoint)
                        if cache is not None else None)
            if document is None:
                document = yield client.fetch_wsdl(endpoint, ctx=ctx)
                if cache is not None:
                    cache.store_wsdl(endpoint, document)
            stub_class = (cache.stub_class(document) if cache is not None
                          else generate_stub(document))
            stub = stub_class(client)
            try:
                result = yield stub.execute(ctx=ctx, **params)
            except SoapFault as fault:
                if fault.root_cause != "ReplicaDown" or rebound:
                    raise
                rebound = True
                if cache is not None:
                    cache.evict_endpoint(endpoint)
                continue
            return result

    return client.sim.process(op(), name=f"invoke:{name_pattern}")
