"""The OnServe middleware facade and full-stack deployment.

:class:`OnServe` ties the appliance components together: the database
(executable storage), the service builder, the SOAP server, the UDDI
registry and the Cyberaide agent.  Its :meth:`~OnServe.generate_service`
implements §VII.A's "further treatment" (storage, service build,
publishing); the generated services themselves run
:class:`~repro.core.grid_service.GridServiceRuntime`.

:func:`deploy_onserve` is the on-demand story of §V: build the appliance
image, deploy it onto the testbed's appliance host, boot the packages,
wire up every component, enrol the grid identity — and hand back a
ready-to-use :class:`OnServeStack`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generator, List, Optional

from repro.appliance.deploy import DeployedAppliance, deploy_image
from repro.appliance.image import ImageBuilder, ONSERVE_PACKAGES
from repro.core.coalesce import SingleFlight
from repro.core.context import RequestContext, span
from repro.core.datastructures import (
    ExecutableRecord, GeneratedService, parse_params_spec, service_name_for,
)
from repro.core.grid_service import GridServiceRuntime
from repro.core.registry import ServiceStateStore
from repro.core.service_builder import ServiceBuilder
from repro.cyberaide.agent import AgentConfig, CyberaideAgent
from repro.cyberaide.jobspec import staged_path_for
from repro.db.dbmanager import DbManager, DbTierConfig
from repro.errors import OnServeError, ServiceNotFound, UddiError, UploadError
from repro.grid.testbed import Testbed
from repro.hardware.host import Host
from repro.resilience.breaker import BreakerBoard
from repro.resilience.retry import RetryPolicy, retry_call
from repro.simkernel.events import Event
from repro.simkernel.process import Process
from repro.telemetry.events import bus
from repro.ws.client import WsClient, generate_stub
from repro.ws.server import SoapFabric, SoapServer
from repro.ws.uddi import UddiRegistry

__all__ = ["OnServeConfig", "OnServe", "OnServeStack", "deploy_onserve"]


class OnServeConfig:
    """All tunables of the middleware (ablation flags included)."""

    def __init__(self,
                 grid_username: str = "onserve",
                 grid_passphrase: str = "appliance-secret",
                 poll_interval: float = 9.0,
                 watchdog_timeout: float = 6 * 3600.0,
                 default_queue: str = "normal",
                 default_walltime: int = 3600,
                 default_count: int = 1,
                 submit_cpu: float = 0.25,
                 session_renewal: float = 3600.0,
                 portal_cpu_fixed: float = 0.15,
                 portal_cpu_per_mb: float = 0.01,
                 form_overhead_bytes: int = 2048,
                 double_write: bool = True,
                 upload_cache: bool = False,
                 status_supported: bool = False,
                 site_policy: str = "best",
                 retry_max_attempts: int = 3,
                 retry_base_delay: float = 2.0,
                 retry_multiplier: float = 2.0,
                 retry_max_delay: float = 30.0,
                 retry_jitter: float = 0.0,
                 breaker_failure_threshold: int = 3,
                 breaker_reset_timeout: float = 900.0,
                 failover_sites: int = 2,
                 coalesce: bool = False,
                 datapath: bool = False,
                 poll_min_interval: float = 2.0,
                 poll_max_interval: Optional[float] = None,
                 poll_backoff: float = 2.0,
                 ftp_session_idle: float = 600.0,
                 notify: bool = False,
                 notify_sites: tuple = ("*",),
                 notify_propagation: float = 0.5,
                 db_mvcc: bool = False,
                 db_serialize: bool = False,
                 db_chunk_bytes: int = 0,
                 db_replicas: int = 0,
                 db_replica_lag: float = 0.5):
        if site_policy not in ("best", "round_robin", "random"):
            raise OnServeError(f"unknown site policy {site_policy!r}")
        if failover_sites < 0:
            raise OnServeError("failover_sites must be >= 0")
        if poll_min_interval <= 0:
            raise OnServeError("poll_min_interval must be positive")
        if poll_backoff < 1.0:
            raise OnServeError("poll_backoff must be >= 1.0")
        if ftp_session_idle <= 0:
            raise OnServeError("ftp_session_idle must be positive")
        if notify_propagation <= 0:
            raise OnServeError("notify_propagation must be positive")
        self.grid_username = grid_username
        self.grid_passphrase = grid_passphrase
        #: Tentative-poll period (the "relative constant interval").
        self.poll_interval = poll_interval
        self.watchdog_timeout = watchdog_timeout
        self.default_queue = default_queue
        self.default_walltime = default_walltime
        self.default_count = default_count
        #: CPU for RSL generation + submission bookkeeping (2nd CPU peak).
        self.submit_cpu = submit_cpu
        self.session_renewal = session_renewal
        self.portal_cpu_fixed = portal_cpu_fixed
        self.portal_cpu_per_mb = portal_cpu_per_mb
        self.form_overhead_bytes = form_overhead_bytes
        #: Faithful flaw: uploads hit the disk twice (temp, then DB).
        #: False is the "may be improved" ablation (§VIII.D.3).
        self.double_write = double_write
        #: Faithful flaw: executables re-upload on every invocation.
        #: True caches staged files per site (ablation).
        self.upload_cache = upload_cache
        #: Faithful flaw: agent job status unavailable -> tentative
        #: output polling.  True is the clean-status ablation.
        self.status_supported = status_supported
        #: Resource selection: "best" (most free cores, the MDS
        #: ranking), "round_robin", or "random" (seeded).
        self.site_policy = site_policy
        #: Resilience: retry policy for transient agent/grid/db calls.
        self.retry_max_attempts = retry_max_attempts
        self.retry_base_delay = retry_base_delay
        self.retry_multiplier = retry_multiplier
        self.retry_max_delay = retry_max_delay
        self.retry_jitter = retry_jitter
        #: Resilience: per-site circuit breakers.
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        #: Resilience: how many *additional* sites one invocation may
        #: fail over to after its first choice (0 disables failover).
        self.failover_sites = failover_sites
        #: Hot-path optimisation: single-flight coalescing of concurrent
        #: invocations' shared work — agent logon, DB executable fetch,
        #: GridFTP staging per (site, path).  Off by default: the
        #: faithful timeline (and every golden figure) runs without it.
        self.coalesce = coalesce
        #: Grid data-path batching: GridFTP session reuse on the agent
        #: plus one per-site adaptive PollMux driving batched tentative
        #: polls instead of N fixed-interval per-job loops.  Off by
        #: default: the goldens pin the pay-per-operation timeline.
        self.datapath = datapath
        #: Adaptive poll interval: floor, cap (defaults to the faithful
        #: fixed interval) and exponential backoff factor.
        self.poll_min_interval = poll_min_interval
        self.poll_max_interval = (poll_max_interval
                                  if poll_max_interval is not None
                                  else poll_interval)
        if self.poll_max_interval < poll_min_interval:
            raise OnServeError(
                "poll_max_interval must be >= poll_min_interval")
        self.poll_backoff = poll_backoff
        #: GridFTP control-channel idle timeout (session reuse).
        self.ftp_session_idle = ftp_session_idle
        #: Push path (ROADMAP item 1): attach the durable notification
        #: queue and mark the listed sites' gatekeepers capable ("*"
        #: means every site).  Off by default: the goldens pin the
        #: poll-based timeline, and even when the queue is attached a
        #: site absent from ``notify_sites`` keeps using the ladder's
        #: lower rungs (PollMux / poll_until).
        self.notify = notify
        self.notify_sites = tuple(notify_sites)
        #: Event-propagation delay: gatekeeper -> appliance trip of one
        #: state-change message — the whole detection lag of the push
        #: path.
        self.notify_propagation = notify_propagation
        if db_chunk_bytes < 0:
            raise OnServeError("db_chunk_bytes must be >= 0")
        if db_replicas < 0:
            raise OnServeError("db_replicas must be >= 0")
        if db_replica_lag < 0:
            raise OnServeError("db_replica_lag must be >= 0")
        #: DB tier scale-out (ROADMAP item 2), all off by default so the
        #: goldens pin the single-connection whole-BLOB timeline.
        #: MVCC snapshot reads: executable fetches read the last
        #: committed row through a snapshot handle instead of blocking
        #: behind an in-flight store's open transaction.
        self.db_mvcc = db_mvcc
        #: Model DB connection contention: a store holds the FIFO
        #: connection lock (and its transaction) across its CPU/disk
        #: time; non-MVCC reads queue behind it.
        self.db_serialize = db_serialize
        #: Chunked BLOB streaming: fetch payloads in chunks of this many
        #: bytes (0 = whole-BLOB), bounding resident payload memory to
        #: two chunks per fetch.
        self.db_chunk_bytes = db_chunk_bytes
        #: WAL-shipping read replicas for discovery/WSDL/lease/notify
        #: replay reads, with a bounded-staleness read router.
        self.db_replicas = db_replicas
        #: Modeled WAL ship+apply lag per replica, seconds.
        self.db_replica_lag = db_replica_lag


class OnServe:
    """The middleware running inside the appliance."""

    BUSINESS_NAME = "Cyberaide onServe"

    def __init__(self, host: Host, soap_server: SoapServer,
                 fabric: SoapFabric, uddi: UddiRegistry,
                 dbmanager: DbManager, agent: CyberaideAgent,
                 config: Optional[OnServeConfig] = None,
                 store: Optional[ServiceStateStore] = None):
        self.host = host
        self.sim = host.sim
        self.soap_server = soap_server
        self.fabric = fabric
        self.uddi = uddi
        self.dbmanager = dbmanager
        self.agent = agent
        self.config = config or OnServeConfig()
        self.builder = ServiceBuilder(host, soap_server)
        #: This replica's identity in the fabric (the host name).
        self.replica = host.name
        #: The replicated source of truth for service/deployment state.
        #: A lone appliance creates its own store over its own database;
        #: ``deploy_fabric`` passes one shared store to every replica.
        self.store = store if store is not None \
            else ServiceStateStore(dbmanager.db,
                                   read_router=dbmanager.read_router)
        #: Set by ``deploy_fabric`` when a request router fronts this
        #: replica; generated services then publish the router endpoint.
        self.router = None
        #: Observability plane: middleware milestones become events.
        self.bus = bus(self.sim)
        #: Resilience plane: one shared retry policy + per-site breakers.
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay=self.config.retry_base_delay,
            multiplier=self.config.retry_multiplier,
            max_delay=self.config.retry_max_delay,
            jitter=self.config.retry_jitter)
        self.breakers = BreakerBoard(
            self.sim,
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout)
        # The wsimport-generated client for the agent: onServe talks to
        # its own agent through the web-service interface (paper §VI,
        # "client" package), over the loopback path.
        wsdl = soap_server.wsdl(CyberaideAgent.SERVICE_NAME)
        self.agent_stub = generate_stub(wsdl)(WsClient(host, fabric))
        # UDDI anchors.  Replicas share one registry: the first replica
        # publishes the business entity and tModel, later ones reuse
        # them instead of minting duplicates.
        existing_biz = uddi.find_business(self.BUSINESS_NAME)
        self.business = existing_biz[0] if existing_biz else \
            uddi.save_business(self.BUSINESS_NAME, "SaaS on production grids")
        existing_tm = uddi.find_tmodel("onserve:grid-execution")
        self.tmodel = existing_tm[0] if existing_tm else uddi.save_tmodel(
            "onserve:grid-execution",
            overview_url=f"soap://{host.name}/onserve-docs")
        #: Write-through cache over the store: the services/runtimes this
        #: replica has locally materialized.  The store row is the truth;
        #: these dicts only memoize the live objects built from it.
        self.services: Dict[str, GeneratedService] = {}
        self.runtimes: Dict[str, GridServiceRuntime] = {}
        # Teardown hangs off the container's undeploy hook so UDDI and
        # the registries stay consistent no matter which path undeploys
        # a service (previously a direct SoapServer.undeploy left stale
        # bindingTemplates behind).
        soap_server.on_undeploy(self._on_soap_undeploy)
        # Cross-replica invalidation: another replica's undeploy or
        # replacement upload must drop this replica's cached objects.
        self.store.subscribe(self.replica, self._on_store_removed,
                             self._on_store_republished)
        #: Guard flag: the service currently being dropped *because* of
        #: a store fan-out (so the local undeploy hook does not recurse
        #: back into the store).
        self._cascading: Optional[str] = None
        #: In-flight materializations, one pending event per service
        #: (prevents two concurrent requests double-building a service).
        self._materializing: Dict[str, Event] = {}
        #: Listeners told when a replacement upload republishes a
        #: service in place (client caches hang invalidation off this).
        self._republish_listeners: List = []
        #: Single-flight coalescing of concurrent invocations' shared
        #: work (enabled by ``config.coalesce``; a no-op pass-through
        #: otherwise, so the default timeline is untouched).  Flight
        #: keys include ``self.replica`` so two replicas sharing one
        #: DbManager can never alias each other's flights.
        self.flights = SingleFlight(self.sim, enabled=self.config.coalesce)
        #: One adaptive batch-polling multiplexer per site (datapath
        #: mode); created lazily, schedules nothing while unused.
        self._poll_muxes: Dict[str, "PollMux"] = {}
        #: The durable job-state notification queue (push path), wired
        #: by ``deploy_onserve`` when ``config.notify`` is set — or
        #: attached externally (the golden guard attaches one with zero
        #: capable sites to prove it is byte-invisible).  The runtime
        #: takes the push rung only for sites the queue marks capable.
        self.notify_queue = None
        # Durable invocation history (queried by the management API).
        from repro.db.table import Column
        if "invocations" not in self.dbmanager.db.tables:
            self.dbmanager.db.create_table("invocations", [
                Column("id", "INT", primary_key=True),
                Column("service", "TEXT", nullable=False),
                Column("job_id", "TEXT"),
                Column("started_at", "REAL", nullable=False),
                Column("total", "REAL", nullable=False),
                Column("overhead", "REAL", nullable=False),
                Column("polls", "INT", nullable=False),
                Column("ok", "INT", nullable=False),
                Column("error", "TEXT"),
            ])
            self.dbmanager.db.create_index("invocations", "service", "hash")
        # Resume numbering after recovered history (appliance restarts);
        # the counters are fabric-wide, so this seeds only once.
        self.store.seed_counters()

    # -- upload cache (ablation support) ---------------------------------------

    @staticmethod
    def _digest(payload: bytes) -> str:
        return hashlib.sha256(payload).hexdigest()

    def is_staged(self, site: str, path: str, payload: bytes) -> bool:
        return self.store.staged_digest(site, path) == self._digest(payload)

    def mark_staged(self, site: str, path: str, payload: bytes) -> None:
        self.store.mark_staged(site, path, self._digest(payload),
                               self.replica)

    # -- §VII.A "further treatment" -----------------------------------------------

    def generate_service(self, name: str, payload: bytes,
                         description: str = "", params_spec: str = "",
                         uploaded_by: str = "portal",
                         ctx: Optional[RequestContext] = None) -> Process:
        """Store the executable, build+deploy its service, publish it.

        The process-event's value is the :class:`GeneratedService`.
        Re-uploading an existing executable *replaces the file* but keeps
        the already-published service (the paper's re-upload semantics).
        """

        def op() -> Generator[Event, None, GeneratedService]:
            if not payload:
                raise UploadError(f"executable {name!r} is empty")
            params = parse_params_spec(params_spec)

            service_name = service_name_for(name)
            existing = self._cached_or_stored(service_name)
            if existing is not None and existing.executable_name != name:
                # "hello.sh" and "hello.py" would both become
                # HelloService — refuse instead of silently aliasing.
                raise UploadError(
                    f"executable {name!r} would collide with service "
                    f"{service_name!r} (owned by "
                    f"{existing.executable_name!r})")

            # Storage: the executable lands in the database.  Transient
            # engine failures (stalled/aborted commits) are retried under
            # the shared policy; the first attempt is driven exactly as
            # the bare call would be.
            with span(ctx, "onserve:store", executable=name):
                yield from retry_call(
                    self.sim, self.retry_policy,
                    lambda: self.dbmanager.store_executable(
                        name, payload, description=description,
                        params_spec=params_spec),
                    ctx=ctx, label=f"db-store:{name}")

            record = ExecutableRecord(name, description, params,
                                      size=len(payload),
                                      uploaded_by=uploaded_by,
                                      uploaded_at=self.sim.now)

            if existing is not None:
                # Replacement upload: same service, new bytes.  The DB
                # row is already refreshed above; propagate the new
                # record to every in-memory surface too.
                self._refresh_replaced(existing, record)
                return existing

            # Service build + publication.
            service = yield from self._build_and_publish(record, ctx=ctx)
            return service

        return self.sim.process(op(), name=f"generate:{name}")

    def _build_and_publish(self, record: ExecutableRecord,
                           ctx: Optional[RequestContext] = None):
        """Build the service archive, deploy it, publish it in UDDI.

        A generator meant to be delegated to (``yield from``) inside a
        simulation process; returns the :class:`GeneratedService`.
        """
        service_name = service_name_for(record.name)
        runtime = GridServiceRuntime(self, record)
        with span(ctx, "onserve:build", service=service_name):
            endpoint, archive = yield self.builder.build_and_deploy(
                record, runtime.handler)
        # Behind an enabled router the *published* endpoint is the
        # router's — clients must route, not pin this replica.
        if self.router is not None and self.router.enabled:
            endpoint = self.router.endpoint_for(service_name)
        with span(ctx, "onserve:uddi-publish", service=service_name):
            yield self.host.compute(0.02, tag="uddi")
            entry = self.uddi.save_service(
                self.business.key, service_name, record.description)
            binding = self.uddi.save_binding(
                entry.key, access_point=endpoint,
                wsdl_location=endpoint + "?wsdl",
                tmodel_key=self.tmodel.key)
        service = GeneratedService(
            service_name=service_name,
            executable_name=record.name,
            endpoint=endpoint,
            wsdl_location=binding.wsdl_location,
            uddi_service_key=entry.key,
            uddi_binding_key=binding.key,
            archive_size=len(archive),
            created_at=self.sim.now)
        self.services[service_name] = service
        self.runtimes[service_name] = runtime
        self.store.put_record(service, self.replica)
        self.bus.emit("core.service_generated", layer="core",
                      request_id=ctx.request_id if ctx else None,
                      service=service_name, executable=record.name,
                      archive_bytes=len(archive))
        return service

    def _refresh_replaced(self, existing: GeneratedService,
                          record: ExecutableRecord) -> None:
        """Propagate a replacement upload beyond the database row.

        Pure bookkeeping (no simulated cost): the runtime's in-memory
        :class:`ExecutableRecord`, the container's deployed interface
        and the UDDI service description all refresh in place —
        previously only the DB row changed, so later invocations
        validated against the stale parameter spec and ``usage_report``
        showed the old size/description.  Staged grid copies of the old
        bytes are evicted by their *exact* staging path (suffix matching
        could evict another executable whose name path-suffixes this
        one), and republish listeners — client caches — drop the
        service.
        """
        service_name = existing.service_name
        runtime = self.runtimes.get(service_name)
        if runtime is not None:
            runtime.record = record
        try:
            self.soap_server.update_description(
                service_name, self.builder.description_for(record))
        except ServiceNotFound:
            pass  # not materialized on this replica; nothing deployed
        try:
            self.uddi.get_service(existing.uddi_service_key).description = \
                record.description
        except UddiError:
            pass  # unpublished out-of-band; nothing to refresh
        self.store.evict_staged(staged_path_for(record.name))
        self.bus.emit("core.service_republished", layer="core",
                      service=service_name, executable=record.name,
                      size=record.size)
        for listener in list(self._republish_listeners):
            listener(service_name)
        # Other replicas drop their stale materializations of this
        # service; the next request there rebuilds from the fresh row.
        self.store.record_republished(service_name, origin=self.replica)

    def on_republish(self, listener) -> None:
        """Register *listener(service_name)* to run after a replacement
        upload republishes a service in place (cache invalidation)."""
        self._republish_listeners.append(listener)

    def remove_republish_listener(self, listener) -> None:
        """Detach a republish listener (idempotent)."""
        try:
            self._republish_listeners.remove(listener)
        except ValueError:
            pass

    # -- shared agent session (single-flight across runtimes) -----------------

    def agent_session_expires(self) -> float:
        """When this replica's leased agent session expires (0 if none)."""
        lease = self.store.get_lease(self.replica,
                                     self.config.grid_username)
        return lease[1] if lease is not None else 0.0

    def ensure_agent_session(self, ctx: Optional[RequestContext] = None
                             ) -> Generator[Event, None, str]:
        """One appliance-wide agent session, logons coalesced.

        A generator meant to be delegated to (``yield from``) inside a
        simulation process.  While the leased session is fresh it is
        returned without any simulated work; otherwise exactly one
        MyProxy logon runs per expiry, no matter how many invocations
        (of however many services) race for it.  The lease lives in the
        store keyed by replica: each replica's own agent mints its own
        session, and flights on different replicas never coalesce.
        """
        cfg = self.config
        lease = self.store.get_lease(self.replica, cfg.grid_username)
        if lease is not None and self.sim.now < lease[1]:
            self.bus.emit("cache.hit", layer="core", cache="session",
                          key=cfg.grid_username)
            return lease[0]

        def logon() -> Generator[Event, None, str]:
            self.bus.emit("cache.miss", layer="core", cache="session",
                          key=cfg.grid_username)
            session = yield self.agent_stub.authenticate(
                username=cfg.grid_username,
                passphrase=cfg.grid_passphrase, ctx=ctx)
            self.store.put_lease(self.replica, cfg.grid_username, session,
                                 self.sim.now + cfg.session_renewal)
            return session

        return (yield from self.flights.do(
            ("agent-auth", self.replica, cfg.grid_username), logon,
            group="auth"))

    # -- per-site poll multiplexers (datapath mode) ---------------------------

    def poll_mux(self, site: str) -> "PollMux":
        """The (lazily created) batch-polling multiplexer for *site*.

        Its batch operation is one ``pollOutputs`` agent call covering
        every registered job; a per-job result is accepted once the
        stdout file exists (output ready) or the gatekeeper reports the
        job lost (flag ``E`` — the runtime turns that into
        :class:`~repro.errors.JobNotFound` for failover).  Creating the
        mux schedules nothing: an idle multiplexer cannot perturb a
        timeline, which is what the golden guard proves.
        """
        mux = self._poll_muxes.get(site)
        if mux is not None:
            return mux
        from repro.grid.poller import PollMux
        cfg = self.config

        def batch_poll(batch):
            def op() -> Generator[Event, None, Dict[str, Dict]]:
                session = yield from self.ensure_agent_session(None)
                encoded = ";".join(f"{key}|{token}" for key, token in batch)
                reply = yield self.agent_stub.pollOutputs(
                    session=session, site=site, jobs=encoded)
                results: Dict[str, Dict] = {}
                for item in reply.split(";"):
                    job_id, flag, nbytes = item.split("|")
                    results[job_id] = {"ready": flag == "1",
                                       "error": flag == "E",
                                       "nbytes": int(nbytes)}
                return results

            return self.sim.process(op(), name=f"pollmux-batch:{site}")

        mux = PollMux(
            self.sim, site, batch_poll,
            accept=lambda r: r is not None and (r["ready"] or r["error"]),
            min_interval=cfg.poll_min_interval,
            max_interval=cfg.poll_max_interval,
            backoff=cfg.poll_backoff)
        self._poll_muxes[site] = mux
        return mux

    def drop_agent_session(self, session: Optional[str]) -> None:
        """Forget the shared session (dead credential recovery hook)."""
        self.store.drop_lease(self.replica, self.config.grid_username,
                              session)

    def restore_services(self) -> Process:
        """Regenerate every service from the executables table.

        The appliance-restart story: after a crash, the database (WAL
        recovery) still holds every uploaded executable, but the SOAP
        container and UDDI registry start empty.  This replays the
        service build for each stored executable so the published
        surface comes back without any re-upload.  The process-event's
        value is the list of restored service names.
        """

        def op() -> Generator[Event, None, List[str]]:
            restored: List[str] = []
            for row in self.dbmanager.list_executables():
                service_name = service_name_for(row["name"])
                if service_name in self.services:
                    continue
                record = ExecutableRecord(
                    row["name"], row["description"],
                    parse_params_spec(row["params_spec"]),
                    size=row["size"], uploaded_by="restore",
                    uploaded_at=row["stored_at"])
                service = yield from self._build_and_publish(record)
                restored.append(service.service_name)
            return restored

        return self.sim.process(op(), name="restore-services")

    def new_job_tag(self) -> str:
        """A per-invocation tag unique across restarts (stdout naming).

        The sequence is fabric-wide (store-backed): two replicas must
        never mint the same tag, or their stdout files would alias on
        the grid and fool each other's outputReady probes.
        """
        return f"i{self.store.next_tag_seq():06d}"

    # -- invocation history ---------------------------------------------------

    def record_invocation(self, service_name: str, report) -> None:
        """Persist one execute() report (bookkeeping; no simulated cost —
        the row rides along the WAL writes already charged elsewhere)."""
        svc = self.services.get(service_name)
        if svc is not None:
            svc.invocations += 1
        self.store.bump_invocations(service_name)
        self.dbmanager.db.insert("invocations", [
            self.store.next_invocation_id(),
            service_name,
            report.job_id,
            report.started_at,
            report.total,
            report.overhead,
            report.polls,
            1 if report.ok else 0,
            report.error,
        ])
        self.bus.emit("core.invocation", layer="core",
                      service=service_name, job_id=report.job_id,
                      total=report.total, overhead=report.overhead,
                      polls=report.polls, ok=report.ok)

    def usage_report(self) -> List[Dict[str, object]]:
        """Per-service usage aggregates from the history table."""
        from repro.db.sql import execute_sql
        return execute_sql(
            self.dbmanager.db,
            "SELECT service, COUNT(*), SUM(ok), AVG(total), AVG(overhead), "
            "SUM(polls) FROM invocations GROUP BY service")

    # -- management ---------------------------------------------------------------

    def _cached_or_stored(self, service_name: str
                          ) -> Optional[GeneratedService]:
        """The local object if cached, else a view of the store row."""
        svc = self.services.get(service_name)
        if svc is not None:
            return svc
        row = self.store.get_record(service_name)
        if row is None:
            return None
        return ServiceStateStore.rehydrate(row)

    def get_service(self, service_name: str) -> GeneratedService:
        svc = self._cached_or_stored(service_name)
        if svc is None:
            raise ServiceNotFound(
                f"onServe has no service {service_name!r}")
        return svc

    def list_services(self) -> List[GeneratedService]:
        merged = {row["service_name"]: ServiceStateStore.rehydrate(row)
                  for row in self.store.all_records()}
        merged.update(self.services)
        return [merged[k] for k in sorted(merged)]

    # -- replica materialization (deploy on A, invoke on B) --------------------

    def ensure_local_service(self, service_name: str,
                             ctx: Optional[RequestContext] = None
                             ) -> Generator[Event, None, None]:
        """Make *service_name* servable by this replica's container.

        A generator meant to be delegated to (``yield from``).  On the
        hot path — the service is already deployed locally — it yields
        nothing and costs nothing.  Otherwise the service exists only as
        a store row (generated through another replica): rebuild the
        runtime from the executables table and deploy it into the local
        container, charging this replica's CPU, *without* republishing
        UDDI (the record is already published).  Concurrent requests for
        the same service park on one pending event instead of
        double-building.
        """
        while True:
            try:
                self.soap_server.service(service_name)
                return  # already servable here (generated or infra)
            except ServiceNotFound:
                pass
            pending = self._materializing.get(service_name)
            if pending is None:
                break
            yield pending  # someone is building it; re-check after

        row = self.store.get_record(service_name)
        if row is None:
            raise ServiceNotFound(
                f"onServe has no service {service_name!r}")
        from repro.errors import RecordNotFound
        try:
            exe = self.dbmanager.db.get_by_pk(self.dbmanager.TABLE,
                                              row["executable_name"])
        except RecordNotFound:
            raise ServiceNotFound(
                f"service {service_name!r} lost its executable "
                f"{row['executable_name']!r}") from None
        record = ExecutableRecord(
            exe["name"], exe["description"],
            parse_params_spec(exe["params_spec"]),
            size=exe["size"], uploaded_by="materialize",
            uploaded_at=exe["stored_at"])
        runtime = GridServiceRuntime(self, record)
        pending = self.sim.event(f"materialize:{service_name}")
        self._materializing[service_name] = pending
        try:
            with span(ctx, "onserve:materialize", service=service_name):
                yield self.builder.build_and_deploy(record, runtime.handler)
            self.services[service_name] = ServiceStateStore.rehydrate(row)
            self.runtimes[service_name] = runtime
            self.bus.emit("core.service_materialized", layer="core",
                          request_id=ctx.request_id if ctx else None,
                          service=service_name, replica=self.replica,
                          origin=row["replica"])
        finally:
            del self._materializing[service_name]
            pending.succeed()

    def _on_soap_undeploy(self, service_name: str) -> None:
        """Container undeploy hook: unpublish UDDI, drop the registries.

        Idempotent, and tolerant of services the container hosts that
        onServe never generated (agent, inquiry, management).  When the
        drop is itself the *result* of a store fan-out (another replica
        undeployed), only the local caches fall — the origin replica
        already did the global cleanup.
        """
        service = self.services.pop(service_name, None)
        self.runtimes.pop(service_name, None)
        if self._cascading == service_name:
            return
        row = self.store.remove_record(service_name, origin=self.replica)
        if service is None and row is None:
            return  # never a generated service (agent, inquiry, ...)
        key = service.uddi_service_key if service is not None \
            else row["uddi_service_key"]
        try:
            self.uddi.delete_service(key)
        except UddiError:
            pass  # already unpublished by an explicit teardown

    def _on_store_removed(self, service_name: str) -> None:
        """Another replica undeployed: drop local surfaces only."""
        self._cascading = service_name
        try:
            try:
                self.soap_server.undeploy(service_name)  # fires caches
            except ServiceNotFound:
                self.services.pop(service_name, None)
                self.runtimes.pop(service_name, None)
        finally:
            self._cascading = None

    def _on_store_republished(self, service_name: str) -> None:
        """Another replica replaced the bytes/spec: drop any stale local
        materialization (the next request rebuilds from the fresh row)
        and invalidate this replica's client caches."""
        self._on_store_removed(service_name)
        for listener in list(self._republish_listeners):
            listener(service_name)

    def undeploy_service(self, service_name: str) -> Process:
        """Remove a generated service everywhere (SOAP, UDDI, DB).

        Works from any replica: if the service was never materialized
        here, the store record is removed directly (fanning the drop out
        to whichever replicas do hold it) and UDDI is unpublished.
        """
        service = self.get_service(service_name)

        def op() -> Generator[Event, None, None]:
            try:
                # The undeploy listener handles UDDI + registry cleanup.
                self.soap_server.undeploy(service_name)
            except ServiceNotFound:
                # Record-only on this replica: do the global cleanup
                # directly; holders drop via the store fan-out.
                self.store.remove_record(service_name, origin=self.replica)
                try:
                    self.uddi.delete_service(service.uddi_service_key)
                except UddiError:
                    pass
            yield self.dbmanager.delete_executable(service.executable_name)

        return self.sim.process(op(), name=f"undeploy:{service_name}")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<OnServe services={sorted(self.services)}>"


class OnServeStack:
    """Everything a deployed onServe brings up, in one handle."""

    def __init__(self, testbed: Testbed, appliance: DeployedAppliance,
                 fabric: SoapFabric, soap_server: SoapServer,
                 uddi: UddiRegistry, dbmanager: DbManager,
                 agent: CyberaideAgent, onserve: OnServe,
                 user_clients: List[WsClient]):
        self.testbed = testbed
        self.sim = testbed.sim
        self.appliance = appliance
        self.fabric = fabric
        self.soap_server = soap_server
        self.uddi = uddi
        self.dbmanager = dbmanager
        self.agent = agent
        self.onserve = onserve
        self.user_clients = user_clients

    @property
    def portal(self):
        from repro.core.portal import CyberaidePortal
        if not hasattr(self, "_portal"):
            self._portal = CyberaidePortal(self.onserve)
        return self._portal

    def inquiry_endpoint(self) -> str:
        """Where clients reach the UDDI inquiry service.

        The fabric stack overrides this to the router endpoint so
        discovery traffic spreads over the replicas too.
        """
        from repro.ws.uddi_service import UddiInquiryService
        return self.soap_server.endpoint_for(UddiInquiryService.SERVICE_NAME)

    def enable_client_caches(self, ttl: Optional[float] = None,
                             enabled: bool = True) -> List:
        """Attach a discovery/WSDL/stub cache to every user client.

        Each cache is wired into the container's undeploy hook and
        onServe's republish hook, so an undeployed or replaced service
        is dropped from every client immediately — the invalidation
        contract of DESIGN.md §9.  Returns the caches (one per client).
        ``enabled=False`` attaches inert caches, which the golden-series
        guard uses to prove attachment alone cannot perturb a run.

        Idempotent: calling it again *replaces* the previous caches —
        the old ones are detached from every client and every hook, so
        repeated enabling can never stack stale caches or double-fire
        invalidation listeners.
        """
        from repro.ws.cache import ClientCache
        self._detach_client_caches()
        caches = []
        for client in self.user_clients:
            kwargs = {} if ttl is None else {"ttl": ttl}
            cache = ClientCache(self.sim, enabled=enabled, **kwargs)
            client.cache = cache
            self._attach_cache_hooks(cache)
            caches.append(cache)
        self._client_caches = caches
        return caches

    def _attach_cache_hooks(self, cache) -> None:
        """Wire one cache into the invalidation hooks (overridable)."""
        self.soap_server.on_undeploy(cache.invalidate_service)
        self.onserve.on_republish(cache.invalidate_service)

    def _detach_cache_hooks(self, cache) -> None:
        self.soap_server.remove_undeploy_listener(cache.invalidate_service)
        self.onserve.remove_republish_listener(cache.invalidate_service)

    def _detach_client_caches(self) -> None:
        for cache in getattr(self, "_client_caches", []):
            self._detach_cache_hooks(cache)
        for client in self.user_clients:
            client.cache = None
        self._client_caches = []

    @property
    def appliance_host(self) -> Host:
        return self.testbed.appliance_host


def deploy_onserve(testbed: Testbed,
                   config: Optional[OnServeConfig] = None,
                   dbmanager: Optional[DbManager] = None) -> Process:
    """Deploy the whole onServe stack onto *testbed* (a sim process).

    The process-event's value is an :class:`OnServeStack`.  Passing a
    *dbmanager* (e.g. one recovered with
    :meth:`~repro.db.dbmanager.DbManager.recover_from_crash`) redeploys
    an appliance over existing data: every stored executable's service
    is rebuilt and republished automatically.
    """
    config = config or OnServeConfig()
    sim = testbed.sim

    def op() -> Generator[Event, None, OnServeStack]:
        # 1. Build the appliance image (the rBuilder step).
        builder = ImageBuilder()
        for package in ONSERVE_PACKAGES():
            builder.provide(package)
        image = builder.build("cyberaide-onserve", ["cyberaide-onserve"])

        # 2. On-demand deployment onto the appliance host.
        appliance = yield deploy_image(image, testbed.appliance_host)

        # 3. Wire the software stack.
        fabric = SoapFabric()
        soap_server = SoapServer(testbed.appliance_host, fabric)
        uddi = UddiRegistry()
        db = dbmanager if dbmanager is not None \
            else DbManager(testbed.appliance_host,
                           tier=DbTierConfig(
                               mvcc=config.db_mvcc,
                               serialize=config.db_serialize,
                               chunk_bytes=config.db_chunk_bytes,
                               replicas=config.db_replicas,
                               replica_lag=config.db_replica_lag))
        agent = CyberaideAgent(
            testbed.appliance_host, testbed,
            AgentConfig(status_supported=config.status_supported,
                        session_reuse=config.datapath,
                        ftp_idle_timeout=config.ftp_session_idle))
        soap_server.deploy(agent.service_description(), agent.handler)

        # 4. Enrol the appliance's grid identity (certificate -> MyProxy
        #    -> gridmaps), the once-per-user out-of-band step.
        testbed.new_grid_identity(config.grid_username,
                                  config.grid_passphrase)

        onserve = OnServe(testbed.appliance_host, soap_server, fabric,
                          uddi, db, agent, config)

        if config.notify:
            # Push path: one durable notification queue over the DB
            # tier, each gatekeeper attached with its site's capability
            # (heterogeneous on purpose — sites outside notify_sites
            # keep the poll ladder).
            from repro.grid.notify import NotifyQueue
            queue = NotifyQueue(sim, db.db,
                                propagation=config.notify_propagation,
                                read_router=db.read_router)
            for name, gatekeeper in testbed.gatekeepers.items():
                capable = ("*" in config.notify_sites
                           or name in config.notify_sites)
                gatekeeper.attach_notify(queue, capable=capable)
            onserve.notify_queue = queue

        # Publish the registry's inquiry API and the management API as
        # web services of their own (jUDDI inquiry / portal management).
        from repro.core.management import ManagementService
        from repro.ws.uddi_service import UddiInquiryService
        inquiry = UddiInquiryService(uddi)
        soap_server.deploy(inquiry.service_description(), inquiry.handler)
        management = ManagementService(onserve)
        soap_server.deploy(management.service_description(),
                           management.handler)

        user_clients = [WsClient(host, fabric)
                        for host in testbed.user_hosts]
        if dbmanager is not None:
            # Redeployment over recovered data: bring the services back.
            yield onserve.restore_services()
        return OnServeStack(testbed, appliance, fabric, soap_server, uddi,
                            db, agent, onserve, user_clients)

    return sim.process(op(), name="deploy-onserve")
