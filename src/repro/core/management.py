"""The onServe management service ("Cyberaide service management").

The portal toolbar of §VI offers service management next to upload;
this SOAP service is that API surface: list the generated services,
inspect one, and undeploy one — so administration is possible from any
web-service client, not just the portal host.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, TYPE_CHECKING

from repro.core.context import RequestContext, span
from repro.errors import ServiceNotFound
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.onserve import OnServe

__all__ = ["ManagementService"]


class ManagementService:
    """SOAP face of onServe administration."""

    SERVICE_NAME = "OnServeManagement"

    def __init__(self, onserve: "OnServe"):
        self.onserve = onserve

    def service_description(self) -> ServiceDescription:
        s = "xsd:string"
        return ServiceDescription(self.SERVICE_NAME, [
            OperationSpec("listServices", [], s),
            OperationSpec("describeService", [ParameterSpec("name", s)], s),
            OperationSpec("undeployService", [ParameterSpec("name", s)],
                          "xsd:boolean"),
            OperationSpec("listExecutables", [], s),
            OperationSpec("usageReport", [], s),
            OperationSpec("clientBundle", [ParameterSpec("name", s)],
                          "xsd:base64Binary"),
        ], documentation="Cyberaide onServe service management")

    def handler(self, operation: str, params: Dict[str, Any],
                ctx: Optional[RequestContext] = None) -> Any:
        if operation == "listServices":
            return "\n".join(
                f"{s.service_name}|{s.endpoint}|{s.executable_name}"
                f"|{s.invocations}"
                for s in self.onserve.list_services())
        if operation == "describeService":
            return self._describe(params["name"])
        if operation == "undeployService":
            return self._undeploy(params["name"], ctx)
        if operation == "usageReport":
            rows = self.onserve.usage_report()
            return "\n".join(
                f"{r['service']}|{r['count(*)']}|{r['sum(ok)'] or 0}"
                f"|{(r['avg(total)'] or 0.0):.1f}"
                f"|{(r['avg(overhead)'] or 0.0):.1f}"
                f"|{r['sum(polls)'] or 0}"
                for r in rows)
        if operation == "clientBundle":
            return self._client_bundle(params["name"])
        if operation == "listExecutables":
            rows = self.onserve.dbmanager.list_executables()
            return "\n".join(
                f"{r['name']}|{r['size']}|{r['compressed_size']}"
                f"|{r['stored_at']:.1f}"
                for r in rows)
        raise ServiceNotFound(
            f"management API has no operation {operation!r}")

    def _describe(self, name: str) -> str:
        service = self.onserve.get_service(name)
        # A fabric replica may know the service only as a store record
        # (generated elsewhere, not yet materialized here) — report the
        # record-level invocation count instead of local reports then.
        runtime = self.onserve.runtimes.get(name)
        if runtime is not None:
            ok = sum(1 for r in runtime.reports if r.ok)
            invocations = f"{len(runtime.reports)} ({ok} ok)"
        else:
            invocations = f"{service.invocations} (fabric-wide)"
        lines = [
            f"service      : {service.service_name}",
            f"executable   : {service.executable_name}",
            f"endpoint     : {service.endpoint}",
            f"wsdl         : {service.wsdl_location}",
            f"uddi key     : {service.uddi_service_key}",
            f"created at   : {service.created_at:.1f}",
            f"archive size : {service.archive_size} B",
            f"invocations  : {invocations}",
        ]
        return "\n".join(lines)

    def _undeploy(self, name: str,
                  ctx: Optional[RequestContext] = None) -> Generator:
        def op():
            with span(ctx, "management:undeploy", service=name):
                yield self.onserve.undeploy_service(name)
            return True
        return op()

    def _client_bundle(self, name: str) -> bytes:
        """A downloadable zip: generated stub source + the WSDL.

        The paper's §VIII.D.4 improvement: instead of every consumer
        running wsimport themselves, the appliance hands out the client
        files ready-made.
        """
        import io
        import zipfile

        from repro.ws.client import generate_stub_source

        self.onserve.get_service(name)  # raises ServiceNotFound
        wsdl = self.onserve.soap_server.wsdl(name)
        source = generate_stub_source(wsdl)
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED) as bundle:
            bundle.writestr(f"{name.lower()}_stub.py", source)
            bundle.writestr(f"{name}.wsdl", wsdl)
            bundle.writestr("README.txt",
                            f"Generated client for {name}.\n"
                            f"Instantiate {name}Stub with a repro WsClient.\n")
        return buf.getvalue()
