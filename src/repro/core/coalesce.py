"""Single-flight coalescing for the invocation hot path.

§VIII.D names the appliance's *per-request* work as the scaling limit:
N concurrent invocations of the same service each re-fetch the
executable from the database, each log on through MyProxy, and each
push the same payload through the thin GridFTP uplink.  A
:class:`SingleFlight` group deduplicates that work *while it is in
flight*: the first caller of a key runs the real operation, every
concurrent caller of the same key waits on the leader's outcome and
shares its value.  Nothing is memoised — once a flight lands, the next
caller starts a fresh one — so this is pure concurrency coalescing,
orthogonal to the TTL caches in :mod:`repro.ws.cache`.

Determinism contract
--------------------
Disabled (the default, and the mode every golden figure runs in), ``do``
delegates straight to the factory generator: no events are created, no
bus traffic is emitted, and the simulation timeline is byte-identical
to a build without this module.  Enabled, the leader's path is likewise
unchanged; only joiners wait on a kernel event, which is created
deterministically in arrival order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Hashable, Optional

from repro.simkernel.events import Event
from repro.telemetry.events import bus

__all__ = ["SingleFlight"]


class _Flight:
    """One in-flight operation; the event is created on the first join."""

    __slots__ = ("event", "joiners")

    def __init__(self) -> None:
        self.event: Optional[Event] = None
        self.joiners = 0


class SingleFlight:
    """In-flight call coalescing, keyed by hashable keys within groups.

    Usage (inside a simulation process)::

        result = yield from flights.do(("db-load", name), load_factory,
                                       group="db-load")

    *factory* must be a zero-argument callable returning a *generator*
    to delegate to (the operation itself).  The leader's exception, if
    any, is re-raised in every joiner.
    """

    def __init__(self, sim, enabled: bool = False):
        self.sim = sim
        self.enabled = enabled
        self._inflight: Dict[Hashable, _Flight] = {}
        #: Per-group counters: how many flights led, how many joined.
        self.flights: Dict[str, int] = {}
        self.joins: Dict[str, int] = {}
        self._bus = bus(sim)

    def inflight(self, key: Hashable) -> bool:
        """True while a flight for *key* is running (test hook)."""
        return key in self._inflight

    def do(self, key: Hashable, factory: Callable[[], Generator],
           group: str = "default") -> Generator[Event, None, Any]:
        """Run *factory* under single-flight semantics for *key*.

        A generator meant to be delegated to (``yield from``) inside a
        simulation process.  Returns the operation's value — the
        leader's own, or the shared one for coalesced callers.
        """
        if not self.enabled:
            return (yield from factory())

        flight = self._inflight.get(key)
        if flight is not None:
            # Coalesce: wait for the leader's outcome and share it.
            flight.joiners += 1
            self.joins[group] = self.joins.get(group, 0) + 1
            self._bus.emit("coalesce.join", layer="core", group=group,
                           key=str(key))
            if flight.event is None:
                flight.event = Event(self.sim, name=f"flight:{group}")
            value = yield flight.event  # raises the leader's exception
            return value

        flight = _Flight()
        self._inflight[key] = flight
        self.flights[group] = self.flights.get(group, 0) + 1
        self._bus.emit("coalesce.flight", layer="core", group=group,
                       key=str(key))
        try:
            value = yield from factory()
        except BaseException as exc:
            # The flight is over: later callers must retry for
            # themselves, and every joiner sees the leader's failure.
            self._inflight.pop(key, None)
            if flight.event is not None:
                flight.event.fail(exc)
                # Joiners handle (or propagate) the exception; the
                # kernel must not re-raise it as an unwaited failure.
                flight.event.defused()
            raise
        self._inflight.pop(key, None)
        if flight.event is not None:
            flight.event.succeed(value)
        return value

    def stats(self) -> Dict[str, Dict[str, int]]:
        """``{group: {"flights": n, "joins": m}}`` over all groups."""
        groups = sorted(set(self.flights) | set(self.joins))
        return {g: {"flights": self.flights.get(g, 0),
                    "joins": self.joins.get(g, 0)} for g in groups}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "on" if self.enabled else "off"
        return (f"<SingleFlight {state} inflight={len(self._inflight)} "
                f"groups={self.stats()}>")
