"""Workloads: synthetic executables and workload generators.

The system under test treats uploaded executables as opaque byte blobs.
To make those blobs *do* something when a grid node runs them, a payload
embeds a small header naming an :class:`ExecutableProfile` — the node
parses the header and asks the profile for the job's runtime, output
size, and (optionally real) output bytes.  Profiles can be backed by
actual Python functions, so examples compute real answers (Monte-Carlo
pi, word counts) while the middleware pipeline stays byte-oriented.
"""

from repro.workloads.executables import (
    EchoProfile,
    ExecutableProfile,
    FixedRuntimeProfile,
    MonteCarloPiProfile,
    SleepProfile,
    WordCountProfile,
    get_profile,
    make_payload,
    parse_payload,
    register_profile,
)
from repro.workloads.generator import WorkloadSpec, make_workload

__all__ = [
    "ExecutableProfile",
    "FixedRuntimeProfile",
    "SleepProfile",
    "EchoProfile",
    "MonteCarloPiProfile",
    "WordCountProfile",
    "register_profile",
    "get_profile",
    "make_payload",
    "parse_payload",
    "WorkloadSpec",
    "make_workload",
]
