"""Executable profiles: what a payload does when a grid node runs it.

A payload's first line is the magic ``#!repro-exe``; subsequent header
lines are ``key=value`` options, at minimum ``profile=<name>``.  The rest
is padding (to reach a target size) — real bytes that compress, transfer
and store like any user binary.

Profiles registered here are looked up by the simulated compute node at
execution time.  Built-in profiles cover the evaluation's needs: fixed
runtimes for timing studies, sleeps, echoes, and two *real computations*
(Monte-Carlo pi, word counting) used by the examples.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import JobError

__all__ = [
    "ExecutableProfile", "FixedRuntimeProfile", "SleepProfile",
    "EchoProfile", "MonteCarloPiProfile", "WordCountProfile",
    "register_profile", "get_profile", "make_payload", "parse_payload",
    "PROFILE_REGISTRY",
]

_MAGIC = b"#!repro-exe"


class ExecutableProfile:
    """Behaviour of one executable type.

    Subclasses override :meth:`runtime`, :meth:`output_size` and
    :meth:`compute_output`; *arguments* are the job's RSL argument
    strings and *options* the key=value pairs baked into the payload
    header.
    """

    name = "abstract"

    def runtime(self, arguments: Sequence[str], count: int,
                options: Dict[str, str], rng: random.Random) -> float:
        raise NotImplementedError

    def output_size(self, arguments: Sequence[str], count: int,
                    options: Dict[str, str]) -> int:
        """Predicted output size (drives partial-output polling)."""
        return len(self.compute_output(arguments, count, options))

    def compute_output(self, arguments: Sequence[str], count: int,
                       options: Dict[str, str]) -> bytes:
        raise NotImplementedError


class FixedRuntimeProfile(ExecutableProfile):
    """Runs for a constant time, emits constant-size output."""

    name = "fixed"

    def runtime(self, arguments, count, options, rng):
        return float(options.get("runtime", "10"))

    def output_size(self, arguments, count, options):
        return int(options.get("output_bytes", "1024"))

    def compute_output(self, arguments, count, options):
        size = self.output_size(arguments, count, options)
        line = b"fixed-profile output\n"
        return (line * (size // len(line) + 1))[:size]


class SleepProfile(ExecutableProfile):
    """Sleeps for its first argument's seconds (like /bin/sleep)."""

    name = "sleep"

    def runtime(self, arguments, count, options, rng):
        if not arguments:
            return 1.0
        try:
            return max(0.0, float(arguments[0]))
        except ValueError:
            raise JobError(f"sleep: bad duration {arguments[0]!r}") from None

    def compute_output(self, arguments, count, options):
        return b"slept\n"


class EchoProfile(ExecutableProfile):
    """Echoes its arguments, one per line (near-instant)."""

    name = "echo"

    def runtime(self, arguments, count, options, rng):
        return float(options.get("runtime", "0.5"))

    def compute_output(self, arguments, count, options):
        return ("\n".join(arguments) + "\n").encode()


class MonteCarloPiProfile(ExecutableProfile):
    """Estimates pi by Monte-Carlo sampling — a *real* computation.

    ``arguments = [samples, seed]``.  Runtime scales with the sample
    count; the output is the actual estimate, so examples can aggregate
    estimates from many grid jobs into a converging value.
    """

    name = "mcpi"

    def _samples_seed(self, arguments) -> Tuple[int, int]:
        samples = int(arguments[0]) if arguments else 10000
        seed = int(arguments[1]) if len(arguments) > 1 else 0
        if samples < 1:
            raise JobError("mcpi: samples must be >= 1")
        return samples, seed

    def runtime(self, arguments, count, options, rng):
        samples, _ = self._samples_seed(arguments)
        per_sample = float(options.get("sec_per_sample", "1e-5"))
        # Perfectly parallel across the allocated cores.
        return samples * per_sample / max(1, count)

    def compute_output(self, arguments, count, options):
        samples, seed = self._samples_seed(arguments)
        rng = random.Random(seed)
        hits = 0
        for _ in range(min(samples, 200_000)):  # bound real CPU in tests
            x, y = rng.random(), rng.random()
            if x * x + y * y <= 1.0:
                hits += 1
        effective = min(samples, 200_000)
        estimate = 4.0 * hits / effective
        return (f"samples={samples}\nhits={hits}\n"
                f"pi_estimate={estimate:.10f}\n").encode()


class WordCountProfile(ExecutableProfile):
    """Counts words of the text baked into its payload options."""

    name = "wordcount"

    def runtime(self, arguments, count, options, rng):
        text = options.get("text", "")
        return 0.2 + len(text) * float(options.get("sec_per_char", "1e-4"))

    def compute_output(self, arguments, count, options):
        text = options.get("text", "")
        counts: Dict[str, int] = {}
        for word in text.lower().split():
            word = word.strip(".,;:!?\"'()")
            if word:
                counts[word] = counts.get(word, 0) + 1
        lines = [f"{word} {n}" for word, n in
                 sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
        return ("\n".join(lines) + "\n").encode()


#: Global registry the simulated nodes consult.
PROFILE_REGISTRY: Dict[str, ExecutableProfile] = {}


def register_profile(profile: ExecutableProfile) -> None:
    """Register *profile* under its ``name`` (overwrites)."""
    PROFILE_REGISTRY[profile.name] = profile


def get_profile(name: str) -> ExecutableProfile:
    try:
        return PROFILE_REGISTRY[name]
    except KeyError:
        raise JobError(f"unknown executable profile {name!r}") from None


for _p in (FixedRuntimeProfile(), SleepProfile(), EchoProfile(),
           MonteCarloPiProfile(), WordCountProfile()):
    register_profile(_p)


# -------------------------------------------------------------- payloads

def make_payload(profile: str = "fixed", size: Optional[int] = None,
                 **options: str) -> bytes:
    """Build an executable payload for *profile*.

    *size* pads the payload (with pseudo-random, mildly compressible
    bytes) to a target length, so transfer/storage costs can be chosen
    independently of behaviour.  Extra keyword *options* land in the
    header and are passed to the profile at run time.
    """
    get_profile(profile)  # fail fast on unknown profiles
    lines = [_MAGIC.decode(), f"profile={profile}"]
    for key, value in sorted(options.items()):
        if "\n" in str(value):
            raise JobError(f"payload option {key!r} must be single-line")
        lines.append(f"{key}={value}")
    header = ("\n".join(lines) + "\n--\n").encode()
    if size is None or size <= len(header):
        return header
    pad_rng = random.Random(len(header) + size)
    need = size - len(header)
    # Mostly incompressible padding with a modestly compressible tail,
    # like a real stripped binary (zlib gets ~10-15% off it).
    random_part = pad_rng.randbytes(need - need // 8)
    block = pad_rng.randbytes(64) * 16
    repeated_part = (block * (need // len(block) + 1))[: need // 8]
    return header + random_part + repeated_part


def parse_payload(payload: bytes) -> Tuple[str, Dict[str, str]]:
    """Extract ``(profile_name, options)`` from a payload's header.

    Raises :class:`~repro.errors.JobError` for blobs that are not
    repro executables — the grid node refusing to run garbage.
    """
    if not payload.startswith(_MAGIC):
        raise JobError("payload is not a repro executable (bad magic)")
    head, sep, _rest = payload.partition(b"\n--\n")
    if not sep:
        raise JobError("payload header is not terminated")
    options: Dict[str, str] = {}
    for line in head.decode("utf-8", "replace").splitlines()[1:]:
        if "=" not in line:
            raise JobError(f"malformed payload header line {line!r}")
        key, _, value = line.partition("=")
        options[key] = value
    profile = options.pop("profile", "")
    if not profile:
        raise JobError("payload header lacks a profile")
    return profile, options
