"""Workload generators for the evaluation scenarios.

Each generator yields ``(name, payload, description, params_spec)``
tuples ready to upload through the portal.  Mixes mirror the paper's
discussion: "a lot of relatively small files" (§VIII.B), a ~5 MB large
file (Figure 7), and mixed multi-user populations (§VIII.D).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.units import KB, MB
from repro.workloads.executables import make_payload

__all__ = ["WorkloadSpec", "make_workload"]

Upload = Tuple[str, bytes, str, str]


class WorkloadSpec:
    """Parameters of a synthetic upload workload."""

    def __init__(self, kind: str = "small", count: int = 10,
                 runtime: float = 30.0, output_bytes: int = 4096,
                 size_bytes: Optional[int] = None, seed: int = 0):
        if kind not in ("small", "large", "mixed"):
            raise ValueError(f"unknown workload kind {kind!r}")
        if count < 1:
            raise ValueError("count must be >= 1")
        self.kind = kind
        self.count = count
        self.runtime = runtime
        self.output_bytes = output_bytes
        self.size_bytes = size_bytes
        self.seed = seed


def make_workload(spec: WorkloadSpec) -> List[Upload]:
    """Materialize *spec* into uploadable executables."""
    rng = random.Random(spec.seed)
    uploads: List[Upload] = []
    for i in range(spec.count):
        if spec.kind == "small":
            size = spec.size_bytes or int(rng.uniform(200, KB(4)))
        elif spec.kind == "large":
            size = spec.size_bytes or int(5 * MB(1))
        else:  # mixed: 80% small, 20% large (a plausible portal population)
            if rng.random() < 0.8:
                size = int(rng.uniform(200, KB(8)))
            else:
                size = int(rng.uniform(MB(1), 5 * MB(1)))
        runtime = spec.runtime * rng.uniform(0.5, 1.5)
        payload = make_payload(
            profile="fixed", size=size,
            runtime=f"{runtime:.3f}",
            output_bytes=str(spec.output_bytes),
        )
        uploads.append((
            f"{spec.kind}-exe-{i:03d}",
            payload,
            f"synthetic {spec.kind} workload executable #{i}",
            "",
        ))
    return uploads
