"""Processor-sharing multi-core CPU model.

A task asks for *cpu_seconds* of computation; all runnable tasks share the
cores equally (one task can use at most one core), exactly like a
round-robin OS scheduler viewed at a coarse timescale.  Utilization
accounting is exact, so a telemetry sampler can compute per-interval CPU%
as the paper's monitoring tool did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.hardware.fairshare import FairShareServer
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Cpu"]


class Cpu:
    """A multi-core CPU with processor-sharing scheduling.

    Parameters
    ----------
    sim:
        Owning simulator.
    cores:
        Number of cores (capacity in cpu-seconds per second).
    speed_factor:
        Relative speed of one core; a task asking for ``s`` cpu-seconds
        occupies a core for ``s / speed_factor`` seconds.  Lets a testbed
        mix slow appliance hosts with fast supercomputer nodes.
    """

    def __init__(self, sim: "Simulator", cores: int = 1,
                 speed_factor: float = 1.0, name: str = "cpu"):
        if cores < 1:
            raise HardwareError(f"{name}: cores must be >= 1")
        if speed_factor <= 0:
            raise HardwareError(f"{name}: speed_factor must be positive")
        self.sim = sim
        self.cores = cores
        self.speed_factor = speed_factor
        self.name = name
        self._server = FairShareServer(
            sim, capacity=float(cores), per_flow_cap=1.0, name=name
        )

    def compute(self, cpu_seconds: float, tag: str = "compute") -> Event:
        """Run *cpu_seconds* of work; the event fires when it completes."""
        if cpu_seconds < 0:
            raise HardwareError(f"{self.name}: negative cpu_seconds")
        return self._server.submit(cpu_seconds / self.speed_factor,
                                   tags=("all", tag))

    @property
    def running_tasks(self) -> int:
        """Number of tasks currently on-CPU."""
        return self._server.active_flows

    def busy_core_seconds(self) -> float:
        """Total core-seconds consumed so far (exact)."""
        return self._server.work_integral()

    def utilization(self, since: float, busy_at_since: float) -> float:
        """Mean utilization over [since, now], in [0, 1].

        *busy_at_since* must be the value :meth:`busy_core_seconds`
        returned at time *since* (the sampler keeps it).
        """
        dt = self.sim.now - since
        if dt <= 0:
            return 0.0
        return (self.busy_core_seconds() - busy_at_since) / (self.cores * dt)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Cpu {self.name!r} cores={self.cores} running={self.running_tasks}>"
