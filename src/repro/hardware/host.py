"""A simulated host: CPU + disk + memory, attached to a network.

Hosts are where middleware components "run": component code expresses its
resource consumption as host operations (``compute``, ``disk_write``,
``send``), and telemetry samples the host's counters to produce the
utilization time series the paper plots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import HardwareError
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.network import Network
from repro.simkernel.process import Process
from repro.units import GB, MBps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Host", "HostSpec"]


class HostSpec:
    """Hardware sizing for a :class:`Host` (a tiny spec object)."""

    def __init__(self, cores: int = 2, cpu_speed: float = 1.0,
                 disk_bandwidth: float = MBps(60),
                 disk_latency: float = 0.005,
                 disk_capacity: float = GB(100),
                 memory_bytes: float = GB(4)):
        self.cores = cores
        self.cpu_speed = cpu_speed
        self.disk_bandwidth = disk_bandwidth
        self.disk_latency = disk_latency
        self.disk_capacity = disk_capacity
        self.memory_bytes = memory_bytes


class Host:
    """A named machine with CPU, disk and memory, living on a network."""

    def __init__(self, sim: "Simulator", name: str, network: Network,
                 spec: Optional[HostSpec] = None):
        spec = spec or HostSpec()
        self.sim = sim
        self.name = name
        self.network = network
        self.spec = spec
        self.cpu = Cpu(sim, cores=spec.cores, speed_factor=spec.cpu_speed,
                       name=f"{name}.cpu")
        self.disk = Disk(sim, bandwidth=spec.disk_bandwidth,
                         access_latency=spec.disk_latency,
                         capacity_bytes=spec.disk_capacity,
                         name=f"{name}.disk")
        self.memory_bytes = spec.memory_bytes
        self.memory_used = 0.0
        #: High-water mark of RAM usage (for bottleneck analyses).
        self.memory_peak = 0.0
        network.add_host(name)

    # -- resource operations (all return waitable events) ---------------------

    def compute(self, cpu_seconds: float, tag: str = "compute"):
        """Burn *cpu_seconds* of CPU time (processor-shared)."""
        return self.cpu.compute(cpu_seconds, tag=tag)

    def disk_read(self, nbytes: float) -> Process:
        """Read *nbytes* from local disk."""
        return self.disk.read(nbytes)

    def disk_write(self, nbytes: float) -> Process:
        """Write *nbytes* to local disk."""
        return self.disk.write(nbytes)

    def send(self, dst: "Host | str", nbytes: float, label: str = "") -> Process:
        """Send *nbytes* to another host over the network."""
        dst_name = dst.name if isinstance(dst, Host) else dst
        return self.network.transfer(self.name, dst_name, nbytes, label=label)

    # -- memory (instant bookkeeping, not time-modelled) -------------------------

    def allocate_memory(self, nbytes: float) -> None:
        """Claim *nbytes* of RAM; raises when the host would swap."""
        if self.memory_used + nbytes > self.memory_bytes:
            raise HardwareError(
                f"{self.name}: out of memory "
                f"({self.memory_used:.0f}+{nbytes:.0f} > {self.memory_bytes:.0f})"
            )
        self.memory_used += nbytes
        self.memory_peak = max(self.memory_peak, self.memory_used)

    def release_memory(self, nbytes: float) -> None:
        """Release previously allocated RAM."""
        self.memory_used = max(0.0, self.memory_used - nbytes)

    # -- counters (for telemetry) -----------------------------------------------

    def net_bytes_in(self) -> float:
        return self.network.bytes_in(self.name)

    def net_bytes_out(self) -> float:
        return self.network.bytes_out(self.name)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Host {self.name!r}>"
