"""Network topology: hosts, links and bandwidth-limited transfers.

The network is an undirected graph of named hosts connected by
:class:`Link` objects.  A transfer between two hosts is routed along the
shortest path (fewest hops, ties broken by total capacity) and is *rated*
by the lowest-capacity link on that path: the transfer becomes a flow on
that bottleneck link's fair-share server, so transfers sharing a
bottleneck contend exactly.

Modelling note (see DESIGN.md §5): contention is only resolved at each
transfer's own bottleneck link — a transfer does not slow down when a
*non-bottleneck* link on its path becomes congested by others.  In the
paper's scenarios every contended path has one obvious bottleneck (the
WAN uplink to the grid, or the LAN into the appliance), so this
simplification does not change any reported shape.

Per-host cumulative in/out byte counters are maintained by tagging each
flow with ``in:<dst>`` and ``out:<src>``; the telemetry sampler reads them
to produce the network series in Figures 6–8.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.errors import HardwareError
from repro.hardware.fairshare import FairShareServer
from repro.simkernel.events import Event
from repro.simkernel.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Link", "Network"]


class Link:
    """A bidirectional point-to-point link.

    Parameters
    ----------
    bandwidth:
        Capacity in bytes/second, shared by all flows rated on this link
        (both directions draw from the same pool, as on a half-duplex or
        congested full-duplex path).
    latency:
        One-way propagation delay in seconds, paid once per transfer.
    """

    def __init__(self, sim: "Simulator", a: str, b: str, bandwidth: float,
                 latency: float = 0.0, name: str = ""):
        if latency < 0:
            raise HardwareError("negative link latency")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.name = name or f"{a}<->{b}"
        self.server = FairShareServer(sim, capacity=bandwidth, name=self.name)

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Link {self.name} bw={self.bandwidth:.0f}B/s>"


class Network:
    """A graph of hosts and links supporting rated transfers."""

    def __init__(self, sim: "Simulator", name: str = "net"):
        self.sim = sim
        self.name = name
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._hosts: set[str] = set()
        # Route memo — purely an in-process speedup (routing is a pure
        # function of the topology); invalidated whenever a link is
        # added, so results are identical with or without it.
        self._route_cache: Dict[Tuple[str, str], List[Link]] = {}

    # -- topology -------------------------------------------------------------

    def add_host(self, hostname: str) -> None:
        """Register a host (idempotent)."""
        self._hosts.add(hostname)
        self._adjacency.setdefault(hostname, [])

    def connect(self, a: str, b: str, bandwidth: float,
                latency: float = 0.0, name: str = "") -> Link:
        """Create a link between hosts *a* and *b* (registering them)."""
        if a == b:
            raise HardwareError(f"cannot link {a!r} to itself")
        self.add_host(a)
        self.add_host(b)
        link = Link(self.sim, a, b, bandwidth, latency, name)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    def hosts(self) -> List[str]:
        return sorted(self._hosts)

    def links(self) -> List[Link]:
        return list(self._links)

    def route(self, src: str, dst: str) -> List[Link]:
        """Shortest path (fewest hops) between *src* and *dst* (BFS).

        Raises :class:`HardwareError` if either host is unknown or no
        path exists.
        """
        for host in (src, dst):
            if host not in self._hosts:
                raise HardwareError(f"unknown host {host!r}")
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        # Deterministic BFS: neighbours explored in insertion order.
        frontier = [src]
        came_from: Dict[str, Tuple[str, Link]] = {}
        visited = {src}
        while frontier:
            nxt: List[str] = []
            for host in frontier:
                for link in self._adjacency[host]:
                    other = link.b if link.a == host else link.a
                    if other in visited:
                        continue
                    visited.add(other)
                    came_from[other] = (host, link)
                    if other == dst:
                        path: List[Link] = []
                        cur = dst
                        while cur != src:
                            prev, l = came_from[cur]
                            path.append(l)
                            cur = prev
                        path.reverse()
                        self._route_cache[(src, dst)] = path
                        return path
                    nxt.append(other)
            frontier = nxt
        raise HardwareError(f"no route from {src!r} to {dst!r}")

    # -- transfers ----------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float,
                 label: str = "") -> Process:
        """Move *nbytes* from *src* to *dst*.

        The returned process-event fires when the last byte arrives; its
        value is the elapsed time.  Local (src == dst) transfers complete
        after zero time without touching any link.
        """
        if nbytes < 0:
            raise HardwareError("negative transfer size")
        path = self.route(src, dst)

        def xfer() -> Generator[Event, None, float]:
            start = self.sim.now
            if not path:  # local copy: no network involved
                yield self.sim.timeout(0)
                return 0.0
            total_latency = sum(l.latency for l in path)
            if total_latency > 0:
                yield self.sim.timeout(total_latency)
            bottleneck = min(path, key=lambda l: (l.bandwidth, l.name))
            yield bottleneck.server.submit(
                nbytes, tags=("all", f"in:{dst}", f"out:{src}")
            )
            return self.sim.now - start

        pname = f"xfer:{src}->{dst}" + (f":{label}" if label else "")
        return self.sim.process(xfer(), name=pname)

    # -- counters ---------------------------------------------------------------

    def bytes_in(self, hostname: str) -> float:
        """Cumulative bytes received by *hostname* (incl. in-flight)."""
        return self._sum_tag(f"in:{hostname}")

    def bytes_out(self, hostname: str) -> float:
        """Cumulative bytes sent by *hostname* (incl. in-flight)."""
        return self._sum_tag(f"out:{hostname}")

    def _sum_tag(self, tag: str) -> float:
        return sum(link.server.cumulative(tag) for link in self._links)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<Network {self.name!r} hosts={len(self._hosts)} "
                f"links={len(self._links)}>")
