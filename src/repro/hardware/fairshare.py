"""Equal-share capacity server with exact work accounting.

A :class:`FairShareServer` owns a capacity *C* (in work units per second:
bytes/s for links and disks, cores for CPUs).  Each active flow receives

    rate = min(per_flow_cap, C / n_active)

so capacity is divided equally, optionally capped per flow (a single task
cannot use more than one core).  Progress is integrated lazily: state is
only settled when flows arrive/finish or when a counter is read, so the
model is exact regardless of sampling interval.

Flows carry a tuple of *tags*; completed work is credited to every tag,
which lets one server answer questions like "bytes received by host X"
and "bytes sent by host Y" from the same flow population.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

from repro.errors import HardwareError
from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["FairShareServer", "Flow"]

#: Remaining-work threshold below which a flow counts as finished.
_EPS = 1e-9


class Flow:
    """One unit of in-flight work on a :class:`FairShareServer`."""

    __slots__ = ("flow_id", "total", "remaining", "tags", "done", "started_at")

    def __init__(self, flow_id: int, total: float, tags: Tuple[str, ...],
                 done: Event, started_at: float):
        self.flow_id = flow_id
        self.total = total
        self.remaining = total
        self.tags = tags
        self.done = done
        self.started_at = started_at

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<Flow #{self.flow_id} {self.remaining:.1f}/{self.total:.1f} "
                f"tags={self.tags}>")


class FairShareServer:
    """Capacity shared equally among active flows.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Work units per second available in total (may be ``inf``).
    per_flow_cap:
        Maximum rate a single flow may receive (default: unlimited).
    name:
        Label for diagnostics.
    """

    def __init__(self, sim: "Simulator", capacity: float,
                 per_flow_cap: Optional[float] = None, name: str = ""):
        if capacity <= 0:
            raise HardwareError(f"{name}: capacity must be positive")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise HardwareError(f"{name}: per_flow_cap must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_flow_cap = per_flow_cap
        self.name = name
        self._flows: list[Flow] = []
        self._last_update = sim.now
        self._counter = itertools.count(1)
        # Cumulative completed work per tag (settled portion only).
        self._cumulative: Dict[str, float] = {}
        # Integral of instantaneous throughput over time (work units).
        self._work_integral = 0.0
        # Generation token invalidating stale completion timers.
        self._timer_generation = 0
        # Flow ids the armed timer is expected to complete (see _fire).
        self._expected_finishers: frozenset[int] = frozenset()

    # -- public API ---------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of flows currently being served."""
        return len(self._flows)

    def current_rate(self) -> float:
        """Rate granted to each active flow right now (0 if idle)."""
        n = len(self._flows)
        if n == 0:
            return 0.0
        rate = self.capacity / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    def submit(self, work: float, tags: Iterable[str] = ("default",)) -> Event:
        """Enqueue *work* units; the returned event fires on completion.

        The event's value is the elapsed service time.  Zero work
        completes after zero simulated time (but still via the event
        queue, preserving causal ordering).
        """
        if work < 0:
            raise HardwareError(f"{self.name}: negative work {work!r}")
        tags = tuple(tags)
        done = Event(self.sim, name=f"flow:{self.name}")
        if work == 0:
            for tag in tags:
                self._cumulative.setdefault(tag, 0.0)
            done.succeed(0.0)
            return done
        self._settle()
        flow = Flow(next(self._counter), float(work), tags, done, self.sim.now)
        self._flows.append(flow)
        for tag in tags:
            self._cumulative.setdefault(tag, 0.0)
        self._reschedule()
        return done

    def cumulative(self, tag: str = "default", at: Optional[float] = None) -> float:
        """Total work completed for *tag* up to time *at* (default: now).

        Includes the partial progress of still-active flows, which is what
        a hardware byte counter would report.
        """
        if at is not None and at != self.sim.now:
            raise HardwareError("cumulative() can only be read at the current time")
        done = self._cumulative.get(tag, 0.0)
        rate = self.current_rate()
        elapsed = self.sim.now - self._last_update
        if rate > 0 and elapsed > 0:
            for flow in self._flows:
                if tag in flow.tags:
                    done += min(flow.remaining, rate * elapsed)
        return done

    def work_integral(self) -> float:
        """Total work units served so far (all tags, exact)."""
        self._settle()
        return self._work_integral

    def utilization_since(self, t0: float, integral_at_t0: float) -> float:
        """Mean utilization in [t0, now] given the integral sampled at t0."""
        dt = self.sim.now - t0
        if dt <= 0:
            return 0.0
        return (self.work_integral() - integral_at_t0) / (self.capacity * dt)

    # -- internals ------------------------------------------------------------

    def _settle(self, force_finish: frozenset[int] = frozenset()) -> None:
        """Integrate progress since the last update and finish done flows.

        *force_finish* names flows whose completion timer just fired:
        they are completed even if floating-point cancellation (large
        clock value, tiny delay) left a residue above the epsilon
        threshold — without this the timer loop could stall, re-arming
        zero-length timers forever.
        """
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._flows:
            rate = self.current_rate()
            step = rate * elapsed
            for flow in self._flows:
                progress = min(flow.remaining, step)
                flow.remaining -= progress
                self._work_integral += progress
                for tag in flow.tags:
                    self._cumulative[tag] += progress
        self._last_update = now

        finished = [f for f in self._flows
                    if f.remaining <= max(_EPS, f.total * 1e-12)
                    or f.flow_id in force_finish]
        for flow in finished:
            self._flows.remove(flow)
            # Absorb the sub-epsilon residue so counters stay exact.
            for tag in flow.tags:
                self._cumulative[tag] += flow.remaining
            self._work_integral += flow.remaining
            flow.remaining = 0.0
            flow.done.succeed(now - flow.started_at)
        # Always re-arm: completions change rates, and floating-point
        # rounding can leave the least flow a hair above the finish
        # threshold when its timer fires — without a fresh timer it would
        # stall forever.
        self._reschedule()

    def _reschedule(self) -> None:
        """Arm a timer for the next flow completion."""
        self._timer_generation += 1
        if not self._flows:
            return
        generation = self._timer_generation
        rate = self.current_rate()
        least = min(f.remaining for f in self._flows)
        delay = least / rate if rate > 0 else math.inf
        if math.isinf(delay):
            raise HardwareError(f"{self.name}: flow can never complete (rate 0)")
        # The flows this timer is for: everyone tied (within float noise)
        # with the least-remaining flow finishes when it fires.
        tolerance = least * 1e-9 + _EPS
        expected = frozenset(f.flow_id for f in self._flows
                             if f.remaining - least <= tolerance)
        self._expected_finishers = expected

        def _fire(_event: Event) -> None:
            if generation == self._timer_generation:
                self._settle(force_finish=expected)

        timer = self.sim.timeout(delay, name=f"fairshare-timer:{self.name}")
        timer.add_callback(_fire)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<FairShareServer {self.name!r} cap={self.capacity} "
                f"flows={len(self._flows)}>")
