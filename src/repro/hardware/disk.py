"""Disk model: shared bandwidth plus per-operation latency.

Reads and writes share one bandwidth pool (a fair-share server), so
concurrent operations slow each other down; each operation additionally
pays a fixed access latency before data starts moving.  Separate
cumulative read/write byte counters feed the telemetry sampler — the
paper's Figures 6–8 plot exactly these two series.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import HardwareError
from repro.hardware.fairshare import FairShareServer
from repro.simkernel.events import Event
from repro.simkernel.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator

__all__ = ["Disk"]


class Disk:
    """A single disk with bandwidth and access-latency modelling.

    Parameters
    ----------
    sim:
        Owning simulator.
    bandwidth:
        Sustained transfer rate in bytes/second, shared by all in-flight
        operations.
    access_latency:
        Seconds of seek/queue latency paid once per operation.
    capacity_bytes:
        Total disk size; writes beyond it raise :class:`HardwareError`.
    """

    def __init__(self, sim: "Simulator", bandwidth: float,
                 access_latency: float = 0.005,
                 capacity_bytes: float = float("inf"), name: str = "disk"):
        if access_latency < 0:
            raise HardwareError(f"{name}: negative access latency")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.access_latency = access_latency
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.used_bytes = 0.0
        self._server = FairShareServer(sim, capacity=bandwidth, name=name)
        #: Per-operation log: (start_time, direction, bytes).  Scenario
        #: harnesses read it to resolve events finer than any sampler.
        self.op_log: list[tuple[float, str, float]] = []

    # -- operations ---------------------------------------------------------

    def read(self, nbytes: float) -> Process:
        """Read *nbytes*; the returned process-event fires on completion."""
        return self._operation(nbytes, "read")

    def write(self, nbytes: float) -> Process:
        """Write *nbytes*; the returned process-event fires on completion.

        Raises :class:`HardwareError` immediately if the disk would
        overflow — a full appliance disk is a real failure mode.
        """
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative write size")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise HardwareError(
                f"{self.name}: disk full "
                f"({self.used_bytes:.0f}+{nbytes:.0f} > {self.capacity_bytes:.0f})"
            )
        self.used_bytes += nbytes
        return self._operation(nbytes, "write")

    def free(self, nbytes: float) -> None:
        """Release previously written space (file deletion)."""
        self.used_bytes = max(0.0, self.used_bytes - nbytes)

    def _operation(self, nbytes: float, direction: str) -> Process:
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative {direction} size")
        self.op_log.append((self.sim.now, direction, nbytes))

        def op() -> Generator[Event, None, float]:
            start = self.sim.now
            if self.access_latency > 0:
                yield self.sim.timeout(self.access_latency)
            yield self._server.submit(nbytes, tags=("all", direction))
            return self.sim.now - start

        return self.sim.process(op(), name=f"{self.name}:{direction}")

    # -- counters -------------------------------------------------------------

    def bytes_read(self) -> float:
        """Cumulative bytes read (including in-flight partial progress)."""
        return self._server.cumulative("read")

    def bytes_written(self) -> float:
        """Cumulative bytes written (including in-flight partial progress)."""
        return self._server.cumulative("write")

    @property
    def active_operations(self) -> int:
        """Number of operations currently moving data."""
        return self._server.active_flows

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Disk {self.name!r} bw={self.bandwidth:.0f}B/s>"
