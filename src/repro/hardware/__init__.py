"""Simulated hardware: CPUs, disks, NICs, links and networks.

Every device is built on the :class:`~repro.hardware.fairshare.FairShareServer`
model: a capacity (cores, bytes/second) divided equally among the flows
active at any instant, with exact lazy integration of per-flow progress so
that telemetry can sample cumulative counters at arbitrary times.

The model is deliberately simple — equal share per flow, optional per-flow
rate cap, bottleneck-link routing — but it is deterministic, conserves
work exactly, and reproduces the contention effects (upload plateaus,
saturation under concurrency) that the paper's evaluation reports.
"""

from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.fairshare import FairShareServer
from repro.hardware.host import Host
from repro.hardware.network import Link, Network

__all__ = ["FairShareServer", "Cpu", "Disk", "Host", "Link", "Network"]
