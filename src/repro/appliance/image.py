"""Appliance images: package bundles built on demand."""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import ApplianceError
from repro.units import MB

__all__ = ["Package", "ApplianceImage", "ImageBuilder", "ONSERVE_PACKAGES"]


class Package:
    """One software component bundled into an appliance image."""

    __slots__ = ("name", "version", "size_bytes", "boot_seconds",
                 "boot_cpu_seconds", "depends_on")

    def __init__(self, name: str, version: str, size_bytes: float,
                 boot_seconds: float = 1.0, boot_cpu_seconds: float = 0.5,
                 depends_on: Sequence[str] = ()):
        if size_bytes < 0 or boot_seconds < 0 or boot_cpu_seconds < 0:
            raise ApplianceError(f"package {name!r}: negative sizing")
        self.name = name
        self.version = version
        self.size_bytes = size_bytes
        self.boot_seconds = boot_seconds
        self.boot_cpu_seconds = boot_cpu_seconds
        self.depends_on = tuple(depends_on)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Package {self.name}-{self.version}>"


class ApplianceImage:
    """A built image: ordered packages + identity."""

    def __init__(self, name: str, packages: List[Package]):
        self.name = name
        self.packages = list(packages)
        digest = hashlib.sha256(
            ";".join(f"{p.name}-{p.version}" for p in packages).encode()
        ).hexdigest()
        self.image_id = f"img-{digest[:12]}"

    @property
    def size_bytes(self) -> float:
        base_os = MB(120)  # the "minimal Linux base" every appliance ships
        return base_os + sum(p.size_bytes for p in self.packages)

    @property
    def boot_seconds(self) -> float:
        return 5.0 + sum(p.boot_seconds for p in self.packages)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<ApplianceImage {self.name!r} {self.image_id}>"


class ImageBuilder:
    """The rBuilder stand-in: resolve dependencies, order boot sequence."""

    def __init__(self) -> None:
        self._available: Dict[str, Package] = {}

    def provide(self, package: Package) -> None:
        """Add *package* to the builder's repository."""
        self._available[package.name] = package

    def build(self, name: str, package_names: Sequence[str]) -> ApplianceImage:
        """Build an image containing *package_names* (plus dependencies).

        Packages boot in dependency order; cycles and unknown packages
        raise :class:`ApplianceError`.
        """
        ordered: List[Package] = []
        seen: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(pkg_name: str, chain: Tuple[str, ...]) -> None:
            state = seen.get(pkg_name)
            if state == 1:
                return
            if state == 0:
                raise ApplianceError(
                    f"dependency cycle: {' -> '.join(chain + (pkg_name,))}")
            pkg = self._available.get(pkg_name)
            if pkg is None:
                raise ApplianceError(f"no such package {pkg_name!r}")
            seen[pkg_name] = 0
            for dep in pkg.depends_on:
                visit(dep, chain + (pkg_name,))
            seen[pkg_name] = 1
            ordered.append(pkg)

        for pkg_name in package_names:
            visit(pkg_name, ())
        if not ordered:
            raise ApplianceError("an image needs at least one package")
        return ApplianceImage(name, ordered)


def ONSERVE_PACKAGES() -> List[Package]:
    """The package set of the Cyberaide onServe appliance (§V/§VI)."""
    return [
        Package("jre", "1.6", MB(90), boot_seconds=0.0),
        Package("tomcat", "6.0", MB(12), boot_seconds=6.0,
                depends_on=("jre",)),
        Package("axis2", "1.5", MB(20), boot_seconds=2.0,
                depends_on=("tomcat",)),
        Package("mysql", "5.1", MB(35), boot_seconds=3.0),
        Package("juddi", "2.0", MB(8), boot_seconds=1.5,
                depends_on=("tomcat", "mysql")),
        Package("cyberaide-toolkit", "0.9", MB(15), boot_seconds=1.0,
                depends_on=("jre",)),
        Package("cyberaide-onserve", "1.0", MB(5), boot_seconds=1.0,
                depends_on=("axis2", "juddi", "mysql", "cyberaide-toolkit")),
    ]
