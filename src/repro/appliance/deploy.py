"""On-demand appliance deployment.

Deployment is a simulation process: the image is fetched from a
repository host (or materializes locally when none is given), written to
the target host's disk, and each package boots in dependency order,
burning boot CPU.  The returned :class:`DeployedAppliance` records what
runs where — the onServe stack builds its components on top of it.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.appliance.image import ApplianceImage
from repro.errors import ApplianceError
from repro.hardware.host import Host
from repro.simkernel.events import Event
from repro.simkernel.process import Process

__all__ = ["DeployedAppliance", "deploy_image"]


class DeployedAppliance:
    """A running appliance instance on a host."""

    def __init__(self, image: ApplianceImage, host: Host,
                 deployed_at: float, ready_at: float):
        self.image = image
        self.host = host
        self.deployed_at = deployed_at
        self.ready_at = ready_at
        #: Per-package boot completion times.
        self.boot_log: List[tuple] = []
        self.running = True

    @property
    def startup_seconds(self) -> float:
        return self.ready_at - self.deployed_at

    def shutdown(self) -> None:
        if not self.running:
            raise ApplianceError(f"{self.image.name}: already shut down")
        self.running = False
        self.host.disk.free(self.image.size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "running" if self.running else "stopped"
        return f"<DeployedAppliance {self.image.name!r} on {self.host.name} {state}>"


def deploy_image(image: ApplianceImage, host: Host,
                 repository: Optional[Host] = None) -> Process:
    """Deploy *image* onto *host* (a simulation process).

    When *repository* is given, the image bytes first travel from there
    over the network (the on-demand download); the process-event's value
    is the :class:`DeployedAppliance`.
    """
    sim = host.sim

    def op() -> Generator[Event, None, DeployedAppliance]:
        started = sim.now
        if repository is not None and repository.name != host.name:
            yield repository.send(host, image.size_bytes,
                                  label=f"image:{image.image_id}")
        yield host.disk_write(image.size_bytes)
        appliance = DeployedAppliance(image, host, started, ready_at=0.0)
        for package in image.packages:
            if package.boot_cpu_seconds > 0:
                yield host.compute(package.boot_cpu_seconds, tag="boot")
            if package.boot_seconds > 0:
                yield sim.timeout(package.boot_seconds)
            appliance.boot_log.append((package.name, sim.now))
        yield sim.timeout(5.0)  # base OS settle time
        appliance.ready_at = sim.now
        return appliance

    return sim.process(op(), name=f"deploy:{image.name}")
