"""Virtual appliance: image building and on-demand deployment.

"The Cyberaide onServe is implemented as a virtual appliance which can be
built on-demand" (paper §I).  :mod:`~repro.appliance.image` is the
rBuilder stand-in (bundle packages into an image);
:mod:`~repro.appliance.deploy` models the on-demand deployment: the image
travels to the target host, lands on its disk, and each bundled package
boots in order before the appliance reports ready.
"""

from repro.appliance.deploy import DeployedAppliance, deploy_image
from repro.appliance.image import ApplianceImage, ImageBuilder, Package

__all__ = ["Package", "ApplianceImage", "ImageBuilder", "deploy_image",
           "DeployedAppliance"]
