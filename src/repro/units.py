"""Unit helpers: bytes, bandwidth and time.

All simulated quantities in this library use the base units

* time      — seconds (float)
* data      — bytes (int or float)
* bandwidth — bytes per second (float)

These helpers exist so scenario code can say ``MB(5)`` or ``Mbps(100)``
instead of sprinkling magic constants.  Network bandwidths follow telecom
convention (1 Mbit = 10**6 bits); storage sizes follow the binary
convention used by the paper's figures (1 KB = 1024 bytes).
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB",
    "kbps", "Mbps", "Gbps", "KBps", "MBps",
    "seconds", "minutes", "hours",
    "fmt_bytes", "fmt_rate", "fmt_duration",
]

_KIB = 1024
_MIB = 1024 * 1024
_GIB = 1024 * 1024 * 1024


def KB(n: float) -> float:
    """*n* kilobytes (binary: 1 KB = 1024 bytes)."""
    return n * _KIB


def MB(n: float) -> float:
    """*n* megabytes (binary)."""
    return n * _MIB


def GB(n: float) -> float:
    """*n* gigabytes (binary)."""
    return n * _GIB


def kbps(n: float) -> float:
    """*n* kilobits per second, as bytes/second."""
    return n * 1000.0 / 8.0


def Mbps(n: float) -> float:
    """*n* megabits per second, as bytes/second."""
    return n * 1_000_000.0 / 8.0


def Gbps(n: float) -> float:
    """*n* gigabits per second, as bytes/second."""
    return n * 1_000_000_000.0 / 8.0


def KBps(n: float) -> float:
    """*n* kilobytes per second (binary), as bytes/second."""
    return n * _KIB


def MBps(n: float) -> float:
    """*n* megabytes per second (binary), as bytes/second."""
    return n * _MIB


def seconds(n: float) -> float:
    """Identity; for readability in scenario configs."""
    return float(n)


def minutes(n: float) -> float:
    """*n* minutes, in seconds."""
    return n * 60.0


def hours(n: float) -> float:
    """*n* hours, in seconds."""
    return n * 3600.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit, size in (("GB", _GIB), ("MB", _MIB), ("KB", _KIB)):
        if abs(n) >= size:
            return f"{n / size:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(bps: float) -> str:
    """Human-readable transfer rate in binary bytes/second units."""
    return fmt_bytes(bps) + "/s"


def fmt_duration(t: float) -> str:
    """Human-readable duration."""
    if t >= 3600:
        return f"{t / 3600:.2f} h"
    if t >= 60:
        return f"{t / 60:.2f} min"
    if t >= 1:
        return f"{t:.2f} s"
    return f"{t * 1000:.2f} ms"
