"""The Cyberaide mediator: task queueing between clients and the agent.

In the Cyberaide architecture the mediator sits between user-facing
interfaces and the agent, queueing work and bounding concurrency so one
user's burst cannot monopolize the agent.  onServe's stress scenarios
(§VIII.D "multiple simultaneous requests") run through it.
"""

from __future__ import annotations

import enum
import inspect
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.context import RequestContext, span
from repro.errors import ReproError
from repro.simkernel.events import Event
from repro.simkernel.kernel import Simulator
from repro.simkernel.resources import Resource

__all__ = ["TaskState", "Task", "Mediator"]


class TaskState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Task:
    """One queued unit of work."""

    __slots__ = ("task_id", "label", "state", "submitted_at", "started_at",
                 "finished_at", "result", "error", "done_event", "ctx")

    def __init__(self, task_id: int, label: str, submitted_at: float,
                 done_event: Event,
                 ctx: Optional[RequestContext] = None):
        self.task_id = task_id
        self.label = label
        self.state = TaskState.QUEUED
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = done_event
        #: The task's request context (queue wait + run are spans of it).
        self.ctx = ctx

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Task #{self.task_id} {self.label!r} {self.state.value}>"


class Mediator:
    """A concurrency-bounded task runner."""

    def __init__(self, sim: Simulator, max_concurrent: int = 4,
                 name: str = "mediator"):
        self.sim = sim
        self.name = name
        self._slots = Resource(sim, capacity=max_concurrent,
                               name=f"{name}-slots")
        self._counter = itertools.count(1)
        self.tasks: List[Task] = []

    def submit(self, factory: Callable[..., Generator], label: str = "",
               ctx: Optional[RequestContext] = None) -> Task:
        """Queue a task; *factory* builds its process generator when a
        concurrency slot frees up.

        The mediator is a request-fabric entry point: each task gets a
        :class:`RequestContext` (a child of *ctx* when one is passed, so
        the parent request is recorded in its baggage).  A *factory*
        declaring a parameter receives the task's context.

        The task's ``done_event`` fires with the task itself once it
        finishes (success or failure — inspect ``state``/``error``).
        """
        if ctx is not None:
            task_ctx = ctx.child()
        else:
            task_ctx = RequestContext.create(self.sim, principal=self.name)
        task = Task(next(self._counter), label or f"task-{self.name}",
                    self.sim.now, self.sim.event(), ctx=task_ctx)
        self.tasks.append(task)
        # Only factories that *ask* for the context (a parameter named
        # "ctx") receive it — default-argument lambdas stay untouched.
        wants_ctx = "ctx" in inspect.signature(factory).parameters

        def runner() -> Generator[Event, None, None]:
            request = self._slots.request()
            with span(task_ctx, "mediator:queued"):
                yield request
            task.state = TaskState.RUNNING
            task.started_at = self.sim.now
            try:
                with span(task_ctx, "mediator:run", task=task.task_id):
                    generator = factory(ctx=task_ctx) if wants_ctx \
                        else factory()
                    task.result = yield self.sim.process(
                        generator, name=f"mediator:{task.label}")
                task.state = TaskState.DONE
            except ReproError as exc:
                task.state = TaskState.FAILED
                task.error = exc
            finally:
                task.finished_at = self.sim.now
                self._slots.release(request)
                task.done_event.succeed(task)

        self.sim.process(runner(), name=f"mediator-run:{task.label}")
        return task

    def wait_all(self) -> Event:
        """An event firing once every submitted task has finished."""
        pending = [t.done_event for t in self.tasks
                   if t.state in (TaskState.QUEUED, TaskState.RUNNING)]
        return self.sim.all_of(pending)

    @property
    def running(self) -> int:
        return sum(1 for t in self.tasks if t.state is TaskState.RUNNING)

    @property
    def queued(self) -> int:
        return sum(1 for t in self.tasks if t.state is TaskState.QUEUED)

    def stats(self) -> Dict[str, Any]:
        done = [t for t in self.tasks if t.state is TaskState.DONE]
        failed = [t for t in self.tasks if t.state is TaskState.FAILED]
        waits = [t.queue_wait for t in self.tasks
                 if t.queue_wait is not None]
        return {
            "submitted": len(self.tasks),
            "done": len(done),
            "failed": len(failed),
            "mean_queue_wait": sum(waits) / len(waits) if waits else 0.0,
        }
