"""High-level job specification: what users mean, before RSL exists."""

from __future__ import annotations

from typing import Sequence

from repro.errors import RslError
from repro.grid.rsl import JobDescription, generate_rsl

__all__ = ["CyberaideJobSpec", "staged_path_for"]

#: Where staged executables live on a site's storage area.
SCRATCH_PREFIX = "/scratch/cyberaide"


def staged_path_for(executable_name: str) -> str:
    """The exact staging path an executable name maps to.

    The single definition both the runtime (staging an upload) and the
    replacement-upload eviction (dropping staged copies) derive paths
    from — suffix matching on paths is unsound because one executable
    name can be a path-suffix of another (e.g. ``cyberaide/echo.sh``
    vs. ``echo.sh``).
    """
    return f"{SCRATCH_PREFIX}/{executable_name}"


class CyberaideJobSpec:
    """A user-level job: executable name + arguments + sizing.

    :meth:`to_rsl` performs the "job description generation" step of the
    invocation workflow (§VII.B): the staged path is derived from the
    executable name, stdout gets a per-job file, and sizing defaults are
    applied.
    """

    def __init__(self, executable_name: str,
                 arguments: Sequence[str] = (),
                 count: int = 1,
                 max_wall_time: int = 3600,
                 queue: str = "normal",
                 project: str = ""):
        if not executable_name or "/" in executable_name:
            raise RslError(f"bad executable name {executable_name!r}")
        self.executable_name = executable_name
        self.arguments = [str(a) for a in arguments]
        self.count = count
        self.max_wall_time = max_wall_time
        self.queue = queue
        self.project = project

    def staged_path(self) -> str:
        return staged_path_for(self.executable_name)

    def stdout_path(self, job_tag: str) -> str:
        return f"{SCRATCH_PREFIX}/{self.executable_name}.{job_tag}.out"

    def to_description(self, job_tag: str) -> JobDescription:
        return JobDescription(
            executable=self.staged_path(),
            arguments=self.arguments,
            count=self.count,
            max_wall_time=self.max_wall_time,
            queue=self.queue,
            stdout=self.stdout_path(job_tag),
            project=self.project,
        )

    def to_rsl(self, job_tag: str) -> str:
        return generate_rsl(self.to_description(job_tag))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (f"<CyberaideJobSpec {self.executable_name!r} "
                f"args={self.arguments}>")
