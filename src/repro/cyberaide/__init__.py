"""The Cyberaide toolkit layer: agent, mediator, job abstraction, shell.

Cyberaide is the "light weight middleware for accessing production
Grids" (paper §III) that onServe builds on.  The central piece is the
:class:`~repro.cyberaide.agent.CyberaideAgent`: a web service exposing
grid functions (authenticate, upload, submit, output) as web methods —
onServe talks to it through a wsimport-generated client, exactly as the
paper's "client" package does.

The agent deliberately reproduces the paper's limitation: job *status*
is not retrievable through it by default ("some features provided by the
Cyberaide toolkit didn't work as expected", §VIII.B), forcing the
tentative output polling the evaluation's disk traces show.  Flip
``status_supported=True`` for the ablation that quantifies the waste.
"""

from repro.cyberaide.agent import AgentConfig, CyberaideAgent
from repro.cyberaide.jobspec import CyberaideJobSpec
from repro.cyberaide.mediator import Mediator, Task, TaskState
from repro.cyberaide.shell import CyberaideShell
from repro.cyberaide.workflow import (
    NodeState, Workflow, WorkflowNode, WorkflowRunner,
)

__all__ = [
    "CyberaideAgent",
    "AgentConfig",
    "CyberaideJobSpec",
    "Mediator",
    "Task",
    "TaskState",
    "CyberaideShell",
    "Workflow",
    "WorkflowNode",
    "WorkflowRunner",
    "NodeState",
]
