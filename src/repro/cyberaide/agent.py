"""The Cyberaide agent: grid functions exposed as web methods.

"To create and submit the job to the Grid, Cyberaide agent methods are
used.  The Cyberaide agent is a Web service and exposes its functions as
Web methods." (paper §VI).  The agent deploys into a
:class:`~repro.ws.server.SoapServer`; callers use a wsimport-generated
stub (see :func:`repro.ws.client.generate_stub`).

Faithful limitation: ``jobStatus`` raises unless
``AgentConfig.status_supported`` is set — the paper's workaround section
explains that status "can't be retrieved" through the agent, so clients
must "request the output tentatively" (``fetchOutput`` + ``outputReady``,
which checks for the stdout file on the grid instead of asking the LRM).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional

from repro.core.context import RequestContext, span
from repro.errors import AuthenticationFailed, CredentialExpired, GridError
from repro.faults.injector import get_injector
from repro.grid.gridftp import GridFtpSessionPool
from repro.grid.testbed import Testbed
from repro.hardware.host import Host
from repro.security.x509 import Certificate
from repro.simkernel.events import Event
from repro.telemetry.events import bus
from repro.ws.registryapi import OperationSpec, ParameterSpec, ServiceDescription

__all__ = ["AgentConfig", "CyberaideAgent", "AgentSession"]


class AgentConfig:
    """Behaviour switches of the agent."""

    def __init__(self, status_supported: bool = False,
                 default_proxy_lifetime: float = 12 * 3600.0,
                 session_cpu: float = 0.01,
                 session_reuse: bool = False,
                 ftp_idle_timeout: float = 600.0):
        #: The paper's workaround: False means jobStatus raises and
        #: clients must poll output tentatively.  True is the ablation.
        self.status_supported = status_supported
        self.default_proxy_lifetime = default_proxy_lifetime
        #: CPU charged per agent call for session bookkeeping.
        self.session_cpu = session_cpu
        #: Data-path batching: reuse one GridFTP control channel per
        #: (site, credential) instead of a handshake per transfer.
        self.session_reuse = session_reuse
        self.ftp_idle_timeout = ftp_idle_timeout


class AgentSession:
    """An authenticated session holding a delegated proxy chain."""

    __slots__ = ("session_id", "username", "chain", "expires_at")

    def __init__(self, session_id: str, username: str,
                 chain: List[Certificate], expires_at: float):
        self.session_id = session_id
        self.username = username
        self.chain = chain
        self.expires_at = expires_at


class CyberaideAgent:
    """Grid access functions, deployable as a SOAP service."""

    SERVICE_NAME = "CyberaideAgent"

    def __init__(self, host: Host, testbed: Testbed,
                 config: Optional[AgentConfig] = None):
        self.host = host
        self.sim = host.sim
        self.testbed = testbed
        self.config = config or AgentConfig()
        self._sessions: Dict[str, AgentSession] = {}
        self._counter = itertools.count(1)
        #: Experiment counters.
        self.uploads = 0
        self.submissions = 0
        self.output_polls = 0
        self.batch_polls = 0
        #: Control bytes spent on outputReady existence probes (single
        #: and batched) — the agent-side share of the poll overhead.
        self.probe_bytes = 0
        #: GridFTP control channels, reused when session_reuse is on;
        #: disabled the pool is a pure pass-through to the per-op path.
        self._ftp_sessions = GridFtpSessionPool(
            self.sim, enabled=self.config.session_reuse,
            idle_timeout=self.config.ftp_idle_timeout)
        #: Observability plane: agent milestones become events.
        self._bus = bus(self.sim)

    # -- service wiring ------------------------------------------------------

    def service_description(self) -> ServiceDescription:
        s = "xsd:string"
        return ServiceDescription(self.SERVICE_NAME, [
            OperationSpec("authenticate",
                          [ParameterSpec("username", s),
                           ParameterSpec("passphrase", s)], s),
            OperationSpec("listSites", [], s),
            OperationSpec("uploadExecutable",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("path", s),
                           ParameterSpec("data", "xsd:base64Binary")],
                          "xsd:int"),
            OperationSpec("submitJob",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("rsl", s)], s),
            OperationSpec("jobStatus",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("jobId", s)], s),
            OperationSpec("cancelJob",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("jobId", s)], "xsd:boolean"),
            OperationSpec("outputReady",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("path", s)], "xsd:boolean"),
            OperationSpec("fetchOutput",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("jobId", s)], "xsd:base64Binary"),
            OperationSpec("fetchFile",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("path", s)], "xsd:base64Binary"),
            OperationSpec("pollOutputs",
                          [ParameterSpec("session", s),
                           ParameterSpec("site", s),
                           ParameterSpec("jobs", s)], s),
        ], documentation="Cyberaide agent: production-grid access functions")

    def handler(self, operation: str, params: Dict[str, Any],
                ctx: Optional[RequestContext] = None):
        """SOAP handler entry point (a generator per request).

        Context-aware: the container passes the caller's request
        context, which the agent threads into the grid protocols so a
        single trace covers SOAP dispatch, GridFTP and GRAM.
        """
        method = getattr(self, f"_op_{operation}", None)
        if method is None:  # unreachable via SOAP (specs gate operations)
            raise GridError(f"agent has no operation {operation!r}")
        return method(ctx=ctx, **params)

    # -- operations ---------------------------------------------------------------

    def _op_authenticate(self, username: str, passphrase: str,
                         ctx: Optional[RequestContext] = None
                         ) -> Generator[Event, None, str]:
        with span(ctx, "agent:authenticate", username=username):
            yield self.host.compute(self.config.session_cpu, tag="agent")
            key, proxy, ee = yield self.testbed.myproxy.logon(
                self.host, username, passphrase,
                lifetime=self.config.default_proxy_lifetime)
        session_id = f"sess-{next(self._counter):06d}"
        self._sessions[session_id] = AgentSession(
            session_id, username, [proxy, ee], proxy.not_after)
        self._bus.emit("agent.auth", layer="agent",
                       request_id=ctx.request_id if ctx else None,
                       username=username, session=session_id)
        return session_id

    def _op_listSites(self, ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, str]:
        with span(ctx, "agent:listSites"):
            yield self.host.compute(self.config.session_cpu, tag="agent")
            sites = self.testbed.mds.query(min_free_cores=0)
        return ",".join(s.name for s in sites)

    def _op_uploadExecutable(self, session: str, site: str, path: str,
                             data: bytes,
                             ctx: Optional[RequestContext] = None
                             ) -> Generator[Event, None, int]:
        sess = self._session(session)
        ftp = self._ftp(site)
        n = yield self._ftp_sessions.put(ftp, self.host, sess.chain, path,
                                         data, ctx=ctx)
        self.uploads += 1
        self._bus.emit("agent.upload", layer="agent",
                       request_id=ctx.request_id if ctx else None,
                       site=site, path=path, nbytes=n)
        return n

    def _op_submitJob(self, session: str, site: str, rsl: str,
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, str]:
        sess = self._session(session)
        gram = self._gram(site)
        job_id = yield gram.submit(self.host, sess.chain, rsl, ctx=ctx)
        self.submissions += 1
        self._bus.emit("agent.submit", layer="agent",
                       request_id=ctx.request_id if ctx else None,
                       site=site, job_id=job_id)
        return job_id

    def _op_jobStatus(self, session: str, site: str, jobId: str,
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, str]:
        self._session(session)
        if not self.config.status_supported:
            # The paper's workaround made concrete: this path is broken.
            raise GridError(
                "job status is not retrievable through the Cyberaide agent "
                "(known limitation); poll output tentatively instead")
        state = yield self._gram(site).status(self.host, jobId, ctx=ctx)
        return state.value

    def _op_cancelJob(self, session: str, site: str, jobId: str,
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, bool]:
        self._session(session)
        result = yield self._gram(site).cancel(self.host, jobId, ctx=ctx)
        return result

    def _op_outputReady(self, session: str, site: str, path: str,
                        ctx: Optional[RequestContext] = None
                        ) -> Generator[Event, None, bool]:
        sess = self._session(session)
        gram = self._gram(site)
        # A control-channel existence probe on the grid filesystem — the
        # legitimate way around the missing status call.
        with span(ctx, "agent:outputReady", site=site):
            yield self.host.send(gram.host, 512, label="exists-probe")
            exists = self._ftp(site).exists(path)
            yield gram.host.send(self.host, 128, label="exists-answer")
        self.probe_bytes += 512 + 128
        return exists

    def _op_fetchOutput(self, session: str, site: str, jobId: str,
                        ctx: Optional[RequestContext] = None
                        ) -> Generator[Event, None, bytes]:
        self._session(session)
        data = yield self._gram(site).fetch_output(self.host, jobId, ctx=ctx)
        self.output_polls += 1
        self._bus.emit("agent.poll", layer="agent",
                       request_id=ctx.request_id if ctx else None,
                       site=site, job_id=jobId, nbytes=len(data))
        return data

    def _op_fetchFile(self, session: str, site: str, path: str,
                      ctx: Optional[RequestContext] = None
                      ) -> Generator[Event, None, bytes]:
        sess = self._session(session)
        data = yield self._ftp_sessions.get(self._ftp(site), self.host,
                                            sess.chain, path, ctx=ctx)
        return data

    def _op_pollOutputs(self, session: str, site: str, jobs: str,
                        ctx: Optional[RequestContext] = None
                        ) -> Generator[Event, None, str]:
        """Batched tentative poll: k jobs in one gatekeeper exchange.

        *jobs* is ``"jobId|stdoutPath;..."``; the reply is
        ``"jobId|flag|nbytes;..."`` with flag ``1`` (stdout file exists
        — output ready), ``0`` (still running) or ``E`` (the gatekeeper
        has no record of the job — the classic lost job).  One
        ``fetch_output_many`` exchange plus one batched existence probe
        replace k of each.
        """
        self._session(session)
        gram = self._gram(site)
        ftp = self._ftp(site)
        entries = []
        for item in jobs.split(";"):
            if not item:
                continue
            parts = item.split("|")
            if len(parts) != 2 or not parts[0]:
                raise GridError(f"malformed pollOutputs batch item {item!r}")
            entries.append((parts[0], parts[1]))
        if not entries:
            raise GridError("pollOutputs requires at least one job")
        k = len(entries)
        with span(ctx, "agent:pollOutputs", site=site, jobs=k):
            outputs = yield gram.fetch_output_many(
                self.host, [job_id for job_id, _ in entries], ctx=ctx)
            # One existence probe covers the whole batch: the job ids
            # already crossed in the request, only the paths ride along.
            probe = 512 + 16 * (k - 1)
            answer = 128 + 4 * (k - 1)
            yield self.host.send(gram.host, probe,
                                 label="exists-probe-batch")
            flags = {job_id: ftp.exists(path) for job_id, path in entries}
            yield gram.host.send(self.host, answer,
                                 label="exists-answer-batch")
        self.probe_bytes += probe + answer
        self.batch_polls += 1
        self.output_polls += k
        self._bus.emit("agent.poll_batch", layer="agent",
                       request_id=ctx.request_id if ctx else None,
                       site=site, jobs=k)
        parts = []
        for job_id, _path in entries:
            data = outputs.get(job_id)
            if data is None:
                parts.append(f"{job_id}|E|0")
            else:
                flag = "1" if flags[job_id] else "0"
                parts.append(f"{job_id}|{flag}|{len(data)}")
        return ";".join(parts)

    # -- internals ---------------------------------------------------------------

    def _session(self, session_id: str) -> AgentSession:
        sess = self._sessions.get(session_id)
        if sess is None:
            raise AuthenticationFailed(f"no such agent session {session_id!r}")
        if self.sim.now > sess.expires_at:
            del self._sessions[session_id]
            raise AuthenticationFailed(
                f"agent session {session_id!r} expired (proxy lifetime)")
        injector = get_injector(self.sim)
        if (injector is not None
                and injector.fire("security.credential_expired")):
            # The delegated proxy is invalidated mid-session; the caller
            # must re-authenticate (fresh MyProxy logon) to recover.
            del self._sessions[session_id]
            raise CredentialExpired(
                f"agent session {session_id!r}: delegated proxy "
                f"invalidated mid-session")
        return sess

    def _gram(self, site: str):
        try:
            return self.testbed.gatekeepers[site]
        except KeyError:
            raise GridError(f"no gatekeeper for site {site!r}") from None

    def _ftp(self, site: str):
        try:
            return self.testbed.ftp_servers[site]
        except KeyError:
            raise GridError(f"no GridFTP server for site {site!r}") from None
