"""Workflow management over the Cyberaide agent.

The Cyberaide toolkit's flagship use case is "Experiment and Workflow
Management" (paper ref [36]): DAGs of grid jobs where an edge means
"downstream must not start before upstream finished".  This engine runs
such DAGs through the agent's web methods — upload once per distinct
executable, submit every node whose dependencies are satisfied (maximal
parallelism), and collect every node's output for the caller.

Nodes fail independently: a failed node poisons exactly its descendants;
independent branches keep running (an experiment's surviving arms still
produce data).
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, List, Optional, Sequence, Set

from repro.cyberaide.jobspec import CyberaideJobSpec
from repro.errors import JobError, ReproError
from repro.simkernel.events import Event
from repro.simkernel.process import Process

__all__ = ["WorkflowNode", "Workflow", "NodeState", "WorkflowRunner"]


class NodeState(enum.Enum):
    WAITING = "waiting"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    POISONED = "poisoned"   # an upstream dependency failed


class WorkflowNode:
    """One job in the DAG."""

    def __init__(self, name: str, spec: CyberaideJobSpec, payload: bytes,
                 depends_on: Sequence[str] = ()):
        if not name:
            raise ReproError("workflow node needs a name")
        self.name = name
        self.spec = spec
        self.payload = payload
        self.depends_on = tuple(depends_on)
        self.state = NodeState.WAITING
        self.job_id: str = ""
        self.output: bytes = b""
        self.error: str = ""
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<WorkflowNode {self.name!r} {self.state.value}>"


class Workflow:
    """A named DAG of :class:`WorkflowNode`."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: Dict[str, WorkflowNode] = {}

    def add(self, node: WorkflowNode) -> WorkflowNode:
        if node.name in self.nodes:
            raise ReproError(f"duplicate workflow node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def validate(self) -> None:
        """Check the DAG: known dependencies, no cycles."""
        for node in self.nodes.values():
            for dep in node.depends_on:
                if dep not in self.nodes:
                    raise ReproError(
                        f"node {node.name!r} depends on unknown {dep!r}")
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, chain: tuple) -> None:
            s = state.get(name)
            if s == 1:
                return
            if s == 0:
                raise ReproError(
                    f"workflow cycle: {' -> '.join(chain + (name,))}")
            state[name] = 0
            for dep in self.nodes[name].depends_on:
                visit(dep, chain + (name,))
            state[name] = 1

        for name in self.nodes:
            visit(name, ())

    def roots(self) -> List[WorkflowNode]:
        return [n for n in self.nodes.values() if not n.depends_on]

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.state.value] = counts.get(node.state.value, 0) + 1
        return counts


class WorkflowRunner:
    """Executes a workflow through an agent stub.

    Parameters
    ----------
    sim:
        The simulator.
    agent_stub:
        A wsimport-generated CyberaideAgent stub (see
        :func:`repro.ws.client.generate_stub`).
    site:
        Target grid site for every node (a single-site experiment; the
        engine's unit of placement is the workflow, like early DAGMan
        deployments).
    poll_interval:
        The tentative-polling period used to detect node completion —
        workflows inherit the same agent limitation onServe works
        around.
    """

    def __init__(self, sim, agent_stub, site: str,
                 poll_interval: float = 5.0,
                 max_node_seconds: float = 6 * 3600.0):
        self.sim = sim
        self.agent = agent_stub
        self.site = site
        self.poll_interval = poll_interval
        self.max_node_seconds = max_node_seconds

    def run(self, workflow: Workflow, username: str,
            passphrase: str) -> Process:
        """Execute the whole DAG; the process-event's value is the workflow."""
        workflow.validate()

        def op() -> Generator[Event, None, Workflow]:
            session = yield self.agent.authenticate(username=username,
                                                    passphrase=passphrase)
            # Upload each distinct executable once.
            uploaded: Set[str] = set()
            for node in workflow.nodes.values():
                path = node.spec.staged_path()
                if path not in uploaded:
                    yield self.agent.uploadExecutable(
                        session=session, site=self.site, path=path,
                        data=node.payload)
                    uploaded.add(path)

            running: Dict[str, Process] = {}
            while True:
                self._promote(workflow)
                for node in workflow.nodes.values():
                    if node.state is NodeState.READY:
                        node.state = NodeState.RUNNING
                        node.started_at = self.sim.now
                        running[node.name] = self.sim.process(
                            self._run_node(session, node),
                            name=f"wf:{workflow.name}:{node.name}")
                if not running:
                    break
                finished = yield self.sim.any_of(list(running.values()))
                for name, proc in list(running.items()):
                    if proc in finished:
                        del running[name]
            return workflow

        return self.sim.process(op(), name=f"workflow:{workflow.name}")

    # -- internals ------------------------------------------------------------

    def _promote(self, workflow: Workflow) -> None:
        """WAITING -> READY/POISONED based on dependency outcomes."""
        changed = True
        while changed:
            changed = False
            for node in workflow.nodes.values():
                if node.state is not NodeState.WAITING:
                    continue
                deps = [workflow.nodes[d] for d in node.depends_on]
                if any(d.state in (NodeState.FAILED, NodeState.POISONED)
                       for d in deps):
                    node.state = NodeState.POISONED
                    node.error = "upstream dependency failed"
                    changed = True
                elif all(d.state is NodeState.DONE for d in deps):
                    node.state = NodeState.READY
                    changed = True

    def _run_node(self, session: str,
                  node: WorkflowNode) -> Generator[Event, None, None]:
        try:
            tag = f"wf-{node.name}"
            rsl = node.spec.to_rsl(job_tag=tag)
            node.job_id = yield self.agent.submitJob(
                session=session, site=self.site, rsl=rsl)
            stdout_path = node.spec.stdout_path(tag)
            deadline = self.sim.now + self.max_node_seconds
            while True:
                ready = yield self.agent.outputReady(
                    session=session, site=self.site, path=stdout_path)
                if ready:
                    break
                if self.sim.now >= deadline:
                    raise JobError(f"node {node.name!r} exceeded "
                                   f"{self.max_node_seconds:.0f}s")
                yield self.sim.timeout(self.poll_interval)
            output = yield self.agent.fetchOutput(
                session=session, site=self.site, jobId=node.job_id)
            if output and set(output) == {0}:
                raise JobError(f"node {node.name!r} produced no output "
                               f"(failed on the grid)")
            node.output = output
            node.state = NodeState.DONE
        except ReproError as exc:
            node.state = NodeState.FAILED
            node.error = str(exc)
        finally:
            node.finished_at = self.sim.now
